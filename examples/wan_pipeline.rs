//! The paper's wide-area setting on a realistic workload: a stencil
//! pipeline scheduled across a random switched WAN, swept over CCR.
//!
//! Reproduces in miniature what Figures 1/3 measure: how the
//! improvement of OIHSA and BBSA over BA grows as communication starts
//! to dominate computation.
//!
//! Run with: `cargo run --release --example wan_pipeline`

use es_core::{BbsaScheduler, ListScheduler, Scheduler};
use es_dag::gen::structured::stencil_1d;
use es_net::gen::{random_switched_wan, WanConfig};
use es_workload::scale_to_ccr;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 12-step, 8-cell stencil wavefront — a communication-heavy
    // pipeline where each step's halo exchange hits the network.
    let base = stencil_1d(12, 8, 100.0, 100.0);

    // The paper's network: heterogeneous random switched WAN with 16
    // processors (speeds U(1,10)).
    let mut rng = StdRng::seed_from_u64(2006);
    let topo = random_switched_wan(&WanConfig::heterogeneous(16), &mut rng);
    println!(
        "stencil: {} tasks / {} edges;  WAN: {} processors, {} links\n",
        base.task_count(),
        base.edge_count(),
        topo.proc_count(),
        topo.link_count()
    );

    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "CCR", "BA", "OIHSA", "BBSA", "OIHSA%", "BBSA%"
    );
    for ccr in [0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
        let dag = scale_to_ccr(&base, ccr, topo.mean_proc_speed(), topo.mean_link_speed());
        let ba = ListScheduler::ba_static()
            .schedule(&dag, &topo)
            .expect("connected")
            .makespan;
        let oihsa = ListScheduler::oihsa()
            .schedule(&dag, &topo)
            .expect("connected")
            .makespan;
        let bbsa = BbsaScheduler::new()
            .schedule(&dag, &topo)
            .expect("connected")
            .makespan;
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>12.1} {:>8.1}% {:>8.1}%",
            ccr,
            ba,
            oihsa,
            bbsa,
            100.0 * (ba - oihsa) / ba,
            100.0 * (ba - bbsa) / ba
        );
    }

    println!(
        "\nPositive percentages mean the contention-aware heuristics \
         (modified routing, optimal insertion, bandwidth sharing) beat \
         plain BFS + first-fit under the same processor choices."
    );
}
