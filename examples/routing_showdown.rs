//! §4.3 in isolation: BFS minimal routing vs the modified Dijkstra on a
//! fabric with real path diversity.
//!
//! A two-level fat tree gives every pod-to-pod pair one route per spine
//! switch. BFS always picks the same (first) spine, piling every
//! transfer onto one trunk; the modified Dijkstra probes the link
//! schedules and spreads load across spines. The gap widens with the
//! number of simultaneously communicating pairs.
//!
//! Run with: `cargo run --release --example routing_showdown`

use es_core::config::{ListConfig, Routing};
use es_core::{metrics, validate::validate, ListScheduler, Scheduler};
use es_dag::TaskGraphBuilder;
use es_net::gen::{fat_tree, SpeedDist};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 4 pods × 2 processors, 3 spines: 3 disjoint pod-to-pod paths.
    let mut rng = StdRng::seed_from_u64(7);
    let topo = fat_tree(
        4,
        2,
        3,
        SpeedDist::Fixed(1.0),
        SpeedDist::Fixed(1.0),
        &mut rng,
    );
    println!(
        "fat tree: {} processors, {} links, 3 spines\n",
        topo.proc_count(),
        topo.link_count()
    );

    println!(
        "{:>9} {:>12} {:>12} {:>9} {:>22}",
        "comm", "BFS", "Dijkstra", "gain", "links used (bfs/dij)"
    );
    for comm in [20.0f64, 60.0, 120.0, 240.0] {
        // A shuffle stage: 8 producers, 8 consumers, complete bipartite
        // exchange. Spreading is forced by the computation volume, so
        // most of the 64 transfers must cross the fabric no matter what
        // the processor selection does.
        let mut b = TaskGraphBuilder::new();
        let producers: Vec<_> = (0..8).map(|_| b.add_task(100.0)).collect();
        let consumers: Vec<_> = (0..8).map(|_| b.add_task(100.0)).collect();
        for &p in &producers {
            for &c in &consumers {
                b.add_edge(p, c, comm).expect("unique");
            }
        }
        let dag = b.build().expect("acyclic");

        let bfs_cfg = ListConfig::ba();
        let dij_cfg = ListConfig {
            name: "BA+dijkstra",
            routing: Routing::ModifiedDijkstra,
            ..ListConfig::ba()
        };
        let run = |cfg: ListConfig| {
            let s = ListScheduler::with_config(cfg)
                .schedule(&dag, &topo)
                .expect("connected");
            validate(&dag, &topo, &s).expect("valid");
            let m = metrics(&dag, &topo, &s);
            (s.makespan, m.links_used)
        };
        let (bfs_ms, bfs_links) = run(bfs_cfg);
        let (dij_ms, dij_links) = run(dij_cfg);
        println!(
            "{:>9} {:>12.1} {:>12.1} {:>8.1}% {:>15}/{}",
            comm,
            bfs_ms,
            dij_ms,
            100.0 * (bfs_ms - dij_ms) / bfs_ms,
            bfs_links,
            dij_links
        );
    }

    println!(
        "\nBFS funnels every pod-to-pod transfer through the same spine \
         (24 links busy); the modified Dijkstra spreads them over all \
         three (40 links busy) and the gain grows with communication \
         volume — the effect §4.3 is built to exploit."
    );
}
