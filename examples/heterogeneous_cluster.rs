//! Heterogeneous cluster study (§6.2 of the paper in miniature).
//!
//! Builds a two-rack cluster with fast and slow processors joined by a
//! slow inter-rack trunk, runs a Gaussian-elimination kernel through
//! all schedulers, and shows where each algorithm's advantage comes
//! from: link utilisation and the trunk's queue.
//!
//! Run with: `cargo run --release --example heterogeneous_cluster`

use es_core::{validate::validate, BbsaScheduler, CommPlacement, ListScheduler, Scheduler};
use es_dag::gen::structured::gauss_elim;
use es_net::Topology;

fn main() {
    // Two racks: rack A has two fast processors (speed 8), rack B four
    // slow ones (speed 2). Intra-rack links are fast (speed 10), the
    // single inter-rack trunk is slow (speed 2) — the classic
    // "communication cliff" topology.
    let mut b = Topology::builder();
    let sw_a = b.add_labeled_switch("rackA");
    let sw_b = b.add_labeled_switch("rackB");
    let mut trunk_links = Vec::new();
    let (l1, l2) = b.add_duplex_cable(sw_a, sw_b, 2.0);
    trunk_links.push(l1);
    trunk_links.push(l2);
    for _ in 0..2 {
        let (pn, _) = b.add_processor(8.0);
        b.add_duplex_cable(pn, sw_a, 10.0);
    }
    for _ in 0..4 {
        let (pn, _) = b.add_processor(2.0);
        b.add_duplex_cable(pn, sw_b, 10.0);
    }
    let topo = b.build().expect("valid topology");

    // Gaussian elimination on a 7x7 matrix: a serial spine with
    // shrinking parallel fans — sensitive to both processor speed and
    // communication placement.
    let dag = gauss_elim(7, 120.0, 60.0);
    println!(
        "Gaussian elimination: {} tasks, {} edges on a 2-rack cluster\n",
        dag.task_count(),
        dag.edge_count()
    );

    println!(
        "{:<12} {:>10} {:>14} {:>16}",
        "algorithm", "makespan", "remote comms", "trunk transfers"
    );
    for sched in [
        Box::new(ListScheduler::ba_static()) as Box<dyn Scheduler>,
        Box::new(ListScheduler::ba()),
        Box::new(ListScheduler::oihsa()),
        Box::new(BbsaScheduler::new()),
    ] {
        let s = sched.schedule(&dag, &topo).expect("connected");
        validate(&dag, &topo, &s).expect("valid");

        let mut remote = 0usize;
        let mut trunk = 0usize;
        for c in &s.comms {
            let route = match c {
                CommPlacement::Slotted { route, .. } => route.as_slice(),
                CommPlacement::Fluid { route, .. } => route.as_slice(),
                _ => continue,
            };
            remote += 1;
            if route.iter().any(|h| trunk_links.contains(&h.link)) {
                trunk += 1;
            }
        }
        println!(
            "{:<12} {:>10.1} {:>14} {:>16}",
            s.algorithm, s.makespan, remote, trunk
        );
    }

    println!(
        "\nThe probing BA keeps the spine on the fast rack and rarely \
         crosses the trunk; the static-criterion family scatters more \
         and pays for it. BBSA overlaps whatever trunk transfers remain."
    );
}
