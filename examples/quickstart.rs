//! Quickstart: build a task graph and a network, schedule with the
//! paper's algorithms, inspect the result.
//!
//! Run with: `cargo run --release --example quickstart`

use es_core::{validate::validate, BbsaScheduler, ListScheduler, Scheduler};
use es_dag::TaskGraph;
use es_net::gen::{star, SpeedDist};
use es_net::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. An application: a small map-reduce-shaped DAG. Weights are
    //    computation costs, edge costs are communication volumes.
    let mut b = TaskGraph::builder();
    let split = b.add_labeled_task(10.0, "split");
    let workers: Vec<_> = (0..4)
        .map(|i| b.add_labeled_task(40.0, format!("map[{i}]")))
        .collect();
    let reduce = b.add_labeled_task(15.0, "reduce");
    for &w in &workers {
        b.add_edge(split, w, 25.0).expect("unique edges");
        b.add_edge(w, reduce, 25.0).expect("unique edges");
    }
    let dag = b.build().expect("acyclic");

    // 2. A platform: three processors behind one switch. Every
    //    transfer crosses two links (processor->switch,
    //    switch->processor) and contends with everything else on them.
    let topo: Topology = star(
        3,
        SpeedDist::Fixed(1.0),
        SpeedDist::Fixed(1.0),
        &mut StdRng::seed_from_u64(7),
    );

    println!(
        "DAG: {} tasks / {} edges; network: {} processors / {} links\n",
        dag.task_count(),
        dag.edge_count(),
        topo.proc_count(),
        topo.link_count()
    );

    // 3. Schedule with the paper's three algorithms (plus the strong
    //    probing BA) and validate every schedule against the model.
    for sched in [
        Box::new(ListScheduler::ba_static()) as Box<dyn Scheduler>,
        Box::new(ListScheduler::ba()),
        Box::new(ListScheduler::oihsa()),
        Box::new(BbsaScheduler::new()),
    ] {
        let s = sched.schedule(&dag, &topo).expect("connected network");
        validate(&dag, &topo, &s).expect("model invariants hold");
        println!("=== {} — makespan {:.1}", s.algorithm, s.makespan);
        for t in dag.task_ids() {
            let p = &s.tasks[t.index()];
            println!(
                "  {:<10} on P{} [{:>6.1}, {:>6.1})",
                dag.task(t).label.as_deref().unwrap_or("?"),
                p.proc.0,
                p.start,
                p.finish
            );
        }
        // A text Gantt chart: digits are tasks on processor rows;
        // '#' (slots) / rate digits (fluid) mark busy links.
        println!();
        println!(
            "{}",
            es_core::gantt::render(&dag, &topo, &s, &es_core::gantt::GanttOptions::default())
        );
        // And the quality metrics beyond the makespan.
        let m = es_core::metrics(&dag, &topo, &s);
        println!(
            "speedup {:.2} | SLR {:.2} | {} procs used | mean route {:.1} hops\n",
            m.speedup, m.slr, m.processors_used, m.mean_route_length
        );
    }
}
