//! §5 up close: what BBSA's fluid bandwidth sharing actually does to a
//! link.
//!
//! **Part 1** drives the link layer directly: two transfers from two
//! slow uplinks (speed 1) converge on one fast trunk (speed 3).
//! Each transfer can only feed the trunk at 1/3 of its bandwidth —
//! the arrival-rate cap of the paper's formula (4) — so under fluid
//! sharing both cross the trunk *concurrently* and both arrive at
//! t=60. The slotted model gives the trunk exclusively to one transfer
//! at a time: the second one arrives at t=80.
//!
//! **Part 2** shows the same effect end-to-end: on a communication-
//! heavy stencil over the paper's heterogeneous WAN, BBSA's makespan
//! beats the slotted schedulers by ~19% while moving identical volume.
//!
//! Run with: `cargo run --release --example bandwidth_sharing`

use es_core::{validate::validate, BbsaScheduler, ListScheduler, Scheduler};
use es_linksched::bandwidth::{ArrivalCurve, RateProfile};
use es_linksched::slot::SlotQueue;
use es_linksched::CommId;
fn main() {
    part1_link_layer();
    part2_schedulers();
}

fn part1_link_layer() {
    println!("== Part 1: the trunk, driven directly ==\n");
    let volume = 60.0;
    let (up_speed, trunk_speed) = (1.0, 3.0);

    // --- Slotted (BA/OIHSA world): exclusive trunk slots.
    // Each uplink transfer occupies [0, 60); the trunk slot is 20 long
    // with the cut-through virtual-start bound max(0, 60 - 20) = 40.
    let mut trunk_slots = SlotQueue::new();
    let mut arrivals_slotted = Vec::new();
    for i in 0..2u64 {
        let up_finish = volume / up_speed;
        let int = volume / trunk_speed;
        let bound = 0.0f64.max(up_finish - int);
        let start = trunk_slots.probe(bound, int);
        trunk_slots.commit(CommId(i), 1, start, int);
        arrivals_slotted.push(start + int);
    }

    // --- Fluid (BBSA world): rate-capped concurrent crossing.
    let mut trunk_profile = RateProfile::new();
    let mut arrivals_fluid = Vec::new();
    for i in 0..2u64 {
        // The uplink is uncontended: full rate over [0, 60).
        let up = RateProfile::new().allocate(up_speed, ArrivalCurve::Instant { at: 0.0 }, volume);
        let flow = trunk_profile.allocate(
            trunk_speed,
            ArrivalCurve::Upstream {
                flow: &up,
                speed: up_speed,
                delay: 0.0,
            },
            volume,
        );
        arrivals_fluid.push(flow.finish().expect("non-empty"));
        trunk_profile.commit(CommId(i), &flow);
    }

    println!("  transfer   slotted arrival   fluid arrival");
    for i in 0..2 {
        println!(
            "  {:>8}   {:>15.1} {:>15.1}",
            i, arrivals_slotted[i], arrivals_fluid[i]
        );
    }
    println!(
        "\n  Each transfer only needs 1/3 of the trunk (formula (4) caps the\n  \
         forwarding rate at s_up/s_trunk), so fluid sharing fits both at\n  \
         once; exclusive slots serialise them.\n"
    );
}

fn part2_schedulers() {
    println!(
        "== Part 2: end-to-end on a contended WAN ==
"
    );
    // A communication-heavy stencil on the paper's heterogeneous WAN:
    // plenty of concurrent transfers funnelling through shared trunks,
    // which is where the fluid model's concurrency pays off.
    use es_dag::gen::structured::stencil_1d;
    use es_net::gen::{random_switched_wan, WanConfig};
    use es_workload::scale_to_ccr;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(2006);
    let topo = random_switched_wan(&WanConfig::heterogeneous(16), &mut rng);
    let base = stencil_1d(12, 8, 100.0, 100.0);
    let dag = scale_to_ccr(&base, 1.0, topo.mean_proc_speed(), topo.mean_link_speed());

    println!(
        "  {:<10} {:>10} {:>12} {:>14}",
        "algorithm", "makespan", "links used", "peak link busy"
    );
    for sched in [
        Box::new(ListScheduler::ba_static()) as Box<dyn Scheduler>,
        Box::new(ListScheduler::oihsa()),
        Box::new(BbsaScheduler::new()),
    ] {
        let s = sched.schedule(&dag, &topo).expect("connected");
        validate(&dag, &topo, &s).expect("valid");
        let m = es_core::metrics(&dag, &topo, &s);
        println!(
            "  {:<10} {:>10.1} {:>12} {:>14.1}",
            s.algorithm, s.makespan, m.links_used, m.max_link_busy
        );
    }
    println!(
        "
  BBSA moves the same volume with a shorter makespan: transfers
  \
         cross shared links concurrently instead of queueing."
    );
}
