//! Building custom topologies: buses, half-duplex cables, and why the
//! medium matters.
//!
//! The same fork–join application is scheduled on three 4-processor
//! platforms that differ only in their communication medium:
//!
//! * full-duplex star — each direction of each cable is its own link;
//! * half-duplex star — both directions share one schedule per cable;
//! * shared bus — one hyperedge carries *all* traffic.
//!
//! Run with: `cargo run --release --example custom_topology`

use es_core::{validate::validate, BbsaScheduler, ListScheduler, Scheduler};
use es_dag::gen::structured::fork_join;
use es_net::Topology;

fn full_duplex_star() -> Topology {
    let mut b = Topology::builder();
    let hub = b.add_labeled_switch("hub");
    for _ in 0..4 {
        let (pn, _) = b.add_processor(1.0);
        b.add_duplex_cable(pn, hub, 1.0);
    }
    b.build().expect("valid")
}

fn half_duplex_star() -> Topology {
    let mut b = Topology::builder();
    let hub = b.add_labeled_switch("hub");
    for _ in 0..4 {
        let (pn, _) = b.add_processor(1.0);
        b.add_half_duplex_cable(pn, hub, 1.0);
    }
    b.build().expect("valid")
}

fn bus() -> Topology {
    let mut b = Topology::builder();
    let nodes: Vec<_> = (0..4).map(|_| b.add_processor(1.0).0).collect();
    b.add_bus(nodes, 1.0);
    b.build().expect("valid")
}

fn main() {
    // 8 parallel workers; communication cheap enough that spreading
    // out pays, so the medium's contention is what differentiates.
    let dag = fork_join(8, 40.0, 20.0);
    println!(
        "fork-join: {} tasks, {} edges; 4 processors each platform\n",
        dag.task_count(),
        dag.edge_count()
    );

    let platforms: Vec<(&str, Topology)> = vec![
        ("full-duplex star", full_duplex_star()),
        ("half-duplex star", half_duplex_star()),
        ("shared bus", bus()),
    ];

    println!(
        "{:<18} {:>6} {:>10} {:>10} {:>10}",
        "platform", "links", "BA", "OIHSA", "BBSA"
    );
    for (name, topo) in &platforms {
        let mut row = format!("{:<18} {:>6}", name, topo.link_count());
        for sched in [
            Box::new(ListScheduler::ba()) as Box<dyn Scheduler>,
            Box::new(ListScheduler::oihsa()),
            Box::new(BbsaScheduler::new()),
        ] {
            let s = sched.schedule(&dag, topo).expect("connected");
            validate(&dag, topo, &s).expect("valid");
            row.push_str(&format!(" {:>10.1}", s.makespan));
        }
        println!("{row}");
    }

    println!(
        "\nFewer independent links = more contention: the bus serialises \
         every transfer, the half-duplex star serialises each cable's two \
         directions, the full-duplex star only serialises per direction. \
         Schedulers cannot beat the medium — but they decide how gracefully \
         it degrades."
    );
}
