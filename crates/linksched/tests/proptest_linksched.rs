//! Property-based tests of the link resource managers: slot queues,
//! optimal insertion, and fluid bandwidth profiles.

use es_linksched::bandwidth::{ArrivalCurve, Flow, RateProfile};
use es_linksched::optimal::plan_optimal_insert;
use es_linksched::slot::{QueueSnapArena, SlotQueue};
use es_linksched::time::EPS;
use es_linksched::CommId;
use proptest::prelude::*;

/// A slot queue built from arbitrary probe/commit requests, plus a
/// deferrable time per slot.
fn queue_strategy() -> impl Strategy<Value = (SlotQueue, Vec<f64>)> {
    prop::collection::vec((0.0f64..200.0, 0.1f64..20.0, 0.0f64..15.0), 0..40).prop_map(|reqs| {
        let mut q = SlotQueue::new();
        let mut dts = Vec::new();
        for (i, (bound, dur, dt)) in reqs.into_iter().enumerate() {
            let start = q.probe(bound, dur);
            q.commit(CommId(i as u64), 0, start, dur);
            dts.push(dt);
        }
        // dts indexed by *slot order*, not insertion order: rebuild
        // aligned to the sorted queue (values are arbitrary anyway,
        // only the count must match).
        let n = q.len();
        (q, dts.into_iter().take(n).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn probe_commit_never_overlaps((q, _dts) in queue_strategy(),
                                   bound in 0.0f64..250.0,
                                   dur in 0.0f64..25.0) {
        let mut q = q;
        let start = q.probe(bound, dur);
        prop_assert!(start + EPS >= bound, "probe respects the bound");
        q.commit(CommId(9999), 0, start, dur);
        prop_assert!(q.check_invariants().is_ok());
    }

    #[test]
    fn probe_is_first_fit_minimal((q, _dts) in queue_strategy(),
                                  bound in 0.0f64..250.0,
                                  dur in 0.1f64..25.0) {
        let start = q.probe(bound, dur);
        // No feasible placement strictly earlier: check a few earlier
        // candidates all collide or violate the bound.
        let step = (start - bound).max(0.0) / 8.0;
        if step > EPS {
            for k in 0..8 {
                let cand = bound + step * f64::from(k);
                let overlaps = q.slots().iter().any(|s| {
                    cand < s.end - EPS && s.start < cand + dur - EPS
                });
                prop_assert!(overlaps, "candidate {cand} should have collided");
            }
        }
    }

    #[test]
    fn remove_comm_restores_probe((q, _dts) in queue_strategy(),
                                  bound in 0.0f64..250.0,
                                  dur in 0.1f64..25.0) {
        let mut q = q;
        let before = q.probe(bound, dur);
        let start = q.probe(bound, dur);
        q.commit(CommId(5555), 0, start, dur);
        q.remove_comm(CommId(5555));
        let after = q.probe(bound, dur);
        prop_assert_eq!(before.to_bits(), after.to_bits());
        prop_assert!(q.check_invariants().is_ok());
    }

    #[test]
    fn optimal_insert_never_later_than_basic((q, dts) in queue_strategy(),
                                             bound in 0.0f64..250.0,
                                             dur in 0.1f64..25.0) {
        let basic = q.probe(bound, dur);
        let plan = plan_optimal_insert(&q, bound, dur, &dts);
        prop_assert!(plan.start <= basic + EPS,
            "optimal {} later than basic {basic}", plan.start);
        prop_assert!(plan.start + EPS >= bound);
        prop_assert!((plan.end - plan.start - dur).abs() <= EPS);
    }

    #[test]
    fn optimal_insert_shifts_within_slack((q, dts) in queue_strategy(),
                                          bound in 0.0f64..250.0,
                                          dur in 0.1f64..25.0) {
        let plan = plan_optimal_insert(&q, bound, dur, &dts);
        for shift in &plan.shifts {
            prop_assert!(shift.delta > 0.0);
            let (idx, slot) = q.find(shift.comm, shift.seq).unwrap();
            prop_assert!(shift.delta <= dts[idx] + EPS,
                "slot {idx} shifted {} beyond slack {}", shift.delta, dts[idx]);
            prop_assert!((shift.new_start - (slot.start + shift.delta)).abs() <= EPS);
        }
    }

    #[test]
    fn optimal_insert_applied_keeps_queue_valid((q, dts) in queue_strategy(),
                                                bound in 0.0f64..250.0,
                                                dur in 0.1f64..25.0) {
        let mut q = q;
        es_linksched::optimal::optimal_insert(&mut q, CommId(7777), 0, bound, dur, &dts);
        prop_assert!(q.check_invariants().is_ok());
        let (_, slot) = q.find(CommId(7777), 0).unwrap();
        prop_assert!((slot.end - slot.start - dur).abs() <= EPS);
    }
}

/// Independent feasibility oracle for optimal insertion, written from
/// scratch (no `accum` recurrence): can a new transfer `[start,
/// start+dur)` be placed by pushing the overlapped slots right, each
/// within its own deferrable time, cascading shifts down the queue?
fn insertion_feasible(q: &SlotQueue, dts: &[f64], bound: f64, start: f64, dur: f64) -> bool {
    if start + EPS < bound {
        return false;
    }
    // Simulate the cascade: every slot that has not finished by
    // `start` and is touched by the growing push front must defer
    // right within its own slack. (A slot overlapping `start` from the
    // left is pushed past the new transfer entirely — that is exactly
    // what condition (3) permits when `accum` is large enough.)
    let mut pushed_to = start + dur;
    for (i, s) in q.slots().iter().enumerate() {
        if s.end <= start + EPS {
            continue; // entirely before the new transfer
        }
        let delta = pushed_to - s.start;
        if delta <= EPS {
            break; // no contact; cascade over
        }
        if delta > dts[i] + EPS {
            return false;
        }
        pushed_to = s.end + delta;
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn optimal_insert_is_feasible_and_minimal((q, dts) in queue_strategy(),
                                              bound in 0.0f64..250.0,
                                              dur in 0.1f64..25.0) {
        let plan = plan_optimal_insert(&q, bound, dur, &dts);
        prop_assert!(
            insertion_feasible(&q, &dts, bound, plan.start, dur),
            "planned start {} infeasible per the independent oracle", plan.start
        );
        // Theorem 1 (earliest-start): no strictly earlier candidate is
        // feasible. The only meaningful earlier candidates are `bound`
        // and the ends of slots before plan.start.
        let mut candidates = vec![bound];
        for s in q.slots() {
            if s.end < plan.start - EPS && s.end + EPS > bound {
                candidates.push(s.end);
            }
        }
        for c in candidates {
            if c < plan.start - EPS {
                prop_assert!(
                    !insertion_feasible(&q, &dts, bound, c, dur),
                    "earlier start {c} was feasible but planner chose {}",
                    plan.start
                );
            }
        }
    }
}

/// Sequence of instant-arrival fluid allocations.
fn profile_requests() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0f64..100.0, 0.5f64..30.0), 1..25)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fluid_allocations_conserve_volume_and_capacity(reqs in profile_requests(),
                                                      speed in 0.5f64..8.0) {
        let mut p = RateProfile::new();
        for (i, (at, vol)) in reqs.iter().enumerate() {
            let f = p.allocate(speed, ArrivalCurve::Instant { at: *at }, *vol);
            prop_assert!(f.check_invariants().is_ok());
            prop_assert!((f.volume(speed) - vol).abs() < 1e-6 * vol.max(1.0));
            prop_assert!(f.start().unwrap() + EPS >= *at);
            p.commit(CommId(i as u64), &f);
            prop_assert!(p.check_invariants().is_ok());
        }
        prop_assert!(p.peak_usage() <= 1.0 + 1e-4);
    }

    #[test]
    fn fluid_two_hop_chains_respect_causality(reqs in profile_requests(),
                                              s1 in 0.5f64..8.0,
                                              s2 in 0.5f64..8.0) {
        let mut p1 = RateProfile::new();
        let mut p2 = RateProfile::new();
        for (i, (at, vol)) in reqs.iter().enumerate() {
            let f1 = p1.allocate(s1, ArrivalCurve::Instant { at: *at }, *vol);
            let f2 = p2.allocate(
                s2,
                ArrivalCurve::Upstream { flow: &f1, speed: s1, delay: 0.0 },
                *vol,
            );
            // Volume conservation on both hops.
            prop_assert!((f2.volume(s2) - vol).abs() < 1e-6 * vol.max(1.0));
            // Start/finish causality.
            prop_assert!(f2.start().unwrap() + EPS >= f1.start().unwrap());
            prop_assert!(f2.finish().unwrap() + EPS >= f1.finish().unwrap());
            // Cumulative causality at every f2 breakpoint.
            let cum = |f: &Flow, s: f64, t: f64| -> f64 {
                f.pieces
                    .iter()
                    .map(|p| p.rate * s * (t.min(p.end) - p.start).max(0.0))
                    .sum()
            };
            for piece in &f2.pieces {
                for t in [piece.start, piece.end] {
                    prop_assert!(
                        cum(&f2, s2, t) <= cum(&f1, s1, t) + 1e-6 * vol.max(1.0),
                        "forwarded more than arrived at t={t}"
                    );
                }
            }
            p1.commit(CommId(i as u64), &f1);
            p2.commit(CommId(i as u64), &f2);
        }
        prop_assert!(p1.peak_usage() <= 1.0 + 1e-4);
        prop_assert!(p2.peak_usage() <= 1.0 + 1e-4);
    }

    #[test]
    fn fluid_probe_commit_rollback_is_identity(reqs in profile_requests(),
                                               speed in 0.5f64..8.0) {
        let mut p = RateProfile::new();
        // Commit half the requests for a busy background.
        let half = reqs.len() / 2;
        for (i, (at, vol)) in reqs[..half].iter().enumerate() {
            let f = p.allocate(speed, ArrivalCurve::Instant { at: *at }, *vol);
            p.commit(CommId(i as u64), &f);
        }
        // Probe-commit-rollback each remaining request; the profile
        // must behave as if untouched.
        for (i, (at, vol)) in reqs[half..].iter().enumerate() {
            let reference = p.allocate(speed, ArrivalCurve::Instant { at: *at }, *vol);
            let f = p.allocate(speed, ArrivalCurve::Instant { at: *at }, *vol);
            p.commit(CommId(1000 + i as u64), &f);
            p.remove_comm(CommId(1000 + i as u64));
            let again = p.allocate(speed, ArrivalCurve::Instant { at: *at }, *vol);
            prop_assert_eq!(&reference, &again);
        }
    }
}

/// Random op scripts for the indexed-vs-plain differential: each step
/// either probes (with several bounds), probe-commits, removes a
/// random committed communication wholesale, or removes one slot by
/// its exact recorded start (the targeted unschedule fast path).
fn op_script() -> impl Strategy<Value = Vec<(u8, f64, f64, u64)>> {
    prop::collection::vec((0u8..8, 0.0f64..200.0, 0.1f64..20.0, any::<u64>()), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Differential: a gap-indexed queue and a plain queue driven
    /// through the same mutation script answer every probe bitwise
    /// identically and hold bitwise-identical slots throughout —
    /// i.e. the index (watermark repair, prefix skip, targeted
    /// removal) is unobservable except in speed.
    #[test]
    fn indexed_queue_matches_plain_queue_under_random_ops(ops in op_script()) {
        let mut qp = SlotQueue::new();
        let mut qi = SlotQueue::with_gap_index();
        let mut committed: Vec<CommId> = Vec::new();
        let mut next = 0u64;
        for (k, a, b, r) in ops {
            match k % 4 {
                0 | 1 => {
                    // Probe-commit at a random bound (k%4==1 probes
                    // extra shifted bounds first, exercising repeat
                    // reads of a repaired index).
                    if k % 4 == 1 {
                        for bound in [a, a / 2.0, 0.0, a + b] {
                            prop_assert_eq!(
                                qp.probe(bound, b).to_bits(),
                                qi.probe(bound, b).to_bits()
                            );
                        }
                    }
                    let sp = qp.probe(a, b);
                    let si = qi.probe(a, b);
                    prop_assert_eq!(sp.to_bits(), si.to_bits());
                    let c = CommId(next);
                    next += 1;
                    qp.commit(c, 0, sp, b);
                    qi.commit(c, 0, si, b);
                    committed.push(c);
                }
                2 => {
                    if !committed.is_empty() {
                        let c = committed.remove(r as usize % committed.len());
                        qp.remove_comm(c);
                        qi.remove_comm(c);
                    }
                }
                _ => {
                    // Targeted single-slot removal on the indexed
                    // queue vs the reference full scan on the plain
                    // one — the fast path SlottedState::unschedule
                    // takes under `indexed_gaps`.
                    if !committed.is_empty() {
                        let c = committed.remove(r as usize % committed.len());
                        let (_, slot) = qp.find(c, 0).expect("committed slot");
                        qp.remove_comm(c);
                        prop_assert!(qi.remove_slot_at(c, 0, slot.start));
                    }
                }
            }
            prop_assert!(qp.check_invariants().is_ok());
            prop_assert!(qi.check_invariants().is_ok());
            prop_assert_eq!(qp.len(), qi.len());
            for (x, y) in qp.slots().iter().zip(qi.slots()) {
                prop_assert_eq!(x.comm, y.comm);
                prop_assert_eq!(x.seq, y.seq);
                prop_assert_eq!(x.start.to_bits(), y.start.to_bits());
                prop_assert_eq!(x.end.to_bits(), y.end.to_bits());
            }
        }
    }

    /// Differential: optimal insertion (including dts-limited cascade
    /// shifts) plans and applies identically on indexed and plain
    /// queues holding the same slots.
    #[test]
    fn indexed_optimal_insert_matches_plain_exactly((q, dts) in queue_strategy(),
                                                    bound in 0.0f64..250.0,
                                                    dur in 0.1f64..25.0) {
        // Mirror the plain queue into an indexed one, slot for slot.
        let mut qi = SlotQueue::with_gap_index();
        for s in q.slots() {
            qi.commit(s.comm, s.seq, s.start, s.end - s.start);
        }
        // Warm the index so the plan runs against a repaired state.
        let _ = qi.probe(bound, dur);

        let pp = plan_optimal_insert(&q, bound, dur, &dts);
        let pi = plan_optimal_insert(&qi, bound, dur, &dts);
        prop_assert_eq!(pp.index, pi.index);
        prop_assert_eq!(pp.start.to_bits(), pi.start.to_bits());
        prop_assert_eq!(pp.end.to_bits(), pi.end.to_bits());
        prop_assert_eq!(pp.shifts.len(), pi.shifts.len());
        for (x, y) in pp.shifts.iter().zip(&pi.shifts) {
            prop_assert_eq!(x.comm, y.comm);
            prop_assert_eq!(x.seq, y.seq);
            prop_assert_eq!(x.delta.to_bits(), y.delta.to_bits());
            prop_assert_eq!(x.new_start.to_bits(), y.new_start.to_bits());
            prop_assert_eq!(x.new_end.to_bits(), y.new_end.to_bits());
        }

        let mut qp = q;
        es_linksched::optimal::optimal_insert(&mut qp, CommId(8888), 0, bound, dur, &dts);
        es_linksched::optimal::optimal_insert(&mut qi, CommId(8888), 0, bound, dur, &dts);
        prop_assert!(qp.check_invariants().is_ok());
        prop_assert!(qi.check_invariants().is_ok());
        prop_assert_eq!(qp.len(), qi.len());
        for (x, y) in qp.slots().iter().zip(qi.slots()) {
            prop_assert_eq!(x.comm, y.comm);
            prop_assert_eq!(x.start.to_bits(), y.start.to_bits());
            prop_assert_eq!(x.end.to_bits(), y.end.to_bits());
        }
    }

    /// Differential for the §16 column layout: after every step of a
    /// random probe/commit/unschedule script, the SoA serialization
    /// (`snapshot_into`) must equal the reference slot-view
    /// serialization bit for bit, and a fresh queue rebuilt from the
    /// captured window (`restore_from` — the checkpoint arena's
    /// restore path) must be observationally identical: same epoch,
    /// bitwise-same slots, bitwise-same probe answers.
    #[test]
    fn soa_columns_serialize_identically_to_slot_view(ops in op_script()) {
        let mut q = SlotQueue::with_gap_index();
        let mut committed: Vec<CommId> = Vec::new();
        let mut next = 0u64;
        let mut arena = QueueSnapArena::default();
        for (k, a, b, r) in ops {
            match k % 3 {
                0 | 1 => {
                    let s = q.probe(a, b);
                    let c = CommId(next);
                    next += 1;
                    q.commit(c, (r % 4) as u32, s, b);
                    committed.push(c);
                }
                _ => {
                    if !committed.is_empty() {
                        let c = committed.remove(r as usize % committed.len());
                        q.remove_comm(c);
                    }
                }
            }
            // SoA columns vs the reference layout, bit for bit (the
            // snapshot rows are verbatim copies of the columns; raw
            // comm ids resolve through the captured arena table).
            arena.clear();
            let w = q.snapshot_into(&mut arena);
            prop_assert_eq!(w.n as usize, q.len());
            let off = w.off as usize;
            let aoff = w.aoff as usize;
            for (i, s) in q.slots().iter().enumerate() {
                prop_assert_eq!(arena.starts[off + i].to_bits(), s.start.to_bits());
                prop_assert_eq!(arena.ends[off + i].to_bits(), s.end.to_bits());
                let raw = arena.arena_ids[aoff + arena.comm_ids[off + i] as usize];
                prop_assert_eq!(raw, s.comm.0);
                prop_assert_eq!(arena.seqs[off + i], s.seq);
            }
            // Round-trip through the columns: a rebuilt queue is
            // observationally the same queue.
            let mut q2 = SlotQueue::with_gap_index();
            q2.restore_from(&arena, w, q.epoch());
            prop_assert!(q2.check_invariants().is_ok());
            prop_assert_eq!(q2.epoch(), q.epoch());
            prop_assert_eq!(q2.len(), q.len());
            for (x, y) in q.slots().iter().zip(q2.slots()) {
                prop_assert_eq!(x.comm, y.comm);
                prop_assert_eq!(x.seq, y.seq);
                prop_assert_eq!(x.start.to_bits(), y.start.to_bits());
                prop_assert_eq!(x.end.to_bits(), y.end.to_bits());
            }
            for bound in [0.0, a / 2.0, a, a + b] {
                prop_assert_eq!(q.probe(bound, b).to_bits(), q2.probe(bound, b).to_bits());
            }
        }
    }
}
