//! Property-based equivalence of [`SlotQueueOverlay`] against direct
//! [`SlotQueue`] mutation: the copy-on-write overlay must answer every
//! probe bitwise identically to a really-mutated queue and, after an
//! arbitrary probe→commit script, merge to the identical slot sequence
//! (which is what makes the speculative parallel probe in `es-core`
//! exact — see DESIGN.md §11).

use es_linksched::overlay::SlotQueueOverlay;
use es_linksched::slot::{Slot, SlotQueue};
use es_linksched::CommId;
use proptest::prelude::*;

/// A base queue built from arbitrary probe/commit requests (first-fit
/// placements never overlap, so the queue is valid by construction).
fn base_strategy() -> impl Strategy<Value = SlotQueue> {
    prop::collection::vec((0.0f64..150.0, 0.1f64..15.0), 0..30).prop_map(|reqs| {
        let mut q = SlotQueue::new();
        for (i, (bound, dur)) in reqs.into_iter().enumerate() {
            let start = q.probe(bound, dur);
            q.commit(CommId(i as u64), 0, start, dur);
        }
        q
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Drive the same random probe→commit script through a really
    /// mutated clone and through an overlay delta: every probe answer
    /// and the final queues must match bit for bit.
    #[test]
    fn overlay_script_matches_direct_mutation(
        base in base_strategy(),
        script in prop::collection::vec((0.0f64..250.0, 0.1f64..20.0), 0..25),
    ) {
        let mut real = base.clone();
        let mut delta: Vec<Slot> = Vec::new();
        for (k, (bound, dur)) in script.iter().copied().enumerate() {
            let comm = CommId(1000 + k as u64);
            let got = SlotQueueOverlay::new(base.slots(), &delta).probe(bound, dur);
            let want = real.probe(bound, dur);
            prop_assert_eq!(got.to_bits(), want.to_bits(), "probe #{} diverged", k);
            SlotQueueOverlay::commit_into(base.slots(), &mut delta, comm, k as u32, got, dur);
            real.commit(comm, k as u32, want, dur);
        }

        let ov = SlotQueueOverlay::new(base.slots(), &delta);
        ov.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(ov.len(), real.len());
        for (a, b) in ov.iter_merged().zip(real.slots()) {
            prop_assert_eq!(a.comm, b.comm);
            prop_assert_eq!(a.seq, b.seq);
            prop_assert_eq!(a.start.to_bits(), b.start.to_bits());
            prop_assert_eq!(a.end.to_bits(), b.end.to_bits());
        }
        // Replaying the delta into a fresh queue (either tuning)
        // reproduces the really-mutated queue exactly.
        for indexed in [false, true] {
            let q = ov.to_queue(indexed);
            q.check_invariants().map_err(TestCaseError::fail)?;
            prop_assert_eq!(q.len(), real.len());
            for (a, b) in q.slots().iter().zip(real.slots()) {
                prop_assert_eq!(a.comm, b.comm);
                prop_assert_eq!(a.start.to_bits(), b.start.to_bits());
                prop_assert_eq!(a.end.to_bits(), b.end.to_bits());
            }
        }
    }

    /// Interleave overlay commits with *unschedules on the real path*:
    /// after merging a delta into a queue, removing a communication —
    /// by bulk [`SlotQueue::remove_comm`] or by per-slot
    /// [`SlotQueue::remove_slot_at`] — must leave the same bitwise
    /// queue a direct-mutation run produces, and the two removal paths
    /// must agree with each other. Also pins the epoch discipline:
    /// every mutation strictly increases the epoch, probes never do.
    #[test]
    fn unschedule_after_merge_matches_direct_path(
        base in base_strategy(),
        script in prop::collection::vec((0.0f64..250.0, 0.1f64..20.0), 1..20),
        victims in prop::collection::vec(0usize..40, 1..8),
    ) {
        // Build the same final state twice: really-mutated `real`, and
        // overlay delta merged through `to_queue`.
        let mut real = base.clone();
        let mut delta: Vec<Slot> = Vec::new();
        for (k, (bound, dur)) in script.iter().copied().enumerate() {
            let comm = CommId(1000 + k as u64);
            let got = SlotQueueOverlay::new(base.slots(), &delta).probe(bound, dur);
            let want = real.probe(bound, dur);
            prop_assert_eq!(got.to_bits(), want.to_bits());
            SlotQueueOverlay::commit_into(base.slots(), &mut delta, comm, k as u32, got, dur);
            real.commit(comm, k as u32, want, dur);
        }
        let mut merged_bulk = SlotQueueOverlay::new(base.slots(), &delta).to_queue(false);
        let mut merged_at = SlotQueueOverlay::new(base.slots(), &delta).to_queue(true);

        // Unschedule a set of comms (some existing, some absent) from
        // all three queues — real and merged_bulk via remove_comm,
        // merged_at via targeted remove_slot_at with the bulk fallback
        // the scheduler uses.
        for &v in &victims {
            let comm = CommId(1000 + v as u64);
            let before_epoch = merged_at.epoch();
            let removed_real = real.remove_comm(comm);
            let removed_bulk = merged_bulk.remove_comm(comm);
            prop_assert_eq!(removed_real, removed_bulk);
            let targets: Vec<Slot> = merged_at
                .slots()
                .iter()
                .filter(|s| s.comm == comm)
                .copied()
                .collect();
            let mut removed_at = 0usize;
            for t in &targets {
                if merged_at.remove_slot_at(t.comm, t.seq, t.start) {
                    removed_at += 1;
                } else {
                    // Scheduler fallback path; must be unreachable here
                    // because targets came from the queue itself.
                    removed_at += merged_at.remove_comm(comm);
                }
            }
            prop_assert_eq!(removed_real, removed_at, "removal paths disagree");
            if removed_at > 0 {
                prop_assert!(merged_at.epoch() > before_epoch, "unschedule must bump the epoch");
            }
            real.check_invariants().map_err(TestCaseError::fail)?;
            merged_at.check_invariants().map_err(TestCaseError::fail)?;
        }

        // All three survivors are bitwise-identical, and probing them
        // (the mask-refill pattern repair uses) agrees too.
        prop_assert_eq!(real.len(), merged_bulk.len());
        prop_assert_eq!(real.len(), merged_at.len());
        for ((a, b), c) in real.slots().iter().zip(merged_bulk.slots()).zip(merged_at.slots()) {
            prop_assert_eq!(a.comm, b.comm);
            prop_assert_eq!(a.comm, c.comm);
            prop_assert_eq!(a.start.to_bits(), b.start.to_bits());
            prop_assert_eq!(a.start.to_bits(), c.start.to_bits());
            prop_assert_eq!(a.end.to_bits(), b.end.to_bits());
            prop_assert_eq!(a.end.to_bits(), c.end.to_bits());
        }
        for (bound, dur) in [(0.0, 1.0), (10.0, 3.5), (77.0, 0.5)] {
            let epoch_before = real.epoch();
            prop_assert_eq!(real.probe(bound, dur).to_bits(), merged_at.probe(bound, dur).to_bits());
            prop_assert_eq!(real.epoch(), epoch_before, "probe must not bump the epoch");
        }
    }

    /// Probes are read-only: any number of overlays over the same base
    /// and delta agree with each other and leave both untouched.
    #[test]
    fn overlay_probe_is_pure(
        base in base_strategy(),
        bound in 0.0f64..250.0,
        dur in 0.1f64..20.0,
    ) {
        let delta: Vec<Slot> = Vec::new();
        let before: Vec<Slot> = base.slots().to_vec();
        let a = SlotQueueOverlay::new(base.slots(), &delta).probe(bound, dur);
        let b = SlotQueueOverlay::new(base.slots(), &delta).probe(bound, dur);
        prop_assert_eq!(a.to_bits(), b.to_bits());
        prop_assert_eq!(base.slots().len(), before.len());
        for (x, y) in base.slots().iter().zip(&before) {
            prop_assert_eq!(x.start.to_bits(), y.start.to_bits());
            prop_assert_eq!(x.end.to_bits(), y.end.to_bits());
        }
    }
}
