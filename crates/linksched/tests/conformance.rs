//! Backend-conformance kit (es-conformance) instantiated against
//! every `LinkModel` backend this crate ships, in both probe tunings
//! where the backend has one. A new backend earns its place by adding
//! one factory line here.

use es_conformance::{assert_conformance, default_seeds};
use es_linksched::{RateProfile, SafLink, SlotQueue};

/// Link speeds the kit runs at: powers of two keep the script's
/// quarter-integer quantities dyadic, so slot-family witness probes
/// are exact.
const SPEEDS: [f64; 3] = [1.0, 2.0, 4.0];

#[test]
fn slot_queue_reference_probe_conforms() {
    for speed in SPEEDS {
        assert_conformance(speed, &SlotQueue::new, &default_seeds());
    }
}

#[test]
fn slot_queue_indexed_probe_conforms() {
    for speed in SPEEDS {
        assert_conformance(speed, &SlotQueue::with_gap_index, &default_seeds());
    }
}

#[test]
fn fluid_rate_profile_conforms() {
    for speed in SPEEDS {
        assert_conformance(speed, &RateProfile::new, &default_seeds());
    }
}

#[test]
fn store_forward_conforms_across_timings() {
    // Dyadic quantum/latency grids: quantization and latency interact
    // with contention differently at each point, the laws must hold
    // everywhere.
    for (quantum, latency) in [(0.25, 0.0), (1.0, 0.5), (4.0, 2.0)] {
        for speed in SPEEDS {
            assert_conformance(speed, &|| SafLink::new(quantum, latency), &default_seeds());
            assert_conformance(
                speed,
                &|| SafLink::with_gap_index(quantum, latency),
                &default_seeds(),
            );
        }
    }
}
