//! OIHSA's optimal insertion engine (§4.4 of the paper).
//!
//! Basic insertion (BA) can only use idle intervals as they currently
//! are. OIHSA additionally exploits that an already-scheduled slot may
//! be **deferred** without violating link causality: by Lemma 2 a slot
//! of edge `e'` on link `L_m` can move right by
//! `dt = min( t_s(e', NL) - t_s(e', L_m), t_f(e', NL) - t_f(e', L_m) )`
//! (0 on the edge's last route link), because its schedule on the next
//! route link `NL` already starts/finishes no earlier.
//!
//! The engine scans the slot queue **tail to head**, maintaining the
//! paper's `accum` recurrence — formula (2):
//!
//! ```text
//! accum(TS_n) = min( dt_n, accum(TS_{n+1}) + t_s(TS_{n+1}) - t_f(TS_n) )
//! ```
//!
//! `accum(TS_n)` is the furthest slot `n` can be pushed right when all
//! later slots cooperate. A new transfer of length `int` with earliest
//! start `bound` fits immediately before slot `n` iff — condition (3) —
//!
//! ```text
//! max(t_f(TS_{n-1}), bound) + int  <=  t_s(TS_n) + accum(TS_n)
//! ```
//!
//! Because the achievable start time is non-decreasing in the insertion
//! position, the head-most feasible position yields the earliest start;
//! Theorem 1 of the paper shows this placement is optimal under the
//! model's assumptions (non-preemption, defer-only adjustment). The
//! paper's `symbol`/`symbol1` bookkeeping — remembering the newest
//! feasible slot and the slots past which shifts cannot propagate —
//! falls out of the shift loop below, which stops as soon as a
//! propagated shift reaches zero.

use crate::slot::{Slot, SlotQueue};
use crate::time::{approx_le, EPS};
use crate::CommId;

/// One slot displaced by an optimal insertion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlotShift {
    /// The displaced communication.
    pub comm: CommId,
    /// Its route-position tag on this link.
    pub seq: u32,
    /// Rightward displacement (> 0).
    pub delta: f64,
    /// The slot's start time after the shift.
    pub new_start: f64,
    /// The slot's finish time after the shift.
    pub new_end: f64,
}

/// Result of planning (and optionally applying) an optimal insertion.
#[derive(Clone, Debug, PartialEq)]
pub struct OptimalPlacement {
    /// Queue index at which the new slot is inserted (before applying
    /// the shifts; equals queue length when appending).
    pub index: usize,
    /// Start time of the new transfer.
    pub start: f64,
    /// Finish time of the new transfer.
    pub end: f64,
    /// Slots that must be (were) deferred, head-most first. The caller
    /// must propagate `new_start`/`new_end` into its per-communication
    /// bookkeeping.
    pub shifts: Vec<SlotShift>,
}

/// Reusable buffers for [`plan_optimal_insert_with`] /
/// [`optimal_insert_with`]. Placement probes run once per processor
/// candidate per hop; sharing one scratch removes the per-probe
/// `accum`/shift allocations without changing any arithmetic.
#[derive(Clone, Debug, Default)]
pub struct InsertScratch {
    accum: Vec<f64>,
}

impl InsertScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Plan the optimal insertion of a transfer of length `duration` with
/// earliest feasible start `bound` into `queue`, where `dts[i]` is the
/// longest deferrable time (Lemma 2) of the i-th occupied slot.
///
/// Pure: does not modify the queue. See the module docs for the
/// algorithm.
///
/// # Panics
/// Panics if `dts.len() != queue.len()` or any `dt` is negative beyond
/// EPS.
pub fn plan_optimal_insert(
    queue: &SlotQueue,
    bound: f64,
    duration: f64,
    dts: &[f64],
) -> OptimalPlacement {
    plan_optimal_insert_with(queue, bound, duration, dts, &mut InsertScratch::new())
}

/// [`plan_optimal_insert`] reusing the caller's scratch buffers; same
/// plan, bit for bit.
pub fn plan_optimal_insert_with(
    queue: &SlotQueue,
    bound: f64,
    duration: f64,
    dts: &[f64],
    scratch: &mut InsertScratch,
) -> OptimalPlacement {
    let slots = queue.slots();
    let n = slots.len();
    assert_eq!(dts.len(), n, "need one deferrable time per occupied slot");
    debug_assert!(dts.iter().all(|&d| d >= -EPS), "negative deferrable time");
    debug_assert!(duration >= 0.0);

    // Formula (2): accumulated deferrable time, scanned tail -> head.
    scratch.accum.clear();
    scratch.accum.resize(n, 0.0);
    let accum = &mut scratch.accum;
    for i in (0..n).rev() {
        let room_after = if i + 1 == n {
            f64::INFINITY
        } else {
            accum[i + 1] + (slots[i + 1].start - slots[i].end)
        };
        accum[i] = dts[i].max(0.0).min(room_after);
    }

    // Head-most feasible position minimises the start time (the start
    // candidate max(bound, prev.end) is non-decreasing in the index).
    for i in 0..n {
        let start = if i == 0 {
            bound
        } else {
            bound.max(slots[i - 1].end)
        };
        // Condition (3).
        if approx_le(start + duration, slots[i].start + accum[i]) {
            let end = start + duration;
            let shifts = plan_shifts(slots, dts, i, end);
            return OptimalPlacement {
                index: i,
                start,
                end,
                shifts,
            };
        }
    }
    // Append after the last slot.
    let start = if n == 0 {
        bound
    } else {
        bound.max(slots[n - 1].end)
    };
    OptimalPlacement {
        index: n,
        start,
        end: start + duration,
        shifts: Vec::new(),
    }
}

/// Compute the cascade of rightward shifts needed so the new slot
/// ending at `new_end` fits before index `from`.
fn plan_shifts(slots: &[Slot], dts: &[f64], from: usize, new_end: f64) -> Vec<SlotShift> {
    let mut shifts = Vec::new();
    let mut pushed_to = new_end;
    for (k, slot) in slots.iter().enumerate().skip(from) {
        let delta = pushed_to - slot.start;
        if delta <= EPS {
            break;
        }
        debug_assert!(
            delta <= dts[k] + EPS,
            "shift {delta} exceeds deferrable time {} of slot {k} — accum bookkeeping broken",
            dts[k]
        );
        let new_start = slot.start + delta;
        let new_slot_end = slot.end + delta;
        shifts.push(SlotShift {
            comm: slot.comm,
            seq: slot.seq,
            delta,
            new_start,
            new_end: new_slot_end,
        });
        pushed_to = new_slot_end;
    }
    shifts
}

/// Plan **and apply** an optimal insertion: defers the affected slots
/// and inserts the new one. Returns the placement so the caller can
/// update its per-communication times (both for the new transfer and
/// for every shifted one).
pub fn optimal_insert(
    queue: &mut SlotQueue,
    comm: CommId,
    seq: u32,
    bound: f64,
    duration: f64,
    dts: &[f64],
) -> OptimalPlacement {
    optimal_insert_with(
        queue,
        comm,
        seq,
        bound,
        duration,
        dts,
        &mut InsertScratch::new(),
    )
}

/// [`optimal_insert`] reusing the caller's scratch buffers; same
/// placement and queue mutation, bit for bit.
pub fn optimal_insert_with(
    queue: &mut SlotQueue,
    comm: CommId,
    seq: u32,
    bound: f64,
    duration: f64,
    dts: &[f64],
    scratch: &mut InsertScratch,
) -> OptimalPlacement {
    let plan = plan_optimal_insert_with(queue, bound, duration, dts, scratch);
    // Apply shifts from the tail of the affected range backwards so the
    // queue never transiently overlaps.
    for (offset, shift) in plan.shifts.iter().enumerate().rev() {
        let idx = plan.index + offset;
        debug_assert_eq!(queue.slots()[idx].comm, shift.comm);
        debug_assert_eq!(queue.slots()[idx].seq, shift.seq);
        queue.shift_right(idx, shift.delta);
        debug_assert!((queue.slots()[idx].start - shift.new_start).abs() <= EPS);
    }
    queue.insert_at(
        plan.index,
        Slot {
            comm,
            seq,
            start: plan.start,
            end: plan.end,
        },
    );
    // Shifts and the raw insert defer gap-index maintenance; one
    // refold settles the whole burst.
    queue.index_refold();
    debug_assert!(
        queue.check_invariants().is_ok(),
        "optimal insert broke queue"
    );
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: u64) -> CommId {
        CommId(n)
    }

    /// Queue with slots [0,2) [3,5) [8,10); handy gap layout.
    fn base_queue() -> SlotQueue {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 0.0, 2.0);
        q.commit(c(2), 0, 3.0, 2.0);
        q.commit(c(3), 0, 8.0, 2.0);
        q
    }

    #[test]
    fn no_slots_means_start_at_bound() {
        let q = SlotQueue::new();
        let p = plan_optimal_insert(&q, 4.0, 2.0, &[]);
        assert_eq!(p.start, 4.0);
        assert_eq!(p.index, 0);
        assert!(p.shifts.is_empty());
    }

    #[test]
    fn fits_in_existing_gap_without_shifting() {
        let q = base_queue();
        // 1-unit transfer fits in gap [2,3).
        let p = plan_optimal_insert(&q, 0.0, 1.0, &[0.0, 0.0, 0.0]);
        assert_eq!(p.index, 1);
        assert_eq!(p.start, 2.0);
        assert!(p.shifts.is_empty());
    }

    #[test]
    fn behaves_like_basic_insertion_when_dts_are_zero() {
        let q = base_queue();
        // 2-unit transfer: gap [2,3) too small, gap [5,8) fits.
        let p = plan_optimal_insert(&q, 0.0, 2.0, &[0.0, 0.0, 0.0]);
        assert_eq!(p.index, 2);
        assert_eq!(p.start, 5.0);
        assert!(p.shifts.is_empty());
        assert_eq!(p.start, q.probe(0.0, 2.0), "zero slack == basic insertion");
    }

    #[test]
    fn defers_one_slot_to_open_the_gap() {
        let q = base_queue();
        // Slot 2 ([3,5)) may defer by 2 into gap [5,8). A 2-unit
        // transfer then fits at t=2 by pushing slot 2 to [4,6).
        let p = plan_optimal_insert(&q, 0.0, 2.0, &[0.0, 2.0, 0.0]);
        assert_eq!(p.index, 1);
        assert_eq!(p.start, 2.0);
        assert_eq!(p.shifts.len(), 1);
        let s = p.shifts[0];
        assert_eq!(s.comm, c(2));
        assert_eq!(s.delta, 1.0);
        assert_eq!(s.new_start, 4.0);
        assert_eq!(s.new_end, 6.0);
    }

    #[test]
    fn shift_cascades_through_several_slots() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 0.0, 2.0); // [0,2)
        q.commit(c(2), 0, 2.0, 2.0); // [2,4) back-to-back
        q.commit(c(3), 0, 4.0, 2.0); // [4,6)
                                     // All can defer by 3. Insert a 3-unit transfer at the head by
                                     // pushing the whole train right by 3... but appending at 6 is
                                     // later than inserting at 0 with shifts, so insertion wins.
        let p = plan_optimal_insert(&q, 0.0, 3.0, &[3.0, 3.0, 3.0]);
        assert_eq!(p.index, 0);
        assert_eq!(p.start, 0.0);
        assert_eq!(p.shifts.len(), 3);
        assert_eq!(p.shifts[0].delta, 3.0);
        assert_eq!(p.shifts[1].delta, 3.0);
        assert_eq!(p.shifts[2].delta, 3.0);
    }

    #[test]
    fn cascade_stops_when_gap_absorbs_shift() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 2.0, 2.0); // [2,4)
        q.commit(c(2), 0, 9.0, 2.0); // [9,11): gap of 5 after slot 1
                                     // Insert 4 units at bound 0: needs slot 1 pushed by 2; the gap
                                     // absorbs it, slot 2 untouched.
        let p = plan_optimal_insert(&q, 0.0, 4.0, &[2.0, 0.0]);
        assert_eq!(p.index, 0);
        assert_eq!(p.start, 0.0);
        assert_eq!(p.shifts.len(), 1);
        assert_eq!(p.shifts[0].comm, c(1));
        assert_eq!(p.shifts[0].delta, 2.0);
    }

    #[test]
    fn accum_is_limited_by_downstream_slack() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 2.0, 2.0); // [2,4), dt = 5
        q.commit(c(2), 0, 4.0, 2.0); // [4,6), dt = 0 (immovable)
                                     // Slot 1 nominally defers 5 but slot 2 blocks it entirely:
                                     // a 4-unit transfer cannot go before slot 1 (needs push 2).
        let p = plan_optimal_insert(&q, 0.0, 4.0, &[5.0, 0.0]);
        assert_eq!(p.index, 2, "must append");
        assert_eq!(p.start, 6.0);
    }

    #[test]
    fn bound_inside_gap_is_respected() {
        let q = base_queue();
        // Gap [5,8) with bound 6: 2-unit transfer fits at 6 exactly.
        let p = plan_optimal_insert(&q, 6.0, 2.0, &[0.0, 0.0, 0.0]);
        assert_eq!(p.start, 6.0);
        assert_eq!(p.index, 2);
    }

    #[test]
    fn partial_deferral_uses_exact_delta() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 3.0, 3.0); // [3,6), dt = 10
                                     // Insert 5 units at bound 0: fits before if slot 1 shifts by 2.
        let p = plan_optimal_insert(&q, 0.0, 5.0, &[10.0]);
        assert_eq!(p.start, 0.0);
        assert_eq!(p.shifts[0].delta, 2.0);
        assert_eq!(p.shifts[0].new_start, 5.0);
    }

    #[test]
    fn apply_updates_queue_consistently() {
        let mut q = base_queue();
        let p = optimal_insert(&mut q, c(9), 0, 0.0, 2.0, &[0.0, 2.0, 0.0]);
        assert_eq!(p.start, 2.0);
        q.check_invariants().unwrap();
        assert_eq!(q.len(), 4);
        // New slot present.
        let (idx, slot) = q.find(c(9), 0).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(slot.start, 2.0);
        assert_eq!(slot.end, 4.0);
        // Shifted slot moved.
        let (_, shifted) = q.find(c(2), 0).unwrap();
        assert_eq!(shifted.start, 4.0);
        assert_eq!(shifted.end, 6.0);
        // Untouched slots stay.
        let (_, last) = q.find(c(3), 0).unwrap();
        assert_eq!(last.start, 8.0);
    }

    #[test]
    fn apply_append_path() {
        let mut q = base_queue();
        let p = optimal_insert(&mut q, c(9), 0, 0.0, 4.0, &[0.0, 0.0, 0.0]);
        assert_eq!(p.index, 3);
        assert_eq!(p.start, 10.0);
        q.check_invariants().unwrap();
    }

    #[test]
    fn optimal_never_later_than_basic() {
        // Property spot-check with deterministic pseudo-random slots.
        let mut x: u64 = 99;
        for trial in 0..100 {
            let mut q = SlotQueue::new();
            let mut dts = Vec::new();
            let mut t = 0.0;
            for i in 0..20 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                t += ((x >> 33) % 30) as f64 / 10.0;
                let d = 0.5 + ((x >> 13) % 30) as f64 / 10.0;
                q.commit(c(i), 0, t, d);
                t += d;
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                dts.push(((x >> 23) % 40) as f64 / 10.0);
            }
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let bound = ((x >> 33) % 100) as f64 / 10.0;
            let duration = 0.5 + ((x >> 3) % 50) as f64 / 10.0;
            let basic = q.probe(bound, duration);
            let opt = plan_optimal_insert(&q, bound, duration, &dts);
            assert!(
                opt.start <= basic + EPS,
                "trial {trial}: optimal {} later than basic {basic}",
                opt.start
            );
            assert!(opt.start + EPS >= bound);
        }
    }
}
