//! Non-preemptive slot queues — one per link.
//!
//! A [`SlotQueue`] holds the occupied time slots `TS_{m,1..}` of one
//! link, sorted by start time and non-overlapping (edge executions on a
//! link never preempt each other, §2.2). *Basic insertion* (§3) probes
//! for the earliest idle interval of the required duration at or after
//! a lower bound; OIHSA's optimal insertion lives in
//! [`crate::optimal`] and operates on this same structure.

use crate::time::{approx_ge, approx_le, EPS};
use crate::CommId;
use std::cell::{Cell, RefCell};

/// One occupied time slot `TS` on a link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Slot {
    /// The communication occupying the slot.
    pub comm: CommId,
    /// Position of this link within the communication's route (0-based).
    /// Distinguishes the rare case of a route crossing one shared link
    /// twice (possible with buses).
    pub seq: u32,
    /// Slot start time `t_s(TS)`.
    pub start: f64,
    /// Slot finish time `t_f(TS)`; `end - start` is the transfer time
    /// `int(e, L) = c(e)/s(L)`.
    pub end: f64,
}

/// Acceleration structure for [`SlotQueue::probe`], maintained by a
/// watermark: mutations are O(1) (they only lower the watermark to the
/// first changed position) and the index repairs itself incrementally
/// the next time an indexed probe runs, recomputing just the suffix
/// past the watermark. Bursts of mutations between probes therefore
/// coalesce into a single repair, and probe-free phases pay nothing.
///
/// `prefix_max_end[i]` is the *leftmost* maximum of `slots[0..=i].end`
/// (ties keep the earlier slot's bits, matching the first-fit fold's
/// `>` replacement rule). A probe with lower bound `b` skips every
/// leading slot whose prefix-max end is below `b - EPS`: such a slot
/// can neither satisfy the fit test (its start is below the candidate,
/// which never drops below `b`) nor raise the candidate. The remaining
/// walk is the reference loop verbatim, so the result is bitwise
/// identical to [`SlotQueue::probe_reference`] (see DESIGN.md §10).
/// Interior mutability keeps `probe` callable through `&self`.
#[derive(Clone, Debug, Default)]
struct GapIndex {
    /// Entries `[0..watermark)` of `prefix_max_end` are valid.
    watermark: Cell<usize>,
    prefix_max_end: RefCell<Vec<f64>>,
}

impl GapIndex {
    /// Recompute `prefix_max_end` from the watermark to the tail.
    fn repair(&self, slots: &[Slot]) {
        let n = slots.len();
        let from = self.watermark.get().min(n);
        let mut pme = self.prefix_max_end.borrow_mut();
        // Always trim to length: after removals the tail past `n` is
        // stale and must not participate in the binary search.
        pme.resize(n, 0.0);
        if from == n {
            self.watermark.set(n);
            return;
        }
        let mut run = if from > 0 {
            pme[from - 1]
        } else {
            f64::NEG_INFINITY
        };
        for i in from..n {
            if slots[i].end > run {
                run = slots[i].end;
            }
            pme[i] = run;
        }
        self.watermark.set(n);
    }
}

/// Queues shorter than this answer probes by the reference scan even
/// when indexed: a first-fit walk over a handful of slots is cheaper
/// than a repair plus binary search. The watermark stays maintained
/// either way, so the threshold is a pure dispatch decision per probe.
const MIN_INDEXED_LEN: usize = 8;

/// Sorted, non-overlapping queue of occupied slots on one link.
#[derive(Clone, Debug, Default)]
pub struct SlotQueue {
    slots: Vec<Slot>,
    /// `Some` enables the indexed probe fast path; `None` keeps the
    /// reference first-fit scan. Both produce bitwise-identical probes.
    index: Option<GapIndex>,
    /// Mutation epoch: strictly increases on every committed-state
    /// mutation (the `LinkModel` invalidation hook, DESIGN.md §14).
    /// Probes never change it. Not part of the content digest.
    epoch: u64,
}

impl SlotQueue {
    /// New empty queue using the reference (naive) probe scan.
    pub fn new() -> Self {
        Self::default()
    }

    /// New empty queue with the indexed probe fast path enabled.
    pub fn with_gap_index() -> Self {
        Self {
            slots: Vec::new(),
            index: Some(GapIndex::default()),
            epoch: 0,
        }
    }

    /// [`SlotQueue::new`] or [`SlotQueue::with_gap_index`] by flag.
    pub fn indexed(enable: bool) -> Self {
        if enable {
            Self::with_gap_index()
        } else {
            Self::new()
        }
    }

    /// Whether the indexed probe fast path is enabled.
    #[inline]
    pub fn has_gap_index(&self) -> bool {
        self.index.is_some()
    }

    /// Lower the index watermark to `idx` — the first position whose
    /// slot (or predecessor set) changed. O(1); the index repairs the
    /// suffix lazily at the next indexed probe.
    #[inline]
    fn index_update_from(&mut self, idx: usize) {
        if let Some(ix) = &self.index {
            if idx < ix.watermark.get() {
                ix.watermark.set(idx);
            }
        }
    }

    /// Bump the mutation epoch — every committed-state mutator calls
    /// this exactly once before returning (the epoch-discipline
    /// invariant the N2 analysis pass checks for backend impls).
    #[inline]
    fn touch(&mut self) {
        self.epoch += 1;
    }

    /// The mutation epoch: strictly increased by every mutator
    /// ([`SlotQueue::commit`], [`SlotQueue::remove_comm`],
    /// [`SlotQueue::remove_slot_at`] and the optimal-insertion apply
    /// path), untouched by probes. Cache layers key on this to detect
    /// that committed link state changed.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Reset the epoch to a previously observed value — only for
    /// `LinkModel::restore`, whose caller proves (by digest equality)
    /// that the content matches what that epoch described.
    #[inline]
    pub(crate) fn restore_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Order-sensitive content digest over the occupied slots (slots
    /// are kept sorted, so equal content yields equal digests). The
    /// gap index and the epoch do not participate: both are
    /// acceleration/bookkeeping state, not schedule content.
    pub fn content_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325;
        for s in &self.slots {
            h = crate::mix64(h, s.comm.0);
            h = crate::mix64(h, u64::from(s.seq));
            h = crate::mix64(h, s.start.to_bits());
            h = crate::mix64(h, s.end.to_bits());
        }
        h
    }

    /// Number of occupied slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no slot is occupied.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The occupied slots in start-time order.
    #[inline]
    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// Earliest start `>= bound` of an idle interval of length
    /// `duration` (the basic-insertion probe, §3).
    ///
    /// First-fit scan over the gaps between occupied slots; always
    /// succeeds because the horizon past the last slot is free.
    ///
    /// Queues built with [`SlotQueue::with_gap_index`] answer through
    /// the indexed fast path; the result is bitwise identical to
    /// [`SlotQueue::probe_reference`] either way.
    pub fn probe(&self, bound: f64, duration: f64) -> f64 {
        match &self.index {
            Some(ix) if self.slots.len() >= MIN_INDEXED_LEN => {
                self.probe_indexed(ix, bound, duration)
            }
            _ => self.probe_reference(bound, duration),
        }
    }

    /// The pre-optimization first-fit probe, kept verbatim as the
    /// differential-testing reference for the indexed fast path.
    pub fn probe_reference(&self, bound: f64, duration: f64) -> f64 {
        debug_assert!(duration >= 0.0);
        let mut candidate = bound;
        for s in &self.slots {
            if approx_le(candidate + duration, s.start) {
                return candidate;
            }
            if s.end > candidate {
                candidate = s.end;
            }
        }
        candidate
    }

    /// Indexed probe: binary-search past the prefix that cannot affect
    /// the scan, then run the reference loop on the rest.
    fn probe_indexed(&self, ix: &GapIndex, bound: f64, duration: f64) -> f64 {
        debug_assert!(duration >= 0.0);
        ix.repair(&self.slots);
        let pme = ix.prefix_max_end.borrow();
        // Slots before i0 all end below bound - EPS: they can neither
        // satisfy the fit test (their start is below the candidate)
        // nor raise the candidate above `bound`. prefix_max_end is
        // non-decreasing, so the predicate is partitioned.
        let i0 = pme.partition_point(|&e| e < bound - EPS);
        let mut candidate = bound;
        for s in &self.slots[i0..] {
            if approx_le(candidate + duration, s.start) {
                return candidate;
            }
            if s.end > candidate {
                candidate = s.end;
            }
        }
        candidate
    }

    /// Insert a slot `[start, start + duration)` for `comm`.
    ///
    /// # Panics
    /// Panics (in debug and release) if the new slot overlaps an
    /// existing one by more than EPS — callers must only commit starts
    /// obtained from [`SlotQueue::probe`] or the optimal-insertion
    /// engine, so an overlap is a scheduler bug, not an input error.
    pub fn commit(&mut self, comm: CommId, seq: u32, start: f64, duration: f64) {
        let end = start + duration;
        let idx = self.slots.partition_point(|s| s.start < start - EPS);
        if idx > 0 {
            let prev = &self.slots[idx - 1];
            assert!(
                approx_le(prev.end, start),
                "slot overlap: {comm} [{start}, {end}) vs existing {} [{}, {})",
                prev.comm,
                prev.start,
                prev.end
            );
        }
        if idx < self.slots.len() {
            let next = &self.slots[idx];
            assert!(
                approx_le(end, next.start),
                "slot overlap: {comm} [{start}, {end}) vs existing {} [{}, {})",
                next.comm,
                next.start,
                next.end
            );
        }
        self.slots.insert(
            idx,
            Slot {
                comm,
                seq,
                start,
                end,
            },
        );
        self.index_update_from(idx);
        self.touch();
    }

    /// Remove every slot belonging to `comm`; returns how many were
    /// removed. Used to roll back tentative insertions during BA's
    /// processor scan.
    pub fn remove_comm(&mut self, comm: CommId) -> usize {
        let before = self.slots.len();
        let first = self.slots.iter().position(|s| s.comm == comm);
        self.slots.retain(|s| s.comm != comm);
        if let Some(idx) = first {
            self.index_update_from(idx);
        }
        self.touch();
        before - self.slots.len()
    }

    /// Remove the single slot `(comm, seq)` whose recorded start is
    /// `start` (within EPS). Returns whether it was found; callers fall
    /// back to [`SlotQueue::remove_comm`] on a miss. The binary search
    /// makes unscheduling O(log n + tail) instead of a full scan — the
    /// resulting queue is identical either way.
    pub fn remove_slot_at(&mut self, comm: CommId, seq: u32, start: f64) -> bool {
        let mut i = self.slots.partition_point(|s| s.start < start - EPS);
        while i < self.slots.len() && self.slots[i].start <= start + EPS {
            if self.slots[i].comm == comm && self.slots[i].seq == seq {
                self.slots.remove(i);
                self.index_update_from(i);
                self.touch();
                return true;
            }
            i += 1;
        }
        false
    }

    /// The slot (and its index) occupied by `(comm, seq)`, if present.
    pub fn find(&self, comm: CommId, seq: u32) -> Option<(usize, Slot)> {
        self.slots
            .iter()
            .position(|s| s.comm == comm && s.seq == seq)
            .map(|i| (i, self.slots[i]))
    }

    /// Shift slot `idx` right by `delta` (used by optimal insertion).
    ///
    /// The caller is responsible for shifting any following slots that
    /// would now overlap; [`crate::optimal::optimal_insert`] does this.
    pub(crate) fn shift_right(&mut self, idx: usize, delta: f64) {
        debug_assert!(delta >= -EPS, "shift must be rightward, got {delta}");
        self.slots[idx].start += delta;
        self.slots[idx].end += delta;
        self.index_update_from(idx);
        self.touch();
    }

    /// Insert a pre-validated slot at position `idx` (optimal
    /// insertion's commit path, which has already established order).
    pub(crate) fn insert_at(&mut self, idx: usize, slot: Slot) {
        self.slots.insert(idx, slot);
        self.index_update_from(idx);
        self.touch();
    }

    /// Total busy time on the link (sum of slot lengths).
    pub fn busy_time(&self) -> f64 {
        self.slots.iter().map(|s| (s.end - s.start).max(0.0)).sum()
    }

    /// Finish time of the last slot (0 when empty) — the link's current
    /// horizon.
    pub fn horizon(&self) -> f64 {
        self.slots.last().map_or(0.0, |s| s.end)
    }

    /// Internal invariant check: sorted and non-overlapping. Exposed so
    /// validators and property tests can assert it.
    pub fn check_invariants(&self) -> Result<(), String> {
        for w in self.slots.windows(2) {
            if !approx_le(w[0].end, w[1].start) {
                return Err(format!(
                    "slots overlap or are unsorted: {} [{}, {}) then {} [{}, {})",
                    w[0].comm, w[0].start, w[0].end, w[1].comm, w[1].start, w[1].end
                ));
            }
        }
        for s in &self.slots {
            if !approx_ge(s.end, s.start) {
                return Err(format!(
                    "slot {} has negative length [{}, {})",
                    s.comm, s.start, s.end
                ));
            }
        }
        if let Some(ix) = &self.index {
            // Entries below the watermark must equal the fold exactly;
            // entries past it are allowed to be stale by construction.
            let valid = ix.watermark.get().min(self.slots.len());
            let pme = ix.prefix_max_end.borrow();
            if pme.len() < valid {
                return Err(format!(
                    "gap index shorter than its watermark: {} < {valid}",
                    pme.len()
                ));
            }
            let mut run = f64::NEG_INFINITY;
            for (i, s) in self.slots.iter().take(valid).enumerate() {
                if s.end > run {
                    run = s.end;
                }
                if pme[i].to_bits() != run.to_bits() {
                    return Err(format!("gap index stale at {i}: {} vs fold {run}", pme[i]));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: u64) -> CommId {
        CommId(n)
    }

    #[test]
    fn probe_on_empty_queue_returns_bound() {
        let q = SlotQueue::new();
        assert_eq!(q.probe(3.0, 2.0), 3.0);
        assert_eq!(q.probe(0.0, 0.0), 0.0);
    }

    #[test]
    fn probe_finds_gap_between_slots() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 0.0, 2.0);
        q.commit(c(2), 0, 5.0, 2.0);
        // Gap [2, 5) fits a 3-unit transfer.
        assert_eq!(q.probe(0.0, 3.0), 2.0);
        // ... but not a 4-unit one; first fit is after the last slot.
        assert_eq!(q.probe(0.0, 4.0), 7.0);
    }

    #[test]
    fn probe_respects_lower_bound() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 0.0, 2.0);
        q.commit(c(2), 0, 5.0, 2.0);
        // Bound 3 shrinks the middle gap to [3, 5): a 2-unit fits,
        assert_eq!(q.probe(3.0, 2.0), 3.0);
        // a 2.5-unit does not.
        assert_eq!(q.probe(3.0, 2.5), 7.0);
    }

    #[test]
    fn probe_bound_inside_slot_skips_to_slot_end() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 0.0, 4.0);
        assert_eq!(q.probe(2.0, 1.0), 4.0);
    }

    #[test]
    fn probe_allows_touching_slots() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 2.0, 2.0);
        // [0,2) touches the slot start: allowed (half-open).
        assert_eq!(q.probe(0.0, 2.0), 0.0);
    }

    #[test]
    fn commit_keeps_sorted_order() {
        let mut q = SlotQueue::new();
        q.commit(c(2), 0, 5.0, 1.0);
        q.commit(c(1), 0, 0.0, 1.0);
        q.commit(c(3), 0, 2.0, 1.0);
        let starts: Vec<f64> = q.slots().iter().map(|s| s.start).collect();
        assert_eq!(starts, vec![0.0, 2.0, 5.0]);
        q.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "slot overlap")]
    fn commit_panics_on_overlap() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 0.0, 3.0);
        q.commit(c(2), 0, 2.0, 2.0);
    }

    #[test]
    fn commit_zero_duration_is_fine() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 1.0, 0.0);
        assert_eq!(q.len(), 1);
        q.check_invariants().unwrap();
    }

    #[test]
    fn remove_comm_rolls_back() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 0.0, 1.0);
        q.commit(c(2), 0, 2.0, 1.0);
        q.commit(c(2), 1, 4.0, 1.0);
        assert_eq!(q.remove_comm(c(2)), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.slots()[0].comm, c(1));
        assert_eq!(q.remove_comm(c(99)), 0);
    }

    #[test]
    fn find_locates_by_comm_and_seq() {
        let mut q = SlotQueue::new();
        q.commit(c(7), 0, 0.0, 1.0);
        q.commit(c(7), 1, 3.0, 1.0);
        let (idx, slot) = q.find(c(7), 1).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(slot.start, 3.0);
        assert!(q.find(c(7), 2).is_none());
        assert!(q.find(c(8), 0).is_none());
    }

    #[test]
    fn busy_time_and_horizon() {
        let mut q = SlotQueue::new();
        assert_eq!(q.horizon(), 0.0);
        q.commit(c(1), 0, 1.0, 2.0);
        q.commit(c(2), 0, 5.0, 0.5);
        assert_eq!(q.busy_time(), 2.5);
        assert_eq!(q.horizon(), 5.5);
    }

    #[test]
    fn indexed_probe_matches_reference_bitwise_under_mutation() {
        let mut naive = SlotQueue::new();
        let mut fast = SlotQueue::with_gap_index();
        assert!(fast.has_gap_index() && !naive.has_gap_index());
        let mut x: u64 = 0xDEAD_BEEF;
        let step = |x: &mut u64| {
            *x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *x
        };
        for i in 0..300u64 {
            let r = step(&mut x);
            let bound = (r >> 33) as f64 % 80.0;
            let duration = 0.1 + ((r >> 11) % 60) as f64 / 10.0;
            // Probe repeatedly with shifted bounds and cross-check
            // bitwise — repeats push the indexed queue past its
            // probe-count threshold so the fast path (not just the
            // reference bypass) is exercised once the queue is long
            // enough, and the reference-mode probe of the *same* queue
            // rules out state drift.
            for (k, b0) in [bound, bound / 2.0, 0.0, bound + 1.0]
                .into_iter()
                .enumerate()
            {
                let a = naive.probe(b0, duration);
                let b = fast.probe(b0, duration);
                assert_eq!(a.to_bits(), b.to_bits(), "step {i}.{k}: {a} vs {b}");
                assert_eq!(a.to_bits(), fast.probe_reference(b0, duration).to_bits());
            }
            // Mostly insert, sometimes remove a random comm.
            if r % 4 == 0 {
                naive.remove_comm(c(r % 40));
                fast.remove_comm(c(r % 40));
            } else {
                let start = naive.probe(bound, duration);
                naive.commit(c(i % 40), (i / 40) as u32, start, duration);
                fast.commit(c(i % 40), (i / 40) as u32, start, duration);
            }
            naive.check_invariants().unwrap();
            fast.check_invariants().unwrap();
        }
    }

    #[test]
    fn indexed_probe_edge_cases() {
        let mut q = SlotQueue::with_gap_index();
        assert_eq!(q.probe(3.0, 2.0), 3.0, "empty queue returns bound");
        q.commit(c(1), 0, 0.0, 2.0);
        q.commit(c(2), 0, 5.0, 2.0);
        // Same cases as the reference probe tests.
        assert_eq!(q.probe(0.0, 3.0), 2.0);
        assert_eq!(q.probe(0.0, 4.0), 7.0);
        assert_eq!(q.probe(3.0, 2.0), 3.0);
        assert_eq!(q.probe(3.0, 2.5), 7.0);
        assert_eq!(q.probe(6.0, 1.0), 7.0, "bound inside last slot");
        // Clone keeps the index mode and stays consistent.
        let mut q2 = q.clone();
        assert!(q2.has_gap_index());
        q2.commit(c(3), 0, 9.0, 1.0);
        assert_eq!(
            q2.probe(0.0, 4.0).to_bits(),
            q2.probe_reference(0.0, 4.0).to_bits()
        );
    }

    #[test]
    fn long_queue_engages_indexed_path() {
        // Past MIN_INDEXED_LEN slots the indexed body (watermark
        // repair + prefix skip) answers — still bitwise equal to the
        // reference scan.
        let mut q = SlotQueue::with_gap_index();
        for i in 0..(MIN_INDEXED_LEN as u64 + 8) {
            // Gaps of width 1 between slots of width 2, one wide gap.
            let start = if i < 20 {
                i as f64 * 3.0
            } else {
                i as f64 * 3.0 + 50.0
            };
            q.commit(c(i), 0, start, 2.0);
        }
        assert!(q.len() >= MIN_INDEXED_LEN);
        for trial in 0..8u32 {
            let bound = f64::from(trial) * 7.0;
            for duration in [0.5, 1.0, 1.5, 2.5, 40.0, 60.0] {
                assert_eq!(
                    q.probe(bound, duration).to_bits(),
                    q.probe_reference(bound, duration).to_bits(),
                    "bound {bound} duration {duration}"
                );
            }
        }
    }

    #[test]
    fn probe_then_commit_round_trip_never_overlaps() {
        // Simulate a busy link with deterministic pseudo-random loads.
        let mut q = SlotQueue::new();
        let mut x: u64 = 12345;
        for i in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let bound = (x >> 33) as f64 % 50.0;
            let duration = ((x >> 13) % 70) as f64 / 10.0;
            let start = q.probe(bound, duration);
            q.commit(c(i), 0, start, duration);
            q.check_invariants().unwrap();
        }
        assert_eq!(q.len(), 200);
    }
}
