//! Non-preemptive slot queues — one per link.
//!
//! A [`SlotQueue`] holds the occupied time slots `TS_{m,1..}` of one
//! link, sorted by start time and non-overlapping (edge executions on a
//! link never preempt each other, §2.2). *Basic insertion* (§3) probes
//! for the earliest idle interval of the required duration at or after
//! a lower bound; OIHSA's optimal insertion lives in
//! [`crate::optimal`] and operates on this same structure.

use crate::time::{approx_ge, approx_le, EPS};
use crate::CommId;

/// One occupied time slot `TS` on a link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Slot {
    /// The communication occupying the slot.
    pub comm: CommId,
    /// Position of this link within the communication's route (0-based).
    /// Distinguishes the rare case of a route crossing one shared link
    /// twice (possible with buses).
    pub seq: u32,
    /// Slot start time `t_s(TS)`.
    pub start: f64,
    /// Slot finish time `t_f(TS)`; `end - start` is the transfer time
    /// `int(e, L) = c(e)/s(L)`.
    pub end: f64,
}

/// Sorted, non-overlapping queue of occupied slots on one link.
#[derive(Clone, Debug, Default)]
pub struct SlotQueue {
    slots: Vec<Slot>,
}

impl SlotQueue {
    /// New empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of occupied slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no slot is occupied.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The occupied slots in start-time order.
    #[inline]
    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// Earliest start `>= bound` of an idle interval of length
    /// `duration` (the basic-insertion probe, §3).
    ///
    /// First-fit scan over the gaps between occupied slots; always
    /// succeeds because the horizon past the last slot is free.
    pub fn probe(&self, bound: f64, duration: f64) -> f64 {
        debug_assert!(duration >= 0.0);
        let mut candidate = bound;
        for s in &self.slots {
            if approx_le(candidate + duration, s.start) {
                return candidate;
            }
            if s.end > candidate {
                candidate = s.end;
            }
        }
        candidate
    }

    /// Insert a slot `[start, start + duration)` for `comm`.
    ///
    /// # Panics
    /// Panics (in debug and release) if the new slot overlaps an
    /// existing one by more than EPS — callers must only commit starts
    /// obtained from [`SlotQueue::probe`] or the optimal-insertion
    /// engine, so an overlap is a scheduler bug, not an input error.
    pub fn commit(&mut self, comm: CommId, seq: u32, start: f64, duration: f64) {
        let end = start + duration;
        let idx = self.slots.partition_point(|s| s.start < start - EPS);
        if idx > 0 {
            let prev = &self.slots[idx - 1];
            assert!(
                approx_le(prev.end, start),
                "slot overlap: {comm} [{start}, {end}) vs existing {} [{}, {})",
                prev.comm,
                prev.start,
                prev.end
            );
        }
        if idx < self.slots.len() {
            let next = &self.slots[idx];
            assert!(
                approx_le(end, next.start),
                "slot overlap: {comm} [{start}, {end}) vs existing {} [{}, {})",
                next.comm,
                next.start,
                next.end
            );
        }
        self.slots.insert(
            idx,
            Slot {
                comm,
                seq,
                start,
                end,
            },
        );
    }

    /// Remove every slot belonging to `comm`; returns how many were
    /// removed. Used to roll back tentative insertions during BA's
    /// processor scan.
    pub fn remove_comm(&mut self, comm: CommId) -> usize {
        let before = self.slots.len();
        self.slots.retain(|s| s.comm != comm);
        before - self.slots.len()
    }

    /// The slot (and its index) occupied by `(comm, seq)`, if present.
    pub fn find(&self, comm: CommId, seq: u32) -> Option<(usize, Slot)> {
        self.slots
            .iter()
            .position(|s| s.comm == comm && s.seq == seq)
            .map(|i| (i, self.slots[i]))
    }

    /// Shift slot `idx` right by `delta` (used by optimal insertion).
    ///
    /// The caller is responsible for shifting any following slots that
    /// would now overlap; [`crate::optimal::optimal_insert`] does this.
    pub(crate) fn shift_right(&mut self, idx: usize, delta: f64) {
        debug_assert!(delta >= -EPS, "shift must be rightward, got {delta}");
        self.slots[idx].start += delta;
        self.slots[idx].end += delta;
    }

    /// Insert a pre-validated slot at position `idx` (optimal
    /// insertion's commit path, which has already established order).
    pub(crate) fn insert_at(&mut self, idx: usize, slot: Slot) {
        self.slots.insert(idx, slot);
    }

    /// Total busy time on the link (sum of slot lengths).
    pub fn busy_time(&self) -> f64 {
        self.slots.iter().map(|s| (s.end - s.start).max(0.0)).sum()
    }

    /// Finish time of the last slot (0 when empty) — the link's current
    /// horizon.
    pub fn horizon(&self) -> f64 {
        self.slots.last().map_or(0.0, |s| s.end)
    }

    /// Internal invariant check: sorted and non-overlapping. Exposed so
    /// validators and property tests can assert it.
    pub fn check_invariants(&self) -> Result<(), String> {
        for w in self.slots.windows(2) {
            if !approx_le(w[0].end, w[1].start) {
                return Err(format!(
                    "slots overlap or are unsorted: {} [{}, {}) then {} [{}, {})",
                    w[0].comm, w[0].start, w[0].end, w[1].comm, w[1].start, w[1].end
                ));
            }
        }
        for s in &self.slots {
            if !approx_ge(s.end, s.start) {
                return Err(format!(
                    "slot {} has negative length [{}, {})",
                    s.comm, s.start, s.end
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: u64) -> CommId {
        CommId(n)
    }

    #[test]
    fn probe_on_empty_queue_returns_bound() {
        let q = SlotQueue::new();
        assert_eq!(q.probe(3.0, 2.0), 3.0);
        assert_eq!(q.probe(0.0, 0.0), 0.0);
    }

    #[test]
    fn probe_finds_gap_between_slots() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 0.0, 2.0);
        q.commit(c(2), 0, 5.0, 2.0);
        // Gap [2, 5) fits a 3-unit transfer.
        assert_eq!(q.probe(0.0, 3.0), 2.0);
        // ... but not a 4-unit one; first fit is after the last slot.
        assert_eq!(q.probe(0.0, 4.0), 7.0);
    }

    #[test]
    fn probe_respects_lower_bound() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 0.0, 2.0);
        q.commit(c(2), 0, 5.0, 2.0);
        // Bound 3 shrinks the middle gap to [3, 5): a 2-unit fits,
        assert_eq!(q.probe(3.0, 2.0), 3.0);
        // a 2.5-unit does not.
        assert_eq!(q.probe(3.0, 2.5), 7.0);
    }

    #[test]
    fn probe_bound_inside_slot_skips_to_slot_end() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 0.0, 4.0);
        assert_eq!(q.probe(2.0, 1.0), 4.0);
    }

    #[test]
    fn probe_allows_touching_slots() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 2.0, 2.0);
        // [0,2) touches the slot start: allowed (half-open).
        assert_eq!(q.probe(0.0, 2.0), 0.0);
    }

    #[test]
    fn commit_keeps_sorted_order() {
        let mut q = SlotQueue::new();
        q.commit(c(2), 0, 5.0, 1.0);
        q.commit(c(1), 0, 0.0, 1.0);
        q.commit(c(3), 0, 2.0, 1.0);
        let starts: Vec<f64> = q.slots().iter().map(|s| s.start).collect();
        assert_eq!(starts, vec![0.0, 2.0, 5.0]);
        q.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "slot overlap")]
    fn commit_panics_on_overlap() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 0.0, 3.0);
        q.commit(c(2), 0, 2.0, 2.0);
    }

    #[test]
    fn commit_zero_duration_is_fine() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 1.0, 0.0);
        assert_eq!(q.len(), 1);
        q.check_invariants().unwrap();
    }

    #[test]
    fn remove_comm_rolls_back() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 0.0, 1.0);
        q.commit(c(2), 0, 2.0, 1.0);
        q.commit(c(2), 1, 4.0, 1.0);
        assert_eq!(q.remove_comm(c(2)), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.slots()[0].comm, c(1));
        assert_eq!(q.remove_comm(c(99)), 0);
    }

    #[test]
    fn find_locates_by_comm_and_seq() {
        let mut q = SlotQueue::new();
        q.commit(c(7), 0, 0.0, 1.0);
        q.commit(c(7), 1, 3.0, 1.0);
        let (idx, slot) = q.find(c(7), 1).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(slot.start, 3.0);
        assert!(q.find(c(7), 2).is_none());
        assert!(q.find(c(8), 0).is_none());
    }

    #[test]
    fn busy_time_and_horizon() {
        let mut q = SlotQueue::new();
        assert_eq!(q.horizon(), 0.0);
        q.commit(c(1), 0, 1.0, 2.0);
        q.commit(c(2), 0, 5.0, 0.5);
        assert_eq!(q.busy_time(), 2.5);
        assert_eq!(q.horizon(), 5.5);
    }

    #[test]
    fn probe_then_commit_round_trip_never_overlaps() {
        // Simulate a busy link with deterministic pseudo-random loads.
        let mut q = SlotQueue::new();
        let mut x: u64 = 12345;
        for i in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let bound = (x >> 33) as f64 % 50.0;
            let duration = ((x >> 13) % 70) as f64 / 10.0;
            let start = q.probe(bound, duration);
            q.commit(c(i), 0, start, duration);
            q.check_invariants().unwrap();
        }
        assert_eq!(q.len(), 200);
    }
}
