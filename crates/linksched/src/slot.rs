//! Non-preemptive slot queues — one per link.
//!
//! A [`SlotQueue`] holds the occupied time slots `TS_{m,1..}` of one
//! link, sorted by start time and non-overlapping (edge executions on a
//! link never preempt each other, §2.2). *Basic insertion* (§3) probes
//! for the earliest idle interval of the required duration at or after
//! a lower bound; OIHSA's optimal insertion lives in
//! [`crate::optimal`] and operates on this same structure.
//!
//! # Storage layout (DESIGN.md §16)
//!
//! The queue is stored twice, in lockstep:
//!
//! * `slots: Vec<Slot>` — the retained array-of-structs reference
//!   layout. It is the canonical serialization: [`SlotQueue::slots`],
//!   [`SlotQueue::content_digest`], the overlay base snapshots and the
//!   `LinkModel::slot_view` contract all read it, and
//!   [`SlotQueue::probe_reference`] scans it verbatim.
//! * dense columns `col_start`/`col_end` (`f64`) and `col_comm` (u32
//!   arena ids interned per queue) — the structure-of-arrays mirror the
//!   probe hot path scans. A probe touches only the two f64 bit-columns
//!   (16 bytes per slot instead of the 32-byte `Slot` stride), and
//!   rollback scans compare u32 arena ids instead of 8-byte comm ids.
//!
//! Every mutator updates both layouts in the same call, so the mirror
//! can never drift; [`SlotQueue::check_invariants`] asserts bitwise
//! agreement and the layout-identity proptest drives both layouts
//! through random scripts.

use crate::time::{approx_ge, approx_le, EPS};
use crate::CommId;

/// One occupied time slot `TS` on a link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Slot {
    /// The communication occupying the slot.
    pub comm: CommId,
    /// Position of this link within the communication's route (0-based).
    /// Distinguishes the rare case of a route crossing one shared link
    /// twice (possible with buses).
    pub seq: u32,
    /// Slot start time `t_s(TS)`.
    pub start: f64,
    /// Slot finish time `t_f(TS)`; `end - start` is the transfer time
    /// `int(e, L) = c(e)/s(L)`.
    pub end: f64,
}

/// Per-queue interning of [`CommId`]s to dense u32 arena ids, so the
/// comm column is a quarter the width of the raw ids and rollback scans
/// ([`SlotQueue::remove_comm`]) are u32 compares with an O(log n)
/// not-present fast path. Ids are first-seen order; the table is
/// cleared whenever the queue drains so long online runs do not
/// accumulate ids for retired communications.
#[derive(Clone, Debug, Default)]
struct CommArena {
    /// Arena id -> raw comm id.
    ids: Vec<u64>,
    /// `(raw comm id, arena id)` sorted by raw id for binary search.
    sorted: Vec<(u64, u32)>,
}

impl CommArena {
    fn intern(&mut self, comm: CommId) -> u32 {
        match self.sorted.binary_search_by_key(&comm.0, |e| e.0) {
            Ok(i) => self.sorted[i].1,
            Err(i) => {
                let id = u32::try_from(self.ids.len()).expect("comm arena overflow");
                self.ids.push(comm.0);
                self.sorted.insert(i, (comm.0, id));
                id
            }
        }
    }

    fn lookup(&self, comm: CommId) -> Option<u32> {
        self.sorted
            .binary_search_by_key(&comm.0, |e| e.0)
            .ok()
            .map(|i| self.sorted[i].1)
    }

    fn clear(&mut self) {
        self.ids.clear();
        self.sorted.clear();
    }
}

/// Clean-state sentinel for [`GapIndex::dirty_from`].
const CLEAN: usize = usize::MAX;

/// Acceleration structure for [`SlotQueue::probe`].
///
/// `pme[i]` is the *leftmost* maximum of `slots[0..=i].end` (ties keep
/// the earlier slot's bits, matching the first-fit fold's `>`
/// replacement rule). A probe with lower bound `b` binary-searches past
/// every leading slot whose prefix-max end is below `b - EPS`: such a
/// slot can neither satisfy the fit test (its start is below the
/// candidate, which never drops below `b`) nor raise the candidate. The
/// remaining walk is the reference fold verbatim over the SoA columns,
/// so the result is bitwise identical to
/// [`SlotQueue::probe_reference`] (see DESIGN.md §10/§16).
///
/// Maintenance is *eager*: single-slot mutations keep `pme` aligned
/// (insert/remove the matching entry) and refold the suffix with a
/// bitwise early exit — once a recomputed entry equals the stored one,
/// the whole stored tail is proven equal and the refold stops. Probes
/// therefore never pay a repair (the lazy-repair scheme this replaces
/// made interleaved probe/commit/rollback workloads quadratic: every
/// probe repaired the suffix a rollback had just invalidated). Only the
/// optimal-insertion shift burst defers: shifts lower `dirty_from` and
/// [`SlotQueue::index_refold`] folds once per burst.
#[derive(Clone, Debug)]
struct GapIndex {
    /// Leftmost prefix maxima of `col_end`, always length `len()`.
    pme: Vec<f64>,
    /// First possibly-stale entry; [`CLEAN`] when `pme` is fully valid.
    dirty_from: usize,
}

impl Default for GapIndex {
    fn default() -> Self {
        Self {
            pme: Vec::new(),
            dirty_from: CLEAN,
        }
    }
}

impl GapIndex {
    /// Recompute `pme[from..]` from the end column and mark the index
    /// clean. With `early` (valid only after a single aligned
    /// insert/remove at `from`, where the stored tail is the old fold
    /// shifted into place), the fold stops at the first position past
    /// `from` whose stored bits already equal the recomputed run: the
    /// stored chain `pme[j] = fold(pme[j-1], ends[j])` then proves the
    /// rest equal by induction.
    fn refold(&mut self, ends: &[f64], from: usize, early: bool) {
        debug_assert_eq!(self.pme.len(), ends.len());
        let mut run = if from > 0 {
            self.pme[from - 1]
        } else {
            f64::NEG_INFINITY
        };
        for i in from..ends.len() {
            if ends[i] > run {
                run = ends[i];
            }
            if early && i > from && self.pme[i].to_bits() == run.to_bits() {
                self.dirty_from = CLEAN;
                return;
            }
            self.pme[i] = run;
        }
        self.dirty_from = CLEAN;
    }
}

/// Queues shorter than this answer probes by the plain column scan even
/// when indexed: a first-fit walk over a handful of slots is cheaper
/// than a binary search. Because the index is never *consulted* below
/// the threshold, maintenance there is deferred too — mutators on a
/// short queue just lower the dirty watermark instead of refolding, and
/// the first mutation that grows the queue to the threshold refolds
/// once from the watermark. Static schedulers whose queues stay short
/// therefore pay no index upkeep at all.
const MIN_INDEXED_LEN: usize = 8;

/// Shared flat buffers holding verbatim column snapshots of many
/// queues, appended by [`SlotQueue::snapshot_into`] and read back by
/// [`SlotQueue::restore_from`] (the checkpoint arena of DESIGN.md
/// §16). One arena serves a whole probe cycle: each saved queue owns a
/// [`SnapWindow`] of rows, and clearing between cycles keeps the
/// allocations hot instead of churning per-queue buffers.
#[derive(Clone, Debug, Default)]
pub struct QueueSnapArena {
    /// Slot-start bit-column rows.
    pub starts: Vec<f64>,
    /// Slot-end bit-column rows.
    pub ends: Vec<f64>,
    /// u32 comm-arena-id column rows (resolved through `arena_ids`).
    pub comm_ids: Vec<u32>,
    /// Per-slot route sequence numbers.
    pub seqs: Vec<u32>,
    /// Captured comm-arena table: arena id -> raw comm id.
    pub arena_ids: Vec<u64>,
    /// Captured comm-arena search table, sorted by raw comm id.
    pub arena_sorted: Vec<(u64, u32)>,
}

impl QueueSnapArena {
    /// Drop every captured window, keeping the buffer capacity.
    pub fn clear(&mut self) {
        self.starts.clear();
        self.ends.clear();
        self.comm_ids.clear();
        self.seqs.clear();
        self.arena_ids.clear();
        self.arena_sorted.clear();
    }
}

/// One queue's rows inside a [`QueueSnapArena`]: `[off, off + n)` in
/// the slot columns and `[aoff, aoff + an)` in the arena tables.
#[derive(Clone, Copy, Debug)]
pub struct SnapWindow {
    /// First row of this queue's slot columns.
    pub off: u32,
    /// Number of slots captured.
    pub n: u32,
    /// First row of this queue's arena tables.
    pub aoff: u32,
    /// Number of arena entries captured.
    pub an: u32,
}

/// Sorted, non-overlapping queue of occupied slots on one link, stored
/// as a retained `Vec<Slot>` plus SoA probe columns (module docs).
#[derive(Clone, Debug, Default)]
pub struct SlotQueue {
    slots: Vec<Slot>,
    /// SoA mirror of `slots[i].start`.
    col_start: Vec<f64>,
    /// SoA mirror of `slots[i].end`.
    col_end: Vec<f64>,
    /// SoA mirror of `slots[i].comm` as u32 arena ids.
    col_comm: Vec<u32>,
    arena: CommArena,
    /// `Some` enables the indexed probe fast path; `None` keeps the
    /// reference first-fit scan. Both produce bitwise-identical probes.
    index: Option<GapIndex>,
    /// Mutation epoch: strictly increases on every committed-state
    /// mutation (the `LinkModel` invalidation hook, DESIGN.md §14).
    /// Probes never change it. Not part of the content digest.
    epoch: u64,
}

impl SlotQueue {
    /// New empty queue using the reference (naive) probe scan.
    pub fn new() -> Self {
        Self::default()
    }

    /// New empty queue with the indexed probe fast path enabled.
    pub fn with_gap_index() -> Self {
        Self {
            index: Some(GapIndex::default()),
            ..Self::default()
        }
    }

    /// [`SlotQueue::new`] or [`SlotQueue::with_gap_index`] by flag.
    pub fn indexed(enable: bool) -> Self {
        if enable {
            Self::with_gap_index()
        } else {
            Self::new()
        }
    }

    /// Whether the indexed probe fast path is enabled.
    #[inline]
    pub fn has_gap_index(&self) -> bool {
        self.index.is_some()
    }

    /// Bump the mutation epoch — every committed-state mutator calls
    /// this exactly once before returning (the epoch-discipline
    /// invariant the N2 analysis pass checks for backend impls).
    #[inline]
    fn touch(&mut self) {
        self.epoch += 1;
    }

    /// The mutation epoch: strictly increased by every mutator
    /// ([`SlotQueue::commit`], [`SlotQueue::remove_comm`],
    /// [`SlotQueue::remove_slot_at`] and the optimal-insertion apply
    /// path), untouched by probes. Cache layers key on this to detect
    /// that committed link state changed.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Reset the epoch to a previously observed value — only for
    /// `LinkModel::restore`, whose caller proves (by digest equality)
    /// that the content matches what that epoch described.
    #[inline]
    pub(crate) fn restore_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Order-sensitive content digest over the occupied slots (slots
    /// are kept sorted, so equal content yields equal digests). The
    /// gap index, the SoA mirror and the epoch do not participate: all
    /// are acceleration/bookkeeping state, not schedule content.
    pub fn content_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325;
        for s in &self.slots {
            h = crate::mix64(h, s.comm.0);
            h = crate::mix64(h, u64::from(s.seq));
            h = crate::mix64(h, s.start.to_bits());
            h = crate::mix64(h, s.end.to_bits());
        }
        h
    }

    /// Number of occupied slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no slot is occupied.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The occupied slots in start-time order (the retained reference
    /// layout; the SoA columns mirror it bit for bit).
    #[inline]
    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// Append this queue's content to a shared snapshot arena — the
    /// checkpoint arena's save path (DESIGN.md §16). Everything the
    /// restore needs is captured *verbatim*: the f64 bit-columns, the
    /// u32 comm-id column, the slot seqs and the comm-arena tables, so
    /// a save is six bounded memcpys and the matching
    /// [`SlotQueue::restore_from`] never re-interns or searches.
    /// Returns the window naming this queue's rows in the arena.
    pub fn snapshot_into(&self, a: &mut QueueSnapArena) -> SnapWindow {
        let off = a.starts.len() as u32;
        let aoff = a.arena_ids.len() as u32;
        a.starts.extend_from_slice(&self.col_start);
        a.ends.extend_from_slice(&self.col_end);
        a.comm_ids.extend_from_slice(&self.col_comm);
        a.seqs.extend(self.slots.iter().map(|s| s.seq));
        a.arena_ids.extend_from_slice(&self.arena.ids);
        a.arena_sorted.extend_from_slice(&self.arena.sorted);
        SnapWindow {
            off,
            n: self.slots.len() as u32,
            aoff,
            an: self.arena.ids.len() as u32,
        }
    }

    /// Replace this queue's content with a window previously captured
    /// by [`SlotQueue::snapshot_into`] and reset the epoch to the value
    /// observed at capture time — the checkpoint arena's restore path.
    /// Sound for the same reason as `LinkModel::restore`: the caller
    /// replays content captured *at* that epoch, so epoch and content
    /// stay in agreement (the restore checksum in
    /// `SlottedState::restore` re-proves it in debug builds). The
    /// columns and arena tables come back as plain `extend_from_slice`
    /// copies (bit-faithful to the captured state — no re-interning),
    /// the AoS mirror is rebuilt by one gather pass and the gap index
    /// by one refold, so every invariant of
    /// [`SlotQueue::check_invariants`] holds on return.
    pub fn restore_from(&mut self, a: &QueueSnapArena, w: SnapWindow, epoch: u64) {
        let (off, n) = (w.off as usize, w.n as usize);
        let (aoff, an) = (w.aoff as usize, w.an as usize);
        let starts = &a.starts[off..off + n];
        let ends = &a.ends[off..off + n];
        let comm_ids = &a.comm_ids[off..off + n];
        let seqs = &a.seqs[off..off + n];
        let arena_ids = &a.arena_ids[aoff..aoff + an];
        self.col_start.clear();
        self.col_start.extend_from_slice(starts);
        self.col_end.clear();
        self.col_end.extend_from_slice(ends);
        self.col_comm.clear();
        self.col_comm.extend_from_slice(comm_ids);
        self.arena.ids.clear();
        self.arena.ids.extend_from_slice(arena_ids);
        self.arena.sorted.clear();
        self.arena
            .sorted
            .extend_from_slice(&a.arena_sorted[aoff..aoff + an]);
        self.slots.clear();
        for i in 0..n {
            self.slots.push(Slot {
                comm: CommId(arena_ids[comm_ids[i] as usize]),
                seq: seqs[i],
                start: starts[i],
                end: ends[i],
            });
        }
        if let Some(ix) = &mut self.index {
            ix.pme.clear();
            ix.pme.resize(n, 0.0);
            ix.dirty_from = CLEAN;
            ix.refold(&self.col_end, 0, false);
        }
        self.epoch = epoch;
    }

    /// Refold the gap index after a deferred mutation burst (the
    /// optimal-insertion shift path). No-op when the index is absent or
    /// already clean; probes on a dirty queue fall back to the
    /// reference scan, so forgetting to call this costs time, never
    /// correctness.
    pub(crate) fn index_refold(&mut self) {
        let n = self.col_end.len();
        if let Some(ix) = &mut self.index {
            if ix.dirty_from != CLEAN {
                let from = ix.dirty_from.min(n);
                ix.refold(&self.col_end, from, false);
            }
        }
    }

    /// Earliest start `>= bound` of an idle interval of length
    /// `duration` (the basic-insertion probe, §3).
    ///
    /// First-fit scan over the gaps between occupied slots; always
    /// succeeds because the horizon past the last slot is free.
    ///
    /// Queues built with [`SlotQueue::with_gap_index`] answer through
    /// the indexed column fast path; the result is bitwise identical to
    /// [`SlotQueue::probe_reference`] either way.
    pub fn probe(&self, bound: f64, duration: f64) -> f64 {
        match &self.index {
            Some(ix) if ix.dirty_from == CLEAN => {
                if self.slots.len() >= MIN_INDEXED_LEN {
                    // Slots before i0 all end below bound - EPS: they
                    // can neither satisfy the fit test (their start is
                    // below the candidate) nor raise the candidate
                    // above `bound`. pme is non-decreasing, so the
                    // predicate is partitioned.
                    let i0 = ix.pme.partition_point(|&e| e < bound - EPS);
                    self.probe_columns(i0, bound, duration)
                } else {
                    self.probe_columns(0, bound, duration)
                }
            }
            // Dirty index (mid optimal-insertion burst) or no index:
            // the reference scan needs no acceleration state.
            _ => self.probe_reference(bound, duration),
        }
    }

    /// The pre-optimization first-fit probe, kept verbatim as the
    /// differential-testing reference for the indexed fast path.
    pub fn probe_reference(&self, bound: f64, duration: f64) -> f64 {
        debug_assert!(duration >= 0.0);
        let mut candidate = bound;
        for s in &self.slots {
            if approx_le(candidate + duration, s.start) {
                return candidate;
            }
            if s.end > candidate {
                candidate = s.end;
            }
        }
        candidate
    }

    /// The reference fold over the SoA bit-columns starting at `i0` —
    /// branch-light, 16 bytes of cache traffic per slot. Identical
    /// comparison rules as [`SlotQueue::probe_reference`], over columns
    /// that mirror the slots bit for bit, so the result is bitwise
    /// identical by construction.
    fn probe_columns(&self, i0: usize, bound: f64, duration: f64) -> f64 {
        debug_assert!(duration >= 0.0);
        let mut candidate = bound;
        let starts = &self.col_start[i0..];
        let ends = &self.col_end[i0..];
        for (&start, &end) in starts.iter().zip(ends) {
            if approx_le(candidate + duration, start) {
                return candidate;
            }
            if end > candidate {
                candidate = end;
            }
        }
        candidate
    }

    /// Insert a slot `[start, start + duration)` for `comm`.
    ///
    /// # Panics
    /// Panics (in debug and release) if the new slot overlaps an
    /// existing one by more than EPS — callers must only commit starts
    /// obtained from [`SlotQueue::probe`] or the optimal-insertion
    /// engine, so an overlap is a scheduler bug, not an input error.
    pub fn commit(&mut self, comm: CommId, seq: u32, start: f64, duration: f64) {
        let end = start + duration;
        let idx = self.col_start.partition_point(|&s| s < start - EPS);
        if idx > 0 {
            let prev = &self.slots[idx - 1];
            assert!(
                approx_le(prev.end, start),
                "slot overlap: {comm} [{start}, {end}) vs existing {} [{}, {})",
                prev.comm,
                prev.start,
                prev.end
            );
        }
        if idx < self.slots.len() {
            let next = &self.slots[idx];
            assert!(
                approx_le(end, next.start),
                "slot overlap: {comm} [{start}, {end}) vs existing {} [{}, {})",
                next.comm,
                next.start,
                next.end
            );
        }
        self.slots.insert(
            idx,
            Slot {
                comm,
                seq,
                start,
                end,
            },
        );
        self.col_start.insert(idx, start);
        self.col_end.insert(idx, end);
        let id = self.arena.intern(comm);
        self.col_comm.insert(idx, id);
        if let Some(ix) = &mut self.index {
            let was_clean = ix.dirty_from == CLEAN;
            ix.pme.insert(idx, 0.0);
            if self.slots.len() < MIN_INDEXED_LEN {
                // Below the dispatch threshold the index is never
                // consulted: defer the refold (lower the watermark).
                ix.dirty_from = ix.dirty_from.min(idx);
            } else if was_clean {
                ix.refold(&self.col_end, idx, true);
            } else {
                let from = ix.dirty_from.min(idx);
                ix.refold(&self.col_end, from, false);
            }
        }
        self.touch();
    }

    /// Remove every slot belonging to `comm`; returns how many were
    /// removed. Used to roll back tentative insertions during BA's
    /// processor scan. An un-interned comm is an O(log n) miss that
    /// touches no column.
    pub fn remove_comm(&mut self, comm: CommId) -> usize {
        let Some(id) = self.arena.lookup(comm) else {
            self.touch();
            return 0;
        };
        let Some(first) = self.col_comm.iter().position(|&c| c == id) else {
            self.touch();
            return 0;
        };
        let before = self.slots.len();
        // In-place compaction of all four mirrors from the first hit.
        let mut keep = first;
        for i in first..before {
            if self.col_comm[i] != id {
                self.slots[keep] = self.slots[i];
                self.col_start[keep] = self.col_start[i];
                self.col_end[keep] = self.col_end[i];
                self.col_comm[keep] = self.col_comm[i];
                keep += 1;
            }
        }
        self.slots.truncate(keep);
        self.col_start.truncate(keep);
        self.col_end.truncate(keep);
        self.col_comm.truncate(keep);
        if self.slots.is_empty() {
            self.arena.clear();
        }
        if let Some(ix) = &mut self.index {
            ix.pme.truncate(keep);
            let from = ix.dirty_from.min(first).min(keep);
            if keep < MIN_INDEXED_LEN {
                // Short queue: the index is not consulted, defer.
                ix.dirty_from = from;
            } else {
                ix.refold(&self.col_end, from, false);
            }
        }
        self.touch();
        before - keep
    }

    /// Remove the single slot `(comm, seq)` whose recorded start is
    /// `start` (within EPS). Returns whether it was found; callers fall
    /// back to [`SlotQueue::remove_comm`] on a miss. The binary search
    /// makes unscheduling O(log n + tail) instead of a full scan — the
    /// resulting queue is identical either way.
    pub fn remove_slot_at(&mut self, comm: CommId, seq: u32, start: f64) -> bool {
        let mut i = self.col_start.partition_point(|&s| s < start - EPS);
        while i < self.slots.len() && self.col_start[i] <= start + EPS {
            if self.slots[i].comm == comm && self.slots[i].seq == seq {
                self.slots.remove(i);
                self.col_start.remove(i);
                self.col_end.remove(i);
                self.col_comm.remove(i);
                if self.slots.is_empty() {
                    self.arena.clear();
                }
                if let Some(ix) = &mut self.index {
                    let was_clean = ix.dirty_from == CLEAN;
                    ix.pme.remove(i);
                    if self.slots.len() < MIN_INDEXED_LEN {
                        // Short queue: the index is not consulted,
                        // defer the refold.
                        ix.dirty_from = ix.dirty_from.min(i).min(ix.pme.len());
                    } else if was_clean {
                        ix.refold(&self.col_end, i.min(ix.pme.len()), true);
                    } else {
                        let from = ix.dirty_from.min(i).min(ix.pme.len());
                        ix.refold(&self.col_end, from, false);
                    }
                }
                self.touch();
                return true;
            }
            i += 1;
        }
        false
    }

    /// The slot (and its index) occupied by `(comm, seq)`, if present.
    pub fn find(&self, comm: CommId, seq: u32) -> Option<(usize, Slot)> {
        let id = self.arena.lookup(comm)?;
        (0..self.slots.len())
            .find(|&i| self.col_comm[i] == id && self.slots[i].seq == seq)
            .map(|i| (i, self.slots[i]))
    }

    /// Shift slot `idx` right by `delta` (used by optimal insertion).
    ///
    /// The caller is responsible for shifting any following slots that
    /// would now overlap, and for calling [`SlotQueue::index_refold`]
    /// once the burst is applied; [`crate::optimal::optimal_insert`]
    /// does both.
    pub(crate) fn shift_right(&mut self, idx: usize, delta: f64) {
        debug_assert!(delta >= -EPS, "shift must be rightward, got {delta}");
        self.slots[idx].start += delta;
        self.slots[idx].end += delta;
        self.col_start[idx] = self.slots[idx].start;
        self.col_end[idx] = self.slots[idx].end;
        if let Some(ix) = &mut self.index {
            if idx < ix.dirty_from {
                ix.dirty_from = idx;
            }
        }
        self.touch();
    }

    /// Insert a pre-validated slot at position `idx` (optimal
    /// insertion's commit path, which has already established order).
    /// Defers the index refold like [`SlotQueue::shift_right`].
    pub(crate) fn insert_at(&mut self, idx: usize, slot: Slot) {
        self.slots.insert(idx, slot);
        self.col_start.insert(idx, slot.start);
        self.col_end.insert(idx, slot.end);
        let id = self.arena.intern(slot.comm);
        self.col_comm.insert(idx, id);
        if let Some(ix) = &mut self.index {
            ix.pme.insert(idx, 0.0);
            if idx < ix.dirty_from {
                ix.dirty_from = idx;
            }
        }
        self.touch();
    }

    /// Total busy time on the link (sum of slot lengths).
    pub fn busy_time(&self) -> f64 {
        self.slots.iter().map(|s| (s.end - s.start).max(0.0)).sum()
    }

    /// Finish time of the last slot (0 when empty) — the link's current
    /// horizon.
    pub fn horizon(&self) -> f64 {
        self.slots.last().map_or(0.0, |s| s.end)
    }

    /// Internal invariant check: sorted, non-overlapping, SoA mirror in
    /// bitwise agreement with the retained layout, and the gap index
    /// equal to the fold up to its dirty watermark. Exposed so
    /// validators and property tests can assert it.
    pub fn check_invariants(&self) -> Result<(), String> {
        for w in self.slots.windows(2) {
            if !approx_le(w[0].end, w[1].start) {
                return Err(format!(
                    "slots overlap or are unsorted: {} [{}, {}) then {} [{}, {})",
                    w[0].comm, w[0].start, w[0].end, w[1].comm, w[1].start, w[1].end
                ));
            }
        }
        for s in &self.slots {
            if !approx_ge(s.end, s.start) {
                return Err(format!(
                    "slot {} has negative length [{}, {})",
                    s.comm, s.start, s.end
                ));
            }
        }
        let n = self.slots.len();
        if self.col_start.len() != n || self.col_end.len() != n || self.col_comm.len() != n {
            return Err(format!(
                "SoA mirror length drift: {}/{}/{} columns vs {n} slots",
                self.col_start.len(),
                self.col_end.len(),
                self.col_comm.len()
            ));
        }
        for (i, s) in self.slots.iter().enumerate() {
            if self.col_start[i].to_bits() != s.start.to_bits()
                || self.col_end[i].to_bits() != s.end.to_bits()
            {
                return Err(format!("SoA time column drift at {i}"));
            }
            let id = self.col_comm[i] as usize;
            if self.arena.ids.get(id).copied() != Some(s.comm.0) {
                return Err(format!("SoA comm column drift at {i}"));
            }
        }
        if let Some(ix) = &self.index {
            if ix.pme.len() != n {
                return Err(format!(
                    "gap index length drift: {} entries vs {n} slots",
                    ix.pme.len()
                ));
            }
            // Entries below the dirty watermark must equal the fold
            // exactly; entries past it are allowed to be stale until
            // the deferred refold runs.
            let valid = ix.dirty_from.min(n);
            let mut run = f64::NEG_INFINITY;
            for (i, s) in self.slots.iter().take(valid).enumerate() {
                if s.end > run {
                    run = s.end;
                }
                if ix.pme[i].to_bits() != run.to_bits() {
                    return Err(format!(
                        "gap index stale at {i}: {} vs fold {run}",
                        ix.pme[i]
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: u64) -> CommId {
        CommId(n)
    }

    #[test]
    fn probe_on_empty_queue_returns_bound() {
        let q = SlotQueue::new();
        assert_eq!(q.probe(3.0, 2.0), 3.0);
        assert_eq!(q.probe(0.0, 0.0), 0.0);
    }

    #[test]
    fn probe_finds_gap_between_slots() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 0.0, 2.0);
        q.commit(c(2), 0, 5.0, 2.0);
        // Gap [2, 5) fits a 3-unit transfer.
        assert_eq!(q.probe(0.0, 3.0), 2.0);
        // ... but not a 4-unit one; first fit is after the last slot.
        assert_eq!(q.probe(0.0, 4.0), 7.0);
    }

    #[test]
    fn probe_respects_lower_bound() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 0.0, 2.0);
        q.commit(c(2), 0, 5.0, 2.0);
        // Bound 3 shrinks the middle gap to [3, 5): a 2-unit fits,
        assert_eq!(q.probe(3.0, 2.0), 3.0);
        // a 2.5-unit does not.
        assert_eq!(q.probe(3.0, 2.5), 7.0);
    }

    #[test]
    fn probe_bound_inside_slot_skips_to_slot_end() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 0.0, 4.0);
        assert_eq!(q.probe(2.0, 1.0), 4.0);
    }

    #[test]
    fn probe_allows_touching_slots() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 2.0, 2.0);
        // [0,2) touches the slot start: allowed (half-open).
        assert_eq!(q.probe(0.0, 2.0), 0.0);
    }

    #[test]
    fn commit_keeps_sorted_order() {
        let mut q = SlotQueue::new();
        q.commit(c(2), 0, 5.0, 1.0);
        q.commit(c(1), 0, 0.0, 1.0);
        q.commit(c(3), 0, 2.0, 1.0);
        let starts: Vec<f64> = q.slots().iter().map(|s| s.start).collect();
        assert_eq!(starts, vec![0.0, 2.0, 5.0]);
        q.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "slot overlap")]
    fn commit_panics_on_overlap() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 0.0, 3.0);
        q.commit(c(2), 0, 2.0, 2.0);
    }

    #[test]
    fn commit_zero_duration_is_fine() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 1.0, 0.0);
        assert_eq!(q.len(), 1);
        q.check_invariants().unwrap();
    }

    #[test]
    fn remove_comm_rolls_back() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 0.0, 1.0);
        q.commit(c(2), 0, 2.0, 1.0);
        q.commit(c(2), 1, 4.0, 1.0);
        assert_eq!(q.remove_comm(c(2)), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.slots()[0].comm, c(1));
        assert_eq!(q.remove_comm(c(99)), 0);
    }

    #[test]
    fn find_locates_by_comm_and_seq() {
        let mut q = SlotQueue::new();
        q.commit(c(7), 0, 0.0, 1.0);
        q.commit(c(7), 1, 3.0, 1.0);
        let (idx, slot) = q.find(c(7), 1).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(slot.start, 3.0);
        assert!(q.find(c(7), 2).is_none());
        assert!(q.find(c(8), 0).is_none());
    }

    #[test]
    fn busy_time_and_horizon() {
        let mut q = SlotQueue::new();
        assert_eq!(q.horizon(), 0.0);
        q.commit(c(1), 0, 1.0, 2.0);
        q.commit(c(2), 0, 5.0, 0.5);
        assert_eq!(q.busy_time(), 2.5);
        assert_eq!(q.horizon(), 5.5);
    }

    #[test]
    fn indexed_probe_matches_reference_bitwise_under_mutation() {
        let mut naive = SlotQueue::new();
        let mut fast = SlotQueue::with_gap_index();
        assert!(fast.has_gap_index() && !naive.has_gap_index());
        let mut x: u64 = 0xDEAD_BEEF;
        let step = |x: &mut u64| {
            *x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *x
        };
        for i in 0..300u64 {
            let r = step(&mut x);
            let bound = (r >> 33) as f64 % 80.0;
            let duration = 0.1 + ((r >> 11) % 60) as f64 / 10.0;
            // Probe repeatedly with shifted bounds and cross-check
            // bitwise — repeats push the indexed queue past its
            // probe-count threshold so the fast path (not just the
            // reference bypass) is exercised once the queue is long
            // enough, and the reference-mode probe of the *same* queue
            // rules out state drift.
            for (k, b0) in [bound, bound / 2.0, 0.0, bound + 1.0]
                .into_iter()
                .enumerate()
            {
                let a = naive.probe(b0, duration);
                let b = fast.probe(b0, duration);
                assert_eq!(a.to_bits(), b.to_bits(), "step {i}.{k}: {a} vs {b}");
                assert_eq!(a.to_bits(), fast.probe_reference(b0, duration).to_bits());
            }
            // Mostly insert, sometimes remove a random comm.
            if r % 4 == 0 {
                naive.remove_comm(c(r % 40));
                fast.remove_comm(c(r % 40));
            } else {
                let start = naive.probe(bound, duration);
                naive.commit(c(i % 40), (i / 40) as u32, start, duration);
                fast.commit(c(i % 40), (i / 40) as u32, start, duration);
            }
            naive.check_invariants().unwrap();
            fast.check_invariants().unwrap();
        }
    }

    #[test]
    fn indexed_probe_edge_cases() {
        let mut q = SlotQueue::with_gap_index();
        assert_eq!(q.probe(3.0, 2.0), 3.0, "empty queue returns bound");
        q.commit(c(1), 0, 0.0, 2.0);
        q.commit(c(2), 0, 5.0, 2.0);
        // Same cases as the reference probe tests.
        assert_eq!(q.probe(0.0, 3.0), 2.0);
        assert_eq!(q.probe(0.0, 4.0), 7.0);
        assert_eq!(q.probe(3.0, 2.0), 3.0);
        assert_eq!(q.probe(3.0, 2.5), 7.0);
        assert_eq!(q.probe(6.0, 1.0), 7.0, "bound inside last slot");
        // Clone keeps the index mode and stays consistent.
        let mut q2 = q.clone();
        assert!(q2.has_gap_index());
        q2.commit(c(3), 0, 9.0, 1.0);
        assert_eq!(
            q2.probe(0.0, 4.0).to_bits(),
            q2.probe_reference(0.0, 4.0).to_bits()
        );
    }

    #[test]
    fn long_queue_engages_indexed_path() {
        // Past MIN_INDEXED_LEN slots the indexed body (prefix skip over
        // the pme column) answers — still bitwise equal to the
        // reference scan.
        let mut q = SlotQueue::with_gap_index();
        for i in 0..(MIN_INDEXED_LEN as u64 + 8) {
            // Gaps of width 1 between slots of width 2, one wide gap.
            let start = if i < 20 {
                i as f64 * 3.0
            } else {
                i as f64 * 3.0 + 50.0
            };
            q.commit(c(i), 0, start, 2.0);
        }
        assert!(q.len() >= MIN_INDEXED_LEN);
        for trial in 0..8u32 {
            let bound = f64::from(trial) * 7.0;
            for duration in [0.5, 1.0, 1.5, 2.5, 40.0, 60.0] {
                assert_eq!(
                    q.probe(bound, duration).to_bits(),
                    q.probe_reference(bound, duration).to_bits(),
                    "bound {bound} duration {duration}"
                );
            }
        }
    }

    #[test]
    fn probe_then_commit_round_trip_never_overlaps() {
        // Simulate a busy link with deterministic pseudo-random loads.
        let mut q = SlotQueue::new();
        let mut x: u64 = 12345;
        for i in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let bound = (x >> 33) as f64 % 50.0;
            let duration = ((x >> 13) % 70) as f64 / 10.0;
            let start = q.probe(bound, duration);
            q.commit(c(i), 0, start, duration);
            q.check_invariants().unwrap();
        }
        assert_eq!(q.len(), 200);
    }

    #[test]
    fn soa_columns_mirror_slots_bitwise() {
        // Satellite: column invariants — sorted starts, start <= end,
        // columns bitwise equal to the retained layout — under a
        // mixed mutation script. check_invariants() carries the
        // bitwise-mirror assertions; this test drives every mutator.
        let mut q = SlotQueue::with_gap_index();
        for i in 0..40u64 {
            let start = (i % 7) as f64 * 11.0 + (i / 7) as f64;
            let start = q.probe(start, 1.5);
            q.commit(c(i % 6), (i / 6) as u32, start, 1.5);
            q.check_invariants().unwrap();
        }
        for w in q.slots().windows(2) {
            assert!(w[0].start <= w[1].start, "starts unsorted");
        }
        for s in q.slots() {
            assert!(s.start <= s.end, "negative slot");
        }
        // Every removal flavour keeps the mirror intact.
        assert!(q.remove_comm(c(3)) > 0);
        q.check_invariants().unwrap();
        let victim = q.slots()[2];
        assert!(q.remove_slot_at(victim.comm, victim.seq, victim.start));
        q.check_invariants().unwrap();
        // Drain completely: the comm arena resets with the queue.
        for i in 0..6u64 {
            q.remove_comm(c(i));
        }
        assert!(q.is_empty());
        q.check_invariants().unwrap();
        assert_eq!(q.probe(4.0, 1.0), 4.0);
    }

    #[test]
    fn gap_index_consistent_after_unschedule() {
        // Satellite: prefix_max_end stays the exact fold after
        // unschedule (remove_slot_at / remove_comm), including
        // removals of the slot carrying the running maximum.
        let mut q = SlotQueue::with_gap_index();
        // Long slot whose end dominates the prefix maxima, then a tail
        // of short slots.
        q.commit(c(0), 0, 0.0, 30.0);
        for i in 1..(MIN_INDEXED_LEN as u64 + 4) {
            q.commit(c(i), 0, 30.0 + i as f64 * 3.0, 1.0);
        }
        q.check_invariants().unwrap();
        // Removing the dominating slot forces a full refold.
        assert!(q.remove_slot_at(c(0), 0, 0.0));
        q.check_invariants().unwrap();
        for trial in 0..6u32 {
            let bound = f64::from(trial) * 9.0;
            assert_eq!(
                q.probe(bound, 2.0).to_bits(),
                q.probe_reference(bound, 2.0).to_bits()
            );
        }
        // remove_comm in the middle, then probe again.
        assert_eq!(q.remove_comm(c(5)), 1);
        q.check_invariants().unwrap();
        assert_eq!(
            q.probe(0.0, 2.5).to_bits(),
            q.probe_reference(0.0, 2.5).to_bits()
        );
    }

    #[test]
    fn deferred_refold_after_shift_burst() {
        // shift_right/insert_at defer the index; probes stay correct
        // (reference fallback) and index_refold restores the fast path.
        let mut q = SlotQueue::with_gap_index();
        for i in 0..(MIN_INDEXED_LEN as u64 + 2) {
            q.commit(c(i), 0, i as f64 * 4.0, 2.0);
        }
        q.shift_right(3, 1.0);
        q.shift_right(4, 0.5);
        // Dirty: probe answers via the reference scan, bit-identical.
        assert_eq!(
            q.probe(0.0, 3.0).to_bits(),
            q.probe_reference(0.0, 3.0).to_bits()
        );
        q.check_invariants().unwrap();
        q.index_refold();
        q.check_invariants().unwrap();
        for bound in [0.0, 5.0, 13.0, 40.0] {
            assert_eq!(
                q.probe(bound, 2.0).to_bits(),
                q.probe_reference(bound, 2.0).to_bits()
            );
        }
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut q = SlotQueue::with_gap_index();
        for i in 0..12u64 {
            let start = q.probe(i as f64 * 1.7, 1.2);
            q.commit(c(i % 5), (i / 5) as u32, start, 1.2);
        }
        let digest = q.content_digest();
        let epoch = q.epoch();
        let mut arena = QueueSnapArena::default();
        let w = q.snapshot_into(&mut arena);
        assert_eq!(w.n, 12);
        // Mutate, then restore from the captured window.
        q.commit(c(99), 0, q.horizon() + 5.0, 2.0);
        q.remove_comm(c(1));
        assert_ne!(q.content_digest(), digest);
        q.restore_from(&arena, w, epoch);
        assert_eq!(q.content_digest(), digest);
        assert_eq!(q.epoch(), epoch);
        q.check_invariants().unwrap();
        assert_eq!(
            q.probe(0.0, 1.0).to_bits(),
            q.probe_reference(0.0, 1.0).to_bits()
        );
    }
}
