//! The [`LinkModel`] trait: one probe/commit lifecycle over every
//! link-state backend.
//!
//! The paper's two algorithms family manage link capacity with two
//! disjoint structures — BA/OIHSA with non-preemptive
//! [`SlotQueue`]s, BBSA with fluid [`RateProfile`]s — and PR 8 adds a
//! third, the packet-quantized store-and-forward [`crate::SafLink`].
//! This trait is the common surface the schedulers (and the
//! `es-conformance` law kit) exercise:
//!
//! * **probe** — plan the earliest feasible transfer at or after an
//!   availability time. Read-only: neither the content digest nor the
//!   epoch may change.
//! * **commit / unschedule** — apply or exactly roll back a planned
//!   reservation. Every mutation strictly increases the **epoch**, the
//!   invalidation hook cache layers key on (the same discipline
//!   `SlottedState::touch()` implements one level up; the N2 analysis
//!   pass checks it structurally for backend impls).
//! * **checkpoint / restore** — the PR 4 cache-window protocol: a
//!   checkpoint captures `(epoch, digest)`; restore proves by digest
//!   equality that every mutation since has been rolled back and
//!   rewinds the epoch, re-entering the cacheability window.
//! * **slot_view** — the PR 5 snapshot-for-overlay hook: backends
//!   whose committed state is a slot sequence expose it so
//!   copy-on-write [`crate::SlotQueueOverlay`]s can probe against a
//!   frozen base. Fluid backends return `None` (rate profiles have no
//!   slot decomposition).
//!
//! Time/arrival convention: `finish` is when the last bit leaves the
//! link; `arrival` is when the data is usable by the *next* network
//! element (`finish` plus any forwarding latency). Callers chaining a
//! route use hop `i`'s `arrival` as hop `i+1`'s `est`, and the **last**
//! hop's `finish` as the delivery time — the destination processor
//! reads the link directly and pays no forwarding latency.

use crate::bandwidth::{ArrivalCurve, Flow, Piece, RateProfile};
use crate::slot::{Slot, SlotQueue};
use crate::CommId;

/// A planned (not yet committed) transfer on one link.
#[derive(Clone, Debug, PartialEq)]
pub struct Reservation {
    /// Occupancy start on this link, `>= est`.
    pub start: f64,
    /// Occupancy end: the last bit has left the link.
    pub finish: f64,
    /// When the data is usable by the next network element
    /// (`finish` plus the backend's forwarding latency, if any).
    pub arrival: f64,
    /// Fluid backends carry the planned rate pieces here so commit can
    /// reproduce the plan exactly; slot-based backends leave it empty
    /// (their occupancy is fully described by `[start, finish)`).
    pub pieces: Vec<Piece>,
}

/// A `(epoch, digest)` capture of a backend's committed state — the
/// PR 4 cache-window protocol generalized per link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkCheckpoint {
    /// The epoch at capture time.
    pub epoch: u64,
    /// The content digest at capture time.
    pub digest: u64,
}

/// One link's committed-state backend: probe/commit/unschedule with
/// epoch discipline, checkpoint/restore, and an optional slot view for
/// copy-on-write overlays. See the module docs for the laws; the
/// `es-conformance` kit instantiates them against every impl.
pub trait LinkModel {
    /// Short stable name for reports and bench rows.
    fn model_name(&self) -> &'static str;

    /// Plan the earliest feasible transfer of `volume` data units over
    /// this link of `speed`, with the data available at `est`.
    /// **Read-only**: repeated calls on unchanged state return
    /// bitwise-identical reservations and leave epoch and digest
    /// untouched.
    fn probe_transfer(&self, speed: f64, est: f64, volume: f64) -> Reservation;

    /// Commit a reservation previously returned by
    /// [`LinkModel::probe_transfer`] for `(comm, seq)`. Must strictly
    /// increase the epoch.
    ///
    /// # Panics
    /// May panic if the reservation conflicts with state committed
    /// since the probe — commit exactly what was probed, on the state
    /// it was probed against.
    fn commit_transfer(&mut self, comm: CommId, seq: u32, speed: f64, res: &Reservation);

    /// Remove every reservation held by `comm`, returning how many
    /// entries were dropped. Must strictly increase the epoch.
    fn unschedule(&mut self, comm: CommId) -> usize;

    /// The mutation epoch: strictly increased by every mutator, never
    /// by probes.
    fn epoch(&self) -> u64;

    /// Content digest of the committed state (canonical form; epoch
    /// and acceleration structures excluded). Equal digests mean
    /// behaviorally identical committed state.
    fn digest(&self) -> u64;

    /// Capture `(epoch, digest)` — cheap, read-only.
    fn checkpoint(&self) -> LinkCheckpoint {
        LinkCheckpoint {
            epoch: self.epoch(),
            digest: self.digest(),
        }
    }

    /// Re-enter the cacheability window captured by `cp`: asserts (by
    /// digest equality) that every mutation since has been rolled
    /// back, then rewinds the epoch to `cp.epoch`.
    ///
    /// # Panics
    /// Panics if the current digest differs from `cp.digest` — the
    /// caller failed to roll back some mutation, and rewinding the
    /// epoch would let caches serve stale state as fresh.
    fn restore(&mut self, cp: &LinkCheckpoint);

    /// Compaction hook for long-running online schedulers: release the
    /// reservations of every *retired* communication in one sweep,
    /// returning how many entries were dropped. Callers promise the
    /// listed communications are fully in the past of any future
    /// `probe_transfer` availability time, which is what makes the
    /// release semantics-free (freed capacity before the probe window
    /// can never be handed out). The default is one
    /// [`LinkModel::unschedule`] per listed communication, so the epoch
    /// advances per drop exactly as piecewise unscheduling would.
    fn release_all(&mut self, comms: &[CommId]) -> usize {
        comms.iter().map(|&c| self.unschedule(c)).sum()
    }

    /// The committed slots, for backends whose state is a slot
    /// sequence — the snapshot base for [`crate::SlotQueueOverlay`].
    /// `None` for fluid backends.
    fn slot_view(&self) -> Option<&[Slot]>;

    /// Total committed occupancy (link-seconds; fluid backends weight
    /// by rate).
    fn busy_time(&self) -> f64;

    /// End of the last committed reservation (0 when free).
    fn horizon(&self) -> f64;

    /// Structural invariants of the committed state.
    fn check(&self) -> Result<(), String>;
}

impl LinkModel for SlotQueue {
    fn model_name(&self) -> &'static str {
        "slot-queue"
    }

    fn probe_transfer(&self, speed: f64, est: f64, volume: f64) -> Reservation {
        assert!(speed > 0.0, "link speed must be positive");
        let duration = volume / speed;
        let start = self.probe(est, duration);
        let finish = start + duration;
        Reservation {
            start,
            finish,
            arrival: finish,
            pieces: Vec::new(),
        }
    }

    fn commit_transfer(&mut self, comm: CommId, seq: u32, _speed: f64, res: &Reservation) {
        self.commit(comm, seq, res.start, res.finish - res.start);
    }

    fn unschedule(&mut self, comm: CommId) -> usize {
        self.remove_comm(comm)
    }

    fn epoch(&self) -> u64 {
        SlotQueue::epoch(self)
    }

    fn digest(&self) -> u64 {
        self.content_digest()
    }

    fn restore(&mut self, cp: &LinkCheckpoint) {
        assert_eq!(
            self.content_digest(),
            cp.digest,
            "slot-queue restore without full rollback"
        );
        self.restore_epoch(cp.epoch);
    }

    fn slot_view(&self) -> Option<&[Slot]> {
        Some(self.slots())
    }

    fn busy_time(&self) -> f64 {
        SlotQueue::busy_time(self)
    }

    fn horizon(&self) -> f64 {
        SlotQueue::horizon(self)
    }

    fn check(&self) -> Result<(), String> {
        self.check_invariants()
    }
}

impl LinkModel for RateProfile {
    fn model_name(&self) -> &'static str {
        "fluid"
    }

    fn probe_transfer(&self, speed: f64, est: f64, volume: f64) -> Reservation {
        let flow = self.allocate(speed, ArrivalCurve::Instant { at: est }, volume);
        let start = flow.start().unwrap_or(est);
        let finish = flow.finish().unwrap_or(est);
        Reservation {
            start,
            finish,
            arrival: finish,
            pieces: flow.pieces,
        }
    }

    fn commit_transfer(&mut self, comm: CommId, _seq: u32, _speed: f64, res: &Reservation) {
        let flow = Flow {
            pieces: res.pieces.clone(),
        };
        self.commit(comm, &flow);
    }

    fn unschedule(&mut self, comm: CommId) -> usize {
        let dropped = self.alloc_count(comm);
        self.remove_comm(comm);
        dropped
    }

    fn epoch(&self) -> u64 {
        RateProfile::epoch(self)
    }

    fn digest(&self) -> u64 {
        self.content_digest()
    }

    fn restore(&mut self, cp: &LinkCheckpoint) {
        assert_eq!(
            self.content_digest(),
            cp.digest,
            "rate-profile restore without full rollback"
        );
        self.restore_epoch(cp.epoch);
    }

    fn slot_view(&self) -> Option<&[Slot]> {
        None
    }

    fn busy_time(&self) -> f64 {
        RateProfile::busy_time(self)
    }

    fn horizon(&self) -> f64 {
        RateProfile::horizon(self)
    }

    fn check(&self) -> Result<(), String> {
        self.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: u64) -> CommId {
        CommId(n)
    }

    #[test]
    fn slot_queue_reservation_matches_inherent_probe() {
        let mut q = SlotQueue::new();
        q.commit(c(1), 0, 0.0, 2.0);
        let r = q.probe_transfer(4.0, 0.0, 8.0);
        assert_eq!(r.start.to_bits(), q.probe(0.0, 2.0).to_bits());
        assert_eq!(r.finish.to_bits(), (r.start + 2.0).to_bits());
        assert_eq!(r.arrival.to_bits(), r.finish.to_bits());
        assert!(r.pieces.is_empty());
    }

    #[test]
    fn slot_queue_checkpoint_restore_round_trip() {
        let mut q = SlotQueue::with_gap_index();
        q.commit(c(1), 0, 0.0, 1.0);
        let cp = q.checkpoint();
        let r = q.probe_transfer(1.0, 0.0, 3.0);
        q.commit_transfer(c(2), 0, 1.0, &r);
        assert!(LinkModel::epoch(&q) > cp.epoch);
        assert_ne!(LinkModel::digest(&q), cp.digest);
        assert_eq!(q.unschedule(c(2)), 1);
        q.restore(&cp);
        assert_eq!(LinkModel::epoch(&q), cp.epoch);
        assert_eq!(LinkModel::digest(&q), cp.digest);
    }

    #[test]
    #[should_panic(expected = "restore without full rollback")]
    fn slot_queue_restore_detects_unrolled_state() {
        let mut q = SlotQueue::new();
        let cp = q.checkpoint();
        q.commit(c(1), 0, 0.0, 1.0);
        q.restore(&cp);
    }

    #[test]
    fn fluid_commit_unschedule_restores_canonical_digest() {
        let mut p = RateProfile::new();
        let r1 = p.probe_transfer(2.0, 0.0, 10.0);
        p.commit_transfer(c(1), 0, 2.0, &r1);
        let cp = p.checkpoint();
        // A second flow splits the first's segment; rolling it back
        // leaves the split in place but the canonical digest (and so
        // restore) must not see it.
        let r2 = p.probe_transfer(2.0, 1.0, 4.0);
        p.commit_transfer(c(2), 0, 2.0, &r2);
        assert!(p.unschedule(c(2)) > 0);
        p.restore(&cp);
        assert_eq!(LinkModel::epoch(&p), cp.epoch);
        assert_eq!(LinkModel::digest(&p), cp.digest);
    }

    #[test]
    fn release_all_drops_every_listed_comm_on_every_backend() {
        // Slot backend: two committed transfers released in one sweep.
        let mut q = SlotQueue::new();
        for (i, est) in [(1u64, 0.0), (2, 3.0)] {
            let r = q.probe_transfer(1.0, est, 2.0);
            q.commit_transfer(c(i), 0, 1.0, &r);
        }
        let before = LinkModel::epoch(&q);
        assert_eq!(q.release_all(&[c(1), c(2), c(99)]), 2);
        assert!(LinkModel::epoch(&q) > before);
        assert_eq!(LinkModel::busy_time(&q), 0.0);

        // Fluid backend: same sweep through the same trait surface.
        let mut p = RateProfile::new();
        for (i, est) in [(1u64, 0.0), (2, 1.0)] {
            let r = p.probe_transfer(2.0, est, 4.0);
            p.commit_transfer(c(i), 0, 2.0, &r);
        }
        assert!(p.release_all(&[c(1), c(2)]) >= 2);
        assert_eq!(LinkModel::busy_time(&p), 0.0);
    }

    #[test]
    fn fluid_probe_is_pure() {
        let mut p = RateProfile::new();
        let r = p.probe_transfer(1.0, 0.0, 5.0);
        p.commit_transfer(c(7), 0, 1.0, &r);
        let before = p.checkpoint();
        let a = p.probe_transfer(1.0, 2.0, 3.0);
        let b = p.probe_transfer(1.0, 2.0, 3.0);
        assert_eq!(a, b);
        assert_eq!(p.checkpoint(), before);
    }
}
