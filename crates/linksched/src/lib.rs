//! # es-linksched — link schedules for contention-aware edge scheduling
//!
//! The defining idea of the Sinnen–Sousa model that Han & Wang build on
//! is that **communication edges are scheduled on network links** just
//! like tasks on processors. This crate owns the three link-level
//! resource managers the paper's algorithms need:
//!
//! * [`slot::SlotQueue`] — a non-preemptive queue of occupied time
//!   slots per link, with the *basic insertion* (first-fit idle
//!   interval) probe/commit used by Sinnen's BA (§3 of the paper);
//! * [`optimal`] — OIHSA's *optimal insertion* engine (§4.4): scans the
//!   slot queue tail→head with the `accum` recurrence (formula (2)),
//!   finds the earliest feasible insertion point allowing
//!   already-scheduled slots to be **deferred** within their link-
//!   causality slack (Lemma 2), and applies the resulting slot shifts
//!   (Theorem 1 proves the found position optimal);
//! * [`bandwidth`] — BBSA's rate-shareable link profiles (§5): an edge
//!   transfer is a fluid flow of (interval × bandwidth-fraction) pieces;
//!   forwarding on the next route link is capped by the arrival rate
//!   (formula (4) / Theorems 3–4), implemented as a cumulative-flow
//!   greedy sweep that reduces to the paper's piecewise formulas.
//!
//! The crate is deliberately independent of the task-graph layer: link
//! occupants are identified by opaque [`CommId`]s that the scheduler
//! maps to DAG edges.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod model;
pub mod optimal;
pub mod overlay;
pub mod saf;
pub mod slot;
pub mod time;

pub use bandwidth::{ArrivalCurve, Flow, Piece, RateProfile};
pub use model::{LinkCheckpoint, LinkModel, Reservation};
pub use optimal::{optimal_insert, OptimalPlacement, SlotShift};
pub use overlay::SlotQueueOverlay;
pub use saf::SafLink;
pub use slot::{QueueSnapArena, Slot, SlotQueue, SnapWindow};
pub use time::{approx_eq, approx_ge, approx_gt, approx_le, approx_lt, Interval, EPS};

/// SplitMix64-style hash step shared by the backend content digests.
/// Order-sensitive fold: `h' = mix64(h, value)`.
pub(crate) fn mix64(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

use std::fmt;

/// Opaque identifier of one edge communication occupying link
/// resources. Schedulers map DAG edges to `CommId`s (one per scheduled
/// edge instance).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CommId(pub u64);

impl fmt::Debug for CommId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for CommId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}
