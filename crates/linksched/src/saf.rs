//! Packet-quantized store-and-forward link backend ([`SafLink`]).
//!
//! The third rung of the "increasingly realistic" link-model ladder
//! between the repo's two extremes:
//!
//! * the slot-queue backend moves a message as one fluid-rate-1 block
//!   of exactly `volume / speed` seconds;
//! * the fluid backend shares bandwidth continuously;
//! * **this backend** models a store-and-forward switch fabric with
//!   per-link latency + bandwidth: a message is sent as
//!   `ceil(volume / quantum)` fixed-size packets (minimum one — even
//!   an empty message pays a header packet), occupying the wire
//!   contiguously for `packets × quantum / speed` seconds, and the
//!   receiving switch may forward it only `latency` after the last
//!   bit arrived (store-and-forward: the whole message is buffered
//!   before it moves on).
//!
//! Wire occupancy is managed by an inner [`SlotQueue`], so the
//! backend inherits the proven first-fit probe (indexed or reference
//! — bitwise identical either way) and slot semantics; what changes
//! is the *duration law* (quantized up to whole packets) and the
//! *arrival law* (`finish + latency` instead of `finish`). Scheduler
//! integration mirrors exactly this pair: quantize edge costs up to
//! whole packets and add the latency to the per-hop delay under
//! store-and-forward switching (see `es_core::LinkBackend`), so every
//! existing validator/executor/repair path applies unchanged.

use crate::model::{LinkCheckpoint, LinkModel, Reservation};
use crate::slot::{Slot, SlotQueue};
use crate::CommId;

/// A store-and-forward link: packet-quantized wire occupancy on an
/// inner [`SlotQueue`] plus a per-link forwarding latency.
#[derive(Clone, Debug)]
pub struct SafLink {
    queue: SlotQueue,
    /// Packet payload in volume units; durations quantize up to whole
    /// packets. Strictly positive.
    quantum: f64,
    /// Forwarding latency the next network element waits after the
    /// last bit arrived (store-and-forward buffering + switch
    /// processing). Non-negative.
    latency: f64,
}

impl SafLink {
    /// New free link with the given packet quantum (volume units,
    /// `> 0`) and forwarding latency (seconds, `>= 0`), using the
    /// reference probe scan.
    ///
    /// # Panics
    /// Panics on a non-positive quantum or a negative latency.
    pub fn new(quantum: f64, latency: f64) -> Self {
        Self::with_queue(SlotQueue::new(), quantum, latency)
    }

    /// [`SafLink::new`] with the indexed probe fast path enabled.
    pub fn with_gap_index(quantum: f64, latency: f64) -> Self {
        Self::with_queue(SlotQueue::with_gap_index(), quantum, latency)
    }

    fn with_queue(queue: SlotQueue, quantum: f64, latency: f64) -> Self {
        assert!(
            quantum > 0.0 && quantum.is_finite(),
            "packet quantum must be positive, got {quantum}"
        );
        assert!(
            latency >= 0.0 && latency.is_finite(),
            "forwarding latency must be non-negative, got {latency}"
        );
        Self {
            queue,
            quantum,
            latency,
        }
    }

    /// The packet quantum (volume units).
    pub fn quantum(&self) -> f64 {
        self.quantum
    }

    /// The forwarding latency (seconds).
    pub fn latency(&self) -> f64 {
        self.latency
    }

    /// Number of packets a message of `volume` occupies: at least one
    /// (header), else `ceil(volume / quantum)`.
    pub fn packets(&self, volume: f64) -> u64 {
        debug_assert!(volume >= 0.0);
        let n = (volume / self.quantum).ceil();
        if n < 1.0 {
            1
        } else {
            n as u64
        }
    }

    /// Wire occupancy of a message of `volume` on a link of `speed`:
    /// `packets × quantum / speed`.
    pub fn occupancy(&self, speed: f64, volume: f64) -> f64 {
        assert!(speed > 0.0, "link speed must be positive");
        // Multiply before dividing so that when the quantum exactly
        // divides the volume the result carries the same bits as the
        // un-quantized `quantized_volume / speed`.
        (self.packets(volume) as f64) * self.quantum / speed
    }

    /// The inner slot queue (occupied wire intervals).
    pub fn queue(&self) -> &SlotQueue {
        &self.queue
    }
}

impl LinkModel for SafLink {
    fn model_name(&self) -> &'static str {
        "store-forward"
    }

    fn probe_transfer(&self, speed: f64, est: f64, volume: f64) -> Reservation {
        let occ = self.occupancy(speed, volume);
        let start = self.queue.probe(est, occ);
        let finish = start + occ;
        Reservation {
            start,
            finish,
            arrival: finish + self.latency,
            pieces: Vec::new(),
        }
    }

    fn commit_transfer(&mut self, comm: CommId, seq: u32, _speed: f64, res: &Reservation) {
        self.queue
            .commit(comm, seq, res.start, res.finish - res.start);
    }

    fn unschedule(&mut self, comm: CommId) -> usize {
        self.queue.remove_comm(comm)
    }

    fn epoch(&self) -> u64 {
        self.queue.epoch()
    }

    fn digest(&self) -> u64 {
        // Parameters participate: two SaF links with equal occupancy
        // but different quantization behave differently from here on.
        let mut h = self.queue.content_digest();
        h = crate::mix64(h, self.quantum.to_bits());
        h = crate::mix64(h, self.latency.to_bits());
        h
    }

    fn restore(&mut self, cp: &LinkCheckpoint) {
        assert_eq!(
            LinkModel::digest(self),
            cp.digest,
            "store-forward restore without full rollback"
        );
        self.queue.restore_epoch(cp.epoch);
    }

    fn slot_view(&self) -> Option<&[Slot]> {
        Some(self.queue.slots())
    }

    fn busy_time(&self) -> f64 {
        self.queue.busy_time()
    }

    fn horizon(&self) -> f64 {
        self.queue.horizon()
    }

    fn check(&self) -> Result<(), String> {
        self.queue.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: u64) -> CommId {
        CommId(n)
    }

    #[test]
    fn packet_counts_round_up_with_header_minimum() {
        let l = SafLink::new(4.0, 0.5);
        assert_eq!(l.packets(0.0), 1);
        assert_eq!(l.packets(0.1), 1);
        assert_eq!(l.packets(4.0), 1);
        assert_eq!(l.packets(4.1), 2);
        assert_eq!(l.packets(8.0), 2);
        assert_eq!(l.packets(9.0), 3);
    }

    #[test]
    fn occupancy_is_quantized_and_arrival_pays_latency() {
        let l = SafLink::new(4.0, 0.5);
        // 9 volume units on a speed-2 link: 3 packets × 4 / 2 = 6s.
        let r = l.probe_transfer(2.0, 1.0, 9.0);
        assert_eq!(r.start, 1.0);
        assert_eq!(r.finish, 7.0);
        assert_eq!(r.arrival, 7.5);
    }

    #[test]
    fn divisible_volume_matches_unquantized_bits() {
        // quantum exactly divides the volume: occupancy carries the
        // same bits as volume / speed, the reduction the scheduler
        // equivalence (integration_backends) relies on.
        let l = SafLink::new(1.0, 0.0);
        for (vol, speed) in [(8.0, 2.0), (21.0, 3.0), (5.0, 1.0)] {
            assert_eq!(l.occupancy(speed, vol).to_bits(), (vol / speed).to_bits());
        }
    }

    #[test]
    fn contention_uses_first_fit_like_the_slot_backend() {
        let mut l = SafLink::new(1.0, 0.25);
        let a = l.probe_transfer(1.0, 0.0, 3.0);
        l.commit_transfer(c(1), 0, 1.0, &a);
        // Second message must queue behind the first.
        let b = l.probe_transfer(1.0, 0.0, 2.0);
        assert_eq!(b.start, a.finish);
        l.commit_transfer(c(2), 0, 1.0, &b);
        assert_eq!(l.queue().len(), 2);
        l.check().unwrap();
        // Unschedule the head: the gap reopens bitwise.
        let cp_digest = {
            let mut fresh = SafLink::new(1.0, 0.25);
            let only = fresh.probe_transfer(1.0, 3.0, 2.0);
            // Place the survivor where it actually sits.
            fresh.commit_transfer(c(2), 0, 1.0, &b);
            let _ = only;
            LinkModel::digest(&fresh)
        };
        assert_eq!(l.unschedule(c(1)), 1);
        assert_eq!(LinkModel::digest(&l), cp_digest);
    }

    #[test]
    #[should_panic(expected = "packet quantum must be positive")]
    fn zero_quantum_is_rejected() {
        let _ = SafLink::new(0.0, 0.0);
    }
}
