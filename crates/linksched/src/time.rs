//! Epsilon-tolerant time arithmetic and intervals.
//!
//! All schedule times are `f64`. Slot boundaries are produced by chains
//! of `cost / speed` divisions and BBSA rate multiplications, so exact
//! equality is meaningless; every ordering decision in the workspace
//! goes through the comparators here with a single global [`EPS`].

/// Global comparison tolerance, in time units.
///
/// The paper's workloads use costs up to 1000 and makespans up to ~1e6,
/// so 1e-6 absolute slack is ~12 orders of magnitude above f64 noise at
/// that scale while far below any meaningful schedule difference.
pub const EPS: f64 = 1e-6;

/// `a <= b` within [`EPS`].
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + EPS
}

/// `a >= b` within [`EPS`].
#[inline]
pub fn approx_ge(a: f64, b: f64) -> bool {
    a + EPS >= b
}

/// `a < b` by more than [`EPS`].
#[inline]
pub fn approx_lt(a: f64, b: f64) -> bool {
    a < b - EPS
}

/// `a > b` by more than [`EPS`].
#[inline]
pub fn approx_gt(a: f64, b: f64) -> bool {
    a > b + EPS
}

/// `|a - b| <= EPS`.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}

/// A half-open time interval `[start, end)`.
///
/// Zero-length intervals are permitted (they represent zero-cost
/// communications, which the model allows).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Inclusive start.
    pub start: f64,
    /// Exclusive end; `end >= start`.
    pub end: f64,
}

impl Interval {
    /// Construct; debug-asserts `end >= start` (within EPS).
    #[inline]
    pub fn new(start: f64, end: f64) -> Self {
        debug_assert!(approx_le(start, end), "interval [{start}, {end}) reversed");
        Self { start, end }
    }

    /// Duration `end - start` (clamped at 0 against rounding).
    #[inline]
    pub fn len(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }

    /// True if the interval has (approximately) zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        approx_le(self.end, self.start)
    }

    /// Whether `t` lies in `[start, end)` within EPS.
    #[inline]
    pub fn contains(&self, t: f64) -> bool {
        approx_ge(t, self.start) && approx_lt(t, self.end)
    }

    /// Whether two intervals overlap by more than EPS.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        approx_gt(self.end.min(other.end), self.start.max(other.start))
    }

    /// Shift both endpoints by `dt`.
    #[inline]
    #[must_use]
    pub fn shifted(&self, dt: f64) -> Interval {
        Interval {
            start: self.start + dt,
            end: self.end + dt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparators_tolerate_eps_noise() {
        let noise = EPS / 2.0;
        assert!(approx_le(1.0 + noise, 1.0));
        assert!(approx_ge(1.0 - noise, 1.0));
        assert!(approx_eq(1.0 + noise, 1.0));
        assert!(!approx_lt(1.0 + noise, 1.0));
        assert!(!approx_gt(1.0 - noise, 1.0));
    }

    #[test]
    fn comparators_distinguish_real_differences() {
        assert!(approx_lt(1.0, 1.1));
        assert!(approx_gt(1.1, 1.0));
        assert!(!approx_eq(1.0, 1.1));
        assert!(approx_le(1.0, 1.1));
        assert!(!approx_le(1.1, 1.0));
    }

    #[test]
    fn interval_basics() {
        let iv = Interval::new(2.0, 5.0);
        assert_eq!(iv.len(), 3.0);
        assert!(!iv.is_empty());
        assert!(iv.contains(2.0));
        assert!(iv.contains(4.9999));
        assert!(!iv.contains(5.0));
        assert!(!iv.contains(1.0));
    }

    #[test]
    fn zero_length_interval() {
        let iv = Interval::new(3.0, 3.0);
        assert!(iv.is_empty());
        assert_eq!(iv.len(), 0.0);
    }

    #[test]
    fn overlap_detection() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 3.0);
        let c = Interval::new(2.0, 4.0);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c)); // touching is not overlapping
        assert!(b.overlaps(&c));
    }

    #[test]
    fn shifted_moves_both_ends() {
        let iv = Interval::new(1.0, 2.0).shifted(3.5);
        assert_eq!(iv.start, 4.5);
        assert_eq!(iv.end, 5.5);
    }
}
