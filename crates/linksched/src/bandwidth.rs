//! BBSA's rate-shareable link schedules (§5 of the paper).
//!
//! BBSA treats a link not as an exclusive slot queue but as a **fluid
//! bandwidth resource**: at any instant several communications may
//! share the link, each using a fraction of its bandwidth. The paper
//! formalises this with per-time-slot remaining-bandwidth rates
//! `rbr(TS)` and per-edge rates `br(e, TS)`; an idle interval is simply
//! a slot with `rbr = 100%`.
//!
//! The two governing rules:
//!
//! * **Grab bandwidth greedily** — an edge starts transferring as early
//!   as possible and uses all bandwidth still available (`§5`: "BBSA
//!   tries to transfer edge communication as early as possible by fully
//!   exploiting the bandwidth of network links").
//! * **Never forward faster than data arrives** — on route link
//!   `L_{m+1}`, formula (4) caps the usable rate:
//!   `br(e, TS_{m+1,k}) = min( rbr(TS_{m+1,k}),
//!   br(e, TS_{m,n}) / (s(L_{m+1})/s(L_m)) )`; Theorem 3 shows this
//!   respects link causality and Theorem 4 derives the resulting piece
//!   lengths.
//!
//! We implement both rules with one **cumulative-flow greedy sweep**:
//! the amount forwarded by time `t` may never exceed the amount arrived
//! by time `t`; subject to that and to the link's remaining bandwidth,
//! the transfer is emitted as early and as fast as possible. On
//! piecewise-constant inputs this reproduces the paper's formulas
//! exactly: while no backlog has accumulated the emitted rate is
//! `min(rbr, br_prev · s_prev / s_this)` — formula (4) — and when
//! upstream contention has built a backlog the transfer drains it at
//! the full remaining bandwidth, which is the "divided into several
//! time slots with diverse remaining bandwidth rates" case the paper
//! describes prose-style.

use crate::time::{approx_le, EPS};
use crate::CommId;

/// One constant-rate piece of a transfer on one link: the edge uses
/// `rate` (fraction of the link's bandwidth) during `[start, end)`,
/// moving `rate * s(L) * (end - start)` volume units.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Piece {
    /// Piece start time.
    pub start: f64,
    /// Piece end time.
    pub end: f64,
    /// Bandwidth fraction in `(0, 1]`.
    pub rate: f64,
}

/// A transfer on one link: time-ordered, non-overlapping pieces.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Flow {
    /// The pieces, in time order.
    pub pieces: Vec<Piece>,
}

impl Flow {
    /// Start of the first piece (`t_s(e, L)`); `None` for an empty flow.
    pub fn start(&self) -> Option<f64> {
        self.pieces.first().map(|p| p.start)
    }

    /// End of the last piece (`t_f(e, L)`); `None` for an empty flow.
    pub fn finish(&self) -> Option<f64> {
        self.pieces.last().map(|p| p.end)
    }

    /// Total volume moved given the link speed.
    pub fn volume(&self, speed: f64) -> f64 {
        self.pieces
            .iter()
            .map(|p| p.rate * speed * (p.end - p.start).max(0.0))
            .sum()
    }

    /// Internal consistency: ordered, non-overlapping, rates in (0,1].
    pub fn check_invariants(&self) -> Result<(), String> {
        for p in &self.pieces {
            if !(p.rate > 0.0 && p.rate <= 1.0 + EPS) {
                return Err(format!("piece rate {} out of (0,1]", p.rate));
            }
            if !approx_le(p.start, p.end) {
                return Err(format!("piece [{}, {}) reversed", p.start, p.end));
            }
        }
        for w in self.pieces.windows(2) {
            if !approx_le(w[0].end, w[1].start) {
                return Err(format!(
                    "pieces overlap: [{}, {}) then [{}, {})",
                    w[0].start, w[0].end, w[1].start, w[1].end
                ));
            }
        }
        Ok(())
    }
}

/// How the data of a transfer becomes available on a link.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalCurve<'a> {
    /// All volume is available at `at` — the route's first link (the
    /// source task finished computing at `at`).
    Instant {
        /// Availability time (source task finish).
        at: f64,
    },
    /// Data arrives via the previous route link as `flow`, whose link
    /// has speed `speed` (volume rate of a piece = `rate * speed`),
    /// optionally delayed by a per-hop switch latency.
    Upstream {
        /// Transfer on the previous link.
        flow: &'a Flow,
        /// Speed of the previous link.
        speed: f64,
        /// Forwarding delay added to every arrival instant (the §2.2
        /// hop-delay extension; 0 in the paper's model).
        delay: f64,
    },
}

/// One bandwidth segment of a link's committed profile.
#[derive(Clone, Debug)]
struct Seg {
    start: f64,
    end: f64,
    /// Total committed bandwidth fraction in `[0, 1]`.
    used: f64,
    /// Per-communication contributions (for validation/inspection).
    allocs: Vec<(CommId, f64)>,
}

/// The committed bandwidth profile of one link: sorted, non-overlapping
/// segments; any time not covered by a segment is fully free.
#[derive(Clone, Debug, Default)]
pub struct RateProfile {
    segs: Vec<Seg>,
    /// Mutation epoch: strictly increases on every committed-state
    /// mutation (the `LinkModel` invalidation hook, DESIGN.md §14).
    /// [`RateProfile::allocate`] is pure and never changes it.
    epoch: u64,
}

impl RateProfile {
    /// New, fully free profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bump the mutation epoch — every committed-state mutator calls
    /// this exactly once before returning (the epoch-discipline
    /// invariant the N2 analysis pass checks for backend impls).
    #[inline]
    fn touch(&mut self) {
        self.epoch += 1;
    }

    /// The mutation epoch: strictly increased by [`RateProfile::commit`]
    /// and [`RateProfile::remove_comm`], untouched by
    /// [`RateProfile::allocate`] (which is pure planning).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Reset the epoch to a previously observed value — only for
    /// `LinkModel::restore`, whose caller proves (by digest equality)
    /// that the content matches what that epoch described.
    #[inline]
    pub(crate) fn restore_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Content digest over a *canonicalized* view of the profile:
    /// consecutive segments that touch exactly and carry an identical
    /// allocation list are folded together before hashing. Commit
    /// splits a pre-existing segment at the new flow's boundaries and
    /// rollback deliberately leaves those splits in place (they are
    /// semantically neutral), so the canonical form — not the raw
    /// segment vector — is what "commit then unschedule restores the
    /// profile bitwise" means for this backend.
    pub fn content_digest(&self) -> u64 {
        let same_allocs = |a: &Seg, b: &Seg| {
            a.allocs.len() == b.allocs.len()
                && a.allocs
                    .iter()
                    .zip(&b.allocs)
                    .all(|((ca, ra), (cb, rb))| ca == cb && ra.to_bits() == rb.to_bits())
        };
        let mut h = 0xcbf2_9ce4_8422_2325;
        let mut i = 0;
        while i < self.segs.len() {
            let mut end = self.segs[i].end;
            let mut j = i + 1;
            while j < self.segs.len()
                && self.segs[j].start.to_bits() == end.to_bits()
                && same_allocs(&self.segs[i], &self.segs[j])
            {
                end = self.segs[j].end;
                j += 1;
            }
            let seg = &self.segs[i];
            h = crate::mix64(h, seg.start.to_bits());
            h = crate::mix64(h, end.to_bits());
            h = crate::mix64(h, seg.used.to_bits());
            for (c, r) in &seg.allocs {
                h = crate::mix64(h, c.0);
                h = crate::mix64(h, r.to_bits());
            }
            i = j;
        }
        h
    }

    /// Remaining bandwidth fraction at time `t`.
    pub fn remaining_at(&self, t: f64) -> f64 {
        match self
            .segs
            .iter()
            .find(|s| t >= s.start - EPS && t < s.end - EPS)
        {
            Some(s) => (1.0 - s.used).max(0.0),
            None => 1.0,
        }
    }

    /// `(remaining bandwidth, valid-until)` at time `t`: the remaining
    /// fraction is constant on `[t, until)`.
    ///
    /// Comparisons are exact: the sweep advances `t` to boundary values
    /// by assignment (never by accumulation), so boundaries are
    /// bit-identical and no EPS slack is needed — EPS slack here would
    /// let allocations overlap committed segments by a sliver.
    fn avail_at(&self, t: f64) -> (f64, f64) {
        for s in &self.segs {
            if t < s.start {
                // In a gap before this segment: fully free until it.
                return (1.0, s.start);
            }
            if t < s.end {
                return ((1.0 - s.used).max(0.0), s.end);
            }
        }
        (1.0, f64::INFINITY)
    }

    /// Plan a transfer of `volume` on this link (speed `speed`) whose
    /// data availability follows `arrival`. Pure — nothing is
    /// committed. Returns the emitted pieces (coalesced).
    ///
    /// A non-positive `volume` yields an empty flow.
    ///
    /// # Panics
    /// Panics if the arrival curve cannot supply `volume` (scheduler
    /// bug: upstream flow must carry the full communication volume).
    pub fn allocate(&self, speed: f64, arrival: ArrivalCurve<'_>, volume: f64) -> Flow {
        assert!(speed > 0.0, "link speed must be positive");
        if volume <= EPS {
            return Flow::default();
        }
        match arrival {
            ArrivalCurve::Instant { at } => self.sweep_instant(speed, at, volume),
            ArrivalCurve::Upstream {
                flow,
                speed: prev_speed,
                delay,
            } => {
                let carried = flow.volume(prev_speed);
                assert!(
                    carried + 1e-3 >= volume,
                    "upstream flow carries {carried}, need {volume}"
                );
                debug_assert!(delay >= 0.0, "negative hop delay");
                if delay > 0.0 {
                    // Shift the arrival curve once; boundaries stay
                    // exact because the shift is a plain addition
                    // applied uniformly.
                    let shifted = Flow {
                        pieces: flow
                            .pieces
                            .iter()
                            .map(|p| Piece {
                                start: p.start + delay,
                                end: p.end + delay,
                                rate: p.rate,
                            })
                            .collect(),
                    };
                    self.sweep_upstream(speed, &shifted, prev_speed, volume)
                } else {
                    self.sweep_upstream(speed, flow, prev_speed, volume)
                }
            }
        }
    }

    /// Sweep for an instantly-available source: always backlogged, so
    /// the emitted rate is simply the remaining bandwidth.
    ///
    /// When a step ends at a profile boundary, `t` is set to that
    /// boundary *by assignment* so subsequent [`RateProfile::avail_at`]
    /// queries land exactly on it (accumulating `t += dt` would leave
    /// float slivers that overlap committed segments).
    fn sweep_instant(&self, speed: f64, at: f64, volume: f64) -> Flow {
        let mut t = at;
        let mut delivered = 0.0;
        let mut out: Vec<Piece> = Vec::new();
        let max_iters = 4 * self.segs.len() + 64;
        for _ in 0..max_iters {
            if delivered + EPS >= volume {
                break;
            }
            let (avail, until) = self.avail_at(t);
            if avail <= EPS {
                debug_assert!(until.is_finite(), "fully-used segment must end");
                t = until;
                continue;
            }
            let vol_rate = avail * speed;
            let dt_done = (volume - delivered) / vol_rate;
            if dt_done <= until - t {
                push_piece(&mut out, t, t + dt_done, avail);
                delivered = volume;
                break;
            }
            push_piece(&mut out, t, until, avail);
            delivered += vol_rate * (until - t);
            t = until;
        }
        debug_assert!(
            delivered + 1e-3 >= volume,
            "instant sweep did not finish: {delivered} of {volume}"
        );
        Flow { pieces: out }
    }

    /// Sweep for an upstream arrival: cumulative-flow greedy (see
    /// module docs).
    fn sweep_upstream(&self, speed: f64, arrival: &Flow, prev_speed: f64, volume: f64) -> Flow {
        let pieces = &arrival.pieces;
        debug_assert!(
            !pieces.is_empty(),
            "upstream flow with volume must have pieces"
        );
        let mut t = pieces[0].start;
        let mut ai = 0usize; // arrival cursor
        let mut arrived = 0.0; // volume arrived by time t
        let mut delivered = 0.0;
        let mut out: Vec<Piece> = Vec::new();
        let max_iters = 8 * (self.segs.len() + pieces.len()) + 128;
        let mut iters = 0usize;
        while delivered + EPS < volume {
            iters += 1;
            assert!(iters <= max_iters, "bandwidth sweep failed to converge");

            // Arrival rate at t and the next arrival breakpoint.
            // Boundary comparisons are exact — see `avail_at`.
            while ai < pieces.len() && t >= pieces[ai].end {
                ai += 1;
            }
            let (in_rate, in_until) = if ai >= pieces.len() {
                (0.0, f64::INFINITY)
            } else if t < pieces[ai].start {
                (0.0, pieces[ai].start)
            } else {
                (pieces[ai].rate * prev_speed, pieces[ai].end)
            };

            let (avail, seg_until) = self.avail_at(t);
            let backlog = (arrived - delivered).max(0.0);

            // Emitted bandwidth fraction: drain backlog at full
            // remaining bandwidth; otherwise flow through at the
            // arrival rate (formula (4)).
            let out_frac = if backlog > EPS {
                avail
            } else {
                avail.min(in_rate / speed)
            };
            let out_rate = out_frac * speed;

            // Next event: profile breakpoint, arrival breakpoint,
            // backlog exhaustion, or completion. Boundary events carry
            // their exact time so `t` lands on them bit-identically.
            let mut dt = seg_until - t;
            let mut event_time = Some(seg_until);
            if in_until - t < dt {
                dt = in_until - t;
                event_time = Some(in_until);
            }
            if backlog > EPS && out_rate > in_rate + EPS {
                let d = backlog / (out_rate - in_rate);
                if d < dt {
                    dt = d;
                    event_time = None;
                }
            }
            if out_rate > EPS {
                let d = (volume - delivered) / out_rate;
                if d <= dt {
                    // Completion: emit the final piece and stop.
                    if out_frac > EPS {
                        push_piece(&mut out, t, t + d, out_frac);
                    }
                    return Flow { pieces: out };
                }
            }
            assert!(
                dt.is_finite() && dt > 0.0,
                "bandwidth sweep stalled at t={t} (avail={avail}, in_rate={in_rate}, backlog={backlog})"
            );

            // The piece must end exactly at the event time, not at the
            // float-accumulated `t + dt`, so adjacent pieces and
            // segment boundaries stay bit-aligned.
            let t_next = event_time.unwrap_or(t + dt);
            if out_frac > EPS {
                push_piece(&mut out, t, t_next, out_frac);
            }
            arrived += in_rate * dt;
            delivered += out_rate * dt;
            t = t_next;
        }
        Flow { pieces: out }
    }

    /// Commit a planned flow for `comm`: reserve its rate in every
    /// covered interval.
    ///
    /// # Panics
    /// Panics if any reservation would push a segment's used bandwidth
    /// above 100% — the planner only emits rates within the remaining
    /// bandwidth, so this is a scheduler bug.
    pub fn commit(&mut self, comm: CommId, flow: &Flow) {
        for p in &flow.pieces {
            if p.rate <= EPS || p.end - p.start <= EPS {
                continue;
            }
            self.reserve(comm, p.start, p.end, p.rate);
        }
        self.touch();
        debug_assert!(self.check_invariants().is_ok());
    }

    /// Reserve `rate` over `[start, end)`, splitting segments as needed.
    fn reserve(&mut self, comm: CommId, start: f64, end: f64, rate: f64) {
        let mut t = start;
        let mut i = 0usize;
        while t < end - EPS {
            if i >= self.segs.len() {
                // Past all segments: fresh segment to the end.
                self.segs.push(Seg {
                    start: t,
                    end,
                    used: rate,
                    allocs: vec![(comm, rate)],
                });
                break;
            }
            let (s_start, s_end) = (self.segs[i].start, self.segs[i].end);
            if end <= s_start + EPS {
                // Entirely inside the gap before segment i.
                self.segs.insert(
                    i,
                    Seg {
                        start: t,
                        end,
                        used: rate,
                        allocs: vec![(comm, rate)],
                    },
                );
                break;
            }
            if t < s_start - EPS {
                // Partially in the gap: fill the gap, continue at seg.
                self.segs.insert(
                    i,
                    Seg {
                        start: t,
                        end: s_start,
                        used: rate,
                        allocs: vec![(comm, rate)],
                    },
                );
                t = s_start;
                i += 1;
                continue;
            }
            if t >= s_end - EPS {
                i += 1;
                continue;
            }
            // t is inside segment i. Split off the part before t.
            if t > s_start + EPS {
                let mut head = self.segs[i].clone();
                head.end = t;
                self.segs[i].start = t;
                self.segs.insert(i, head);
                i += 1;
            }
            // Now segs[i].start == t (within EPS). Split off the tail
            // beyond `end` if any.
            if end < self.segs[i].end - EPS {
                let mut tail = self.segs[i].clone();
                tail.start = end;
                self.segs[i].end = end;
                self.segs.insert(i + 1, tail);
            }
            // Add the reservation.
            let seg = &mut self.segs[i];
            seg.used += rate;
            assert!(
                seg.used <= 1.0 + 1e-4,
                "overcommitted link bandwidth: {} on [{}, {})",
                seg.used,
                seg.start,
                seg.end
            );
            seg.allocs.push((comm, rate));
            t = seg.end;
            i += 1;
        }
    }

    /// Remove every reservation belonging to `comm` (exact rollback of
    /// the matching [`RateProfile::commit`] calls). Segment splits
    /// introduced by the commit remain — they are semantically neutral
    /// (adjacent segments with equal usage behave like one) — and empty
    /// segments are dropped.
    pub fn remove_comm(&mut self, comm: CommId) {
        for seg in &mut self.segs {
            let removed: f64 = seg
                .allocs
                .iter()
                .filter(|(c, _)| *c == comm)
                .map(|(_, r)| r)
                .sum();
            if removed > 0.0 {
                seg.allocs.retain(|(c, _)| *c != comm);
                // Recompute from the surviving allocations rather than
                // subtracting, so float error cannot accumulate across
                // repeated probe/rollback cycles.
                seg.used = seg.allocs.iter().map(|(_, r)| r).sum();
            }
        }
        self.segs.retain(|s| !s.allocs.is_empty());
        self.touch();
        debug_assert!(self.check_invariants().is_ok());
    }

    /// Sum of committed volume for `comm` given the link speed.
    pub fn committed_volume(&self, comm: CommId, speed: f64) -> f64 {
        self.segs
            .iter()
            .map(|s| {
                let r: f64 = s
                    .allocs
                    .iter()
                    .filter(|(c, _)| *c == comm)
                    .map(|(_, r)| r)
                    .sum();
                r * speed * (s.end - s.start)
            })
            .sum()
    }

    /// Maximum committed bandwidth over the whole profile.
    pub fn peak_usage(&self) -> f64 {
        self.segs.iter().map(|s| s.used).fold(0.0, f64::max)
    }

    /// End of the last committed segment (0 when fully free) — the
    /// profile's current horizon.
    pub fn horizon(&self) -> f64 {
        self.segs.last().map_or(0.0, |s| s.end)
    }

    /// Committed bandwidth-time: `Σ used × length` over all segments.
    /// The fluid analogue of [`crate::slot::SlotQueue::busy_time`]
    /// (where every slot occupies the full link, rate 1).
    pub fn busy_time(&self) -> f64 {
        self.segs
            .iter()
            .map(|s| s.used * (s.end - s.start).max(0.0))
            .sum()
    }

    /// Number of per-segment allocation entries held by `comm` — the
    /// count `remove_comm` would drop.
    pub fn alloc_count(&self, comm: CommId) -> usize {
        self.segs
            .iter()
            .map(|s| s.allocs.iter().filter(|(c, _)| *c == comm).count())
            .sum()
    }

    /// Profile invariants: ordered, non-overlapping, usage within
    /// [0, 1], per-segment usage equals the sum of its allocations.
    pub fn check_invariants(&self) -> Result<(), String> {
        for s in &self.segs {
            if !approx_le(s.start, s.end) {
                return Err(format!("segment [{}, {}) reversed", s.start, s.end));
            }
            if s.used < -EPS || s.used > 1.0 + 1e-4 {
                return Err(format!("segment usage {} out of [0,1]", s.used));
            }
            let sum: f64 = s.allocs.iter().map(|(_, r)| r).sum();
            if (sum - s.used).abs() > 1e-4 {
                return Err(format!(
                    "segment usage {} disagrees with allocations {}",
                    s.used, sum
                ));
            }
        }
        for w in self.segs.windows(2) {
            if !approx_le(w[0].end, w[1].start) {
                return Err(format!(
                    "segments overlap: [{}, {}) then [{}, {})",
                    w[0].start, w[0].end, w[1].start, w[1].end
                ));
            }
        }
        Ok(())
    }
}

/// Append a piece, coalescing with the previous one when contiguous and
/// equal-rate.
fn push_piece(out: &mut Vec<Piece>, start: f64, end: f64, rate: f64) {
    if end - start <= EPS {
        return;
    }
    if let Some(last) = out.last_mut() {
        if (last.end - start).abs() <= EPS && (last.rate - rate).abs() <= EPS {
            last.end = end;
            return;
        }
    }
    out.push(Piece { start, end, rate });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: u64) -> CommId {
        CommId(n)
    }

    #[test]
    fn free_link_instant_transfer() {
        let p = RateProfile::new();
        // volume 10 on speed-2 link: 5 time units at full rate.
        let f = p.allocate(2.0, ArrivalCurve::Instant { at: 3.0 }, 10.0);
        assert_eq!(f.pieces.len(), 1);
        assert_eq!(f.start(), Some(3.0));
        assert_eq!(f.finish(), Some(8.0));
        assert_eq!(f.pieces[0].rate, 1.0);
        assert!((f.volume(2.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_volume_gives_empty_flow() {
        let p = RateProfile::new();
        let f = p.allocate(1.0, ArrivalCurve::Instant { at: 0.0 }, 0.0);
        assert!(f.pieces.is_empty());
        assert_eq!(f.start(), None);
    }

    #[test]
    fn shares_bandwidth_with_existing_commitment() {
        let mut p = RateProfile::new();
        // comm 1 takes 60% of the link over [0, 10).
        p.commit(
            c(1),
            &Flow {
                pieces: vec![Piece {
                    start: 0.0,
                    end: 10.0,
                    rate: 0.6,
                }],
            },
        );
        // comm 2 (volume 8, speed 1) gets 40% for 10 units (moves 4),
        // then full rate for 4 more.
        let f = p.allocate(1.0, ArrivalCurve::Instant { at: 0.0 }, 8.0);
        assert_eq!(f.pieces.len(), 2);
        assert!((f.pieces[0].rate - 0.4).abs() < 1e-9);
        assert_eq!(f.pieces[0].start, 0.0);
        assert_eq!(f.pieces[0].end, 10.0);
        assert!((f.pieces[1].rate - 1.0).abs() < 1e-9);
        assert!((f.finish().unwrap() - 14.0).abs() < 1e-9);
        assert!((f.volume(1.0) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn skips_fully_used_intervals() {
        let mut p = RateProfile::new();
        p.commit(
            c(1),
            &Flow {
                pieces: vec![Piece {
                    start: 2.0,
                    end: 5.0,
                    rate: 1.0,
                }],
            },
        );
        let f = p.allocate(1.0, ArrivalCurve::Instant { at: 0.0 }, 4.0);
        // [0,2) moves 2 units, [2,5) blocked, [5,7) moves the rest.
        assert_eq!(f.pieces.len(), 2);
        assert_eq!(f.pieces[0].start, 0.0);
        assert_eq!(f.pieces[0].end, 2.0);
        assert_eq!(f.pieces[1].start, 5.0);
        assert!((f.finish().unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn upstream_flow_through_matches_formula_4() {
        // Slow link (speed 1) feeding a fast link (speed 4): forwarding
        // rate is capped at br_prev * s_prev / s_this = 1 * 1/4 = 0.25.
        let prev = Flow {
            pieces: vec![Piece {
                start: 0.0,
                end: 8.0,
                rate: 1.0,
            }],
        };
        let p = RateProfile::new();
        let f = p.allocate(
            4.0,
            ArrivalCurve::Upstream {
                flow: &prev,
                speed: 1.0,
                delay: 0.0,
            },
            8.0,
        );
        assert_eq!(f.pieces.len(), 1);
        assert!((f.pieces[0].rate - 0.25).abs() < 1e-9, "formula (4) cap");
        assert_eq!(f.pieces[0].start, 0.0);
        assert!(
            (f.finish().unwrap() - 8.0).abs() < 1e-9,
            "cut-through: same finish"
        );
    }

    #[test]
    fn upstream_fast_to_slow_builds_backlog() {
        // Fast link (speed 4) into slow link (speed 1): the slow link
        // saturates and finishes later (it simply needs 8 time units).
        let prev = Flow {
            pieces: vec![Piece {
                start: 0.0,
                end: 2.0,
                rate: 1.0,
            }],
        }; // 8 volume in 2 time units
        let p = RateProfile::new();
        let f = p.allocate(
            1.0,
            ArrivalCurve::Upstream {
                flow: &prev,
                speed: 4.0,
                delay: 0.0,
            },
            8.0,
        );
        assert_eq!(f.pieces.len(), 1);
        assert!((f.pieces[0].rate - 1.0).abs() < 1e-9);
        assert_eq!(f.pieces[0].start, 0.0);
        assert!((f.finish().unwrap() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn upstream_causality_start_and_finish_order() {
        // Arrival has a gap; forwarding must never outpace arrival.
        let prev = Flow {
            pieces: vec![
                Piece {
                    start: 1.0,
                    end: 2.0,
                    rate: 1.0,
                },
                Piece {
                    start: 5.0,
                    end: 6.0,
                    rate: 1.0,
                },
            ],
        }; // 2 volume at speed 1
        let p = RateProfile::new();
        let f = p.allocate(
            1.0,
            ArrivalCurve::Upstream {
                flow: &prev,
                speed: 1.0,
                delay: 0.0,
            },
            2.0,
        );
        // Same-speed flow-through reproduces the arrival exactly.
        assert_eq!(f.pieces.len(), 2);
        assert_eq!(f.pieces[0].start, 1.0);
        assert_eq!(f.pieces[0].end, 2.0);
        assert_eq!(f.pieces[1].start, 5.0);
        assert_eq!(f.pieces[1].end, 6.0);
        // Causality in cumulative terms at every breakpoint.
        assert!(f.start().unwrap() + EPS >= prev.start().unwrap());
        assert!(f.finish().unwrap() + EPS >= prev.finish().unwrap());
    }

    #[test]
    fn backlog_drains_at_full_bandwidth() {
        // Contended downstream: 50% is taken over [0, 4). Arrival
        // delivers 4 volume over [0,4) at speed 1; we can only forward
        // at 0.5 during that window (2 volume), building backlog, then
        // drain at full rate.
        let mut p = RateProfile::new();
        p.commit(
            c(1),
            &Flow {
                pieces: vec![Piece {
                    start: 0.0,
                    end: 4.0,
                    rate: 0.5,
                }],
            },
        );
        let prev = Flow {
            pieces: vec![Piece {
                start: 0.0,
                end: 4.0,
                rate: 1.0,
            }],
        };
        let f = p.allocate(
            1.0,
            ArrivalCurve::Upstream {
                flow: &prev,
                speed: 1.0,
                delay: 0.0,
            },
            4.0,
        );
        // [0,4) at 0.5 (2 vol) then [4,6) at 1.0 (2 vol).
        assert_eq!(f.pieces.len(), 2);
        assert!((f.pieces[0].rate - 0.5).abs() < 1e-9);
        assert!((f.pieces[1].rate - 1.0).abs() < 1e-9);
        assert!((f.finish().unwrap() - 6.0).abs() < 1e-9);
        assert!((f.volume(1.0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn commit_splits_segments_correctly() {
        let mut p = RateProfile::new();
        p.commit(
            c(1),
            &Flow {
                pieces: vec![Piece {
                    start: 2.0,
                    end: 6.0,
                    rate: 0.5,
                }],
            },
        );
        p.commit(
            c(2),
            &Flow {
                pieces: vec![Piece {
                    start: 4.0,
                    end: 8.0,
                    rate: 0.25,
                }],
            },
        );
        p.check_invariants().unwrap();
        assert!((p.remaining_at(3.0) - 0.5).abs() < 1e-9);
        assert!((p.remaining_at(5.0) - 0.25).abs() < 1e-9);
        assert!((p.remaining_at(7.0) - 0.75).abs() < 1e-9);
        assert_eq!(p.remaining_at(9.0), 1.0);
        assert!((p.committed_volume(c(1), 2.0) - 0.5 * 2.0 * 4.0).abs() < 1e-9);
        assert!((p.committed_volume(c(2), 2.0) - 0.25 * 2.0 * 4.0).abs() < 1e-9);
    }

    #[test]
    fn allocate_then_commit_round_trip_conserves_volume() {
        let mut p = RateProfile::new();
        let mut x: u64 = 7;
        for i in 0..40 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let at = ((x >> 33) % 100) as f64 / 4.0;
            let vol = 1.0 + ((x >> 13) % 80) as f64 / 8.0;
            let f = p.allocate(2.0, ArrivalCurve::Instant { at }, vol);
            assert!((f.volume(2.0) - vol).abs() < 1e-6, "iteration {i}");
            f.check_invariants().unwrap();
            p.commit(c(i), &f);
            p.check_invariants().unwrap();
            assert!((p.committed_volume(c(i), 2.0) - vol).abs() < 1e-6);
        }
        assert!(p.peak_usage() <= 1.0 + 1e-4);
    }

    #[test]
    #[should_panic(expected = "overcommitted")]
    fn commit_rejects_overcommitment() {
        let mut p = RateProfile::new();
        let f = Flow {
            pieces: vec![Piece {
                start: 0.0,
                end: 1.0,
                rate: 0.7,
            }],
        };
        p.commit(c(1), &f);
        p.commit(c(2), &f); // 1.4 > 1.0
    }

    #[test]
    fn remove_comm_rolls_back_exactly() {
        let mut p = RateProfile::new();
        let base = p.allocate(1.0, ArrivalCurve::Instant { at: 0.0 }, 5.0);
        p.commit(c(1), &base);
        // Probe-commit-rollback cycle for a second transfer.
        let probe_before = p.allocate(1.0, ArrivalCurve::Instant { at: 2.0 }, 4.0);
        let f2 = p.allocate(1.0, ArrivalCurve::Instant { at: 2.0 }, 4.0);
        p.commit(c(2), &f2);
        p.remove_comm(c(2));
        let probe_after = p.allocate(1.0, ArrivalCurve::Instant { at: 2.0 }, 4.0);
        assert_eq!(probe_before, probe_after, "rollback restores the profile");
        assert!((p.committed_volume(c(2), 1.0)).abs() < 1e-12);
        assert!((p.committed_volume(c(1), 1.0) - 5.0).abs() < 1e-9);
        p.check_invariants().unwrap();
    }

    #[test]
    fn remove_comm_survives_many_cycles() {
        let mut p = RateProfile::new();
        p.commit(
            c(1),
            &p.allocate(2.0, ArrivalCurve::Instant { at: 0.0 }, 6.0),
        );
        let reference = p.allocate(2.0, ArrivalCurve::Instant { at: 0.0 }, 10.0);
        for i in 0..50 {
            let f = p.allocate(2.0, ArrivalCurve::Instant { at: 0.0 }, 10.0);
            assert_eq!(f, reference, "cycle {i}");
            p.commit(c(100 + i), &f);
            p.remove_comm(c(100 + i));
        }
        p.check_invariants().unwrap();
    }

    #[test]
    fn two_hop_chain_preserves_volume_and_causality() {
        let p1 = RateProfile::new();
        let mut p2 = RateProfile::new();
        // Pre-existing load on the second link.
        p2.commit(
            c(50),
            &Flow {
                pieces: vec![Piece {
                    start: 0.0,
                    end: 3.0,
                    rate: 0.8,
                }],
            },
        );
        let f1 = p1.allocate(3.0, ArrivalCurve::Instant { at: 1.0 }, 9.0);
        let f2 = p2.allocate(
            2.0,
            ArrivalCurve::Upstream {
                flow: &f1,
                speed: 3.0,
                delay: 0.0,
            },
            9.0,
        );
        assert!((f1.volume(3.0) - 9.0).abs() < 1e-9);
        assert!((f2.volume(2.0) - 9.0).abs() < 1e-9);
        assert!(f2.start().unwrap() + EPS >= f1.start().unwrap());
        assert!(f2.finish().unwrap() + EPS >= f1.finish().unwrap());
        f2.check_invariants().unwrap();
    }
}
