//! Copy-on-write overlays over [`SlotQueue`] link state.
//!
//! BA-style processor probing tentatively schedules every in-edge of a
//! ready task on *each* candidate processor. Done against the real
//! [`SlotQueue`]s this forces mutate-and-rollback serialization; but in
//! the Sinnen–Sousa contention model the candidates' probes are
//! independent reads of the same base link state, so each candidate can
//! instead work against an **overlay**: the immutable base slot slice
//! shared by all candidates plus a small private delta holding only the
//! slots this candidate tentatively committed. Overlays never touch the
//! base, so any number of candidates probe concurrently and a losing
//! candidate's work is discarded by clearing its delta — no rollback
//! walk, no epoch churn, no gap-index invalidation.
//!
//! Equivalence with the real queue is **by construction**: the overlay
//! answers probes by running [`SlotQueue::probe_reference`]'s exact
//! first-fit fold over the merge of base and delta, and the merge
//! yields slots in precisely the order [`SlotQueue::commit`] would have
//! produced had the delta been committed onto the base (commit inserts
//! at `partition_point(start < new_start - EPS)`, i.e. a later commit
//! sorts *before* existing slots whose start is within EPS — the merge
//! therefore prefers the delta side unless the base slot is strictly
//! earlier). The indexed probe path is bitwise-identical to the
//! reference fold (DESIGN.md §10), so overlay probes are bitwise-equal
//! to probes of the mutated real queue in either tuning.

use crate::slot::{Slot, SlotQueue};
use crate::time::{approx_ge, approx_le, EPS};
use crate::CommId;

/// A read-only view of one link's schedule as seen by one probing
/// candidate: the shared base slots plus the candidate's private delta.
///
/// The delta vector itself lives in the caller's per-worker workspace
/// (clear-don't-drop across candidates); this type borrows both parts,
/// so constructing it is free and many overlays of the same base can
/// exist at once across threads.
#[derive(Clone, Copy, Debug)]
pub struct SlotQueueOverlay<'a> {
    base: &'a [Slot],
    delta: &'a [Slot],
}

impl<'a> SlotQueueOverlay<'a> {
    /// View `base` (the real queue's slots) through `delta` (this
    /// candidate's tentative commits, maintained by
    /// [`SlotQueueOverlay::commit_into`]).
    pub fn new(base: &'a [Slot], delta: &'a [Slot]) -> Self {
        Self { base, delta }
    }

    /// Total number of slots in the merged view.
    pub fn len(&self) -> usize {
        self.base.len() + self.delta.len()
    }

    /// True when both base and delta are empty.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty() && self.delta.is_empty()
    }

    /// The merged slots in the order the real queue would hold them
    /// after committing the delta onto the base.
    pub fn iter_merged(&self) -> Merged<'a> {
        Merged {
            base: self.base,
            delta: self.delta,
        }
    }

    /// Earliest start `>= bound` of an idle interval of length
    /// `duration` — [`SlotQueue::probe_reference`]'s first-fit fold
    /// over the merged view, bitwise-equal to probing the mutated real
    /// queue.
    pub fn probe(&self, bound: f64, duration: f64) -> f64 {
        debug_assert!(duration >= 0.0);
        let mut candidate = bound;
        for s in self.iter_merged() {
            if approx_le(candidate + duration, s.start) {
                return candidate;
            }
            if s.end > candidate {
                candidate = s.end;
            }
        }
        candidate
    }

    /// Tentatively insert a slot `[start, start + duration)` into
    /// `delta`, exactly where [`SlotQueue::commit`] would sort it.
    ///
    /// An associated function rather than a method because probing
    /// borrows many overlays immutably at once (one per route hop)
    /// while commits need `&mut` on a single delta.
    ///
    /// # Panics
    /// Panics if the new slot overlaps a merged neighbour by more than
    /// EPS — same contract as [`SlotQueue::commit`]: only commit starts
    /// obtained from [`SlotQueueOverlay::probe`].
    pub fn commit_into(
        base: &[Slot],
        delta: &mut Vec<Slot>,
        comm: CommId,
        seq: u32,
        start: f64,
        duration: f64,
    ) {
        let end = start + duration;
        let di = delta.partition_point(|s| s.start < start - EPS);
        let bi = base.partition_point(|s| s.start < start - EPS);
        // The merged predecessor/successor of the new slot are among
        // these four (both lists are sorted and non-overlapping).
        for prev in [
            di.checked_sub(1).map(|i| &delta[i]),
            bi.checked_sub(1).map(|i| &base[i]),
        ]
        .into_iter()
        .flatten()
        {
            assert!(
                approx_le(prev.end, start),
                "overlay slot overlap: {comm} [{start}, {end}) vs {} [{}, {})",
                prev.comm,
                prev.start,
                prev.end
            );
        }
        for next in [delta.get(di), base.get(bi)].into_iter().flatten() {
            assert!(
                approx_le(end, next.start),
                "overlay slot overlap: {comm} [{start}, {end}) vs {} [{}, {})",
                next.comm,
                next.start,
                next.end
            );
        }
        delta.insert(
            di,
            Slot {
                comm,
                seq,
                start,
                end,
            },
        );
    }

    /// Replay the merged view into a fresh [`SlotQueue`] (test/debug
    /// helper; the scheduler replays a winning delta through the real
    /// queue's own mutation path instead).
    pub fn to_queue(&self, indexed: bool) -> SlotQueue {
        let mut q = SlotQueue::indexed(indexed);
        for s in self.iter_merged() {
            q.commit(s.comm, s.seq, s.start, s.end - s.start);
        }
        q
    }

    /// Merged-view invariants: sorted within EPS and non-overlapping —
    /// the same checks [`SlotQueue::check_invariants`] applies.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut prev: Option<&Slot> = None;
        for s in self.iter_merged() {
            if !approx_ge(s.end, s.start) {
                return Err(format!(
                    "overlay slot {} has negative length [{}, {})",
                    s.comm, s.start, s.end
                ));
            }
            if let Some(p) = prev {
                if !approx_le(p.end, s.start) {
                    return Err(format!(
                        "overlay slots overlap or are unsorted: {} [{}, {}) then {} [{}, {})",
                        p.comm, p.start, p.end, s.comm, s.start, s.end
                    ));
                }
            }
            prev = Some(s);
        }
        Ok(())
    }
}

/// Iterator over an overlay's merged slots in real-queue order: the
/// base slot goes first only when strictly earlier than the delta head
/// (`b.start < d.start - EPS`); otherwise the delta slot does, because
/// a later [`SlotQueue::commit`] sorts before existing slots whose
/// start is within EPS of its own.
#[derive(Clone, Debug)]
pub struct Merged<'a> {
    base: &'a [Slot],
    delta: &'a [Slot],
}

impl<'a> Iterator for Merged<'a> {
    type Item = &'a Slot;

    fn next(&mut self) -> Option<&'a Slot> {
        match (self.base.first(), self.delta.first()) {
            (Some(b), Some(d)) => {
                if b.start < d.start - EPS {
                    self.base = &self.base[1..];
                    Some(b)
                } else {
                    self.delta = &self.delta[1..];
                    Some(d)
                }
            }
            (Some(b), None) => {
                self.base = &self.base[1..];
                Some(b)
            }
            (None, Some(d)) => {
                self.delta = &self.delta[1..];
                Some(d)
            }
            (None, None) => None,
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.base.len() + self.delta.len();
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: u64) -> CommId {
        CommId(n)
    }

    /// Drive the same probe→commit script through a real queue and an
    /// overlay over a frozen base; every probe answer and the final
    /// slot sequences must agree bitwise.
    fn assert_script_equivalent(base_commits: &[(u64, f64, f64)], script: &[(f64, f64)]) {
        let mut real = SlotQueue::new();
        for &(id, start, dur) in base_commits {
            real.commit(c(id), 0, start, dur);
        }
        let base: Vec<Slot> = real.slots().to_vec();
        let mut delta: Vec<Slot> = Vec::new();

        for (i, &(bound, dur)) in script.iter().enumerate() {
            let ov = SlotQueueOverlay::new(&base, &delta);
            let a = ov.probe(bound, dur);
            let b = real.probe(bound, dur);
            assert_eq!(a.to_bits(), b.to_bits(), "probe {i}: {a} vs {b}");
            let id = c(1000 + i as u64);
            SlotQueueOverlay::commit_into(&base, &mut delta, id, i as u32, a, dur);
            real.commit(id, i as u32, b, dur);
            SlotQueueOverlay::new(&base, &delta)
                .check_invariants()
                .unwrap();
            real.check_invariants().unwrap();
        }

        let merged: Vec<Slot> = SlotQueueOverlay::new(&base, &delta)
            .iter_merged()
            .copied()
            .collect();
        assert_eq!(merged.len(), real.len());
        for (m, r) in merged.iter().zip(real.slots()) {
            assert_eq!(m.comm, r.comm);
            assert_eq!(m.seq, r.seq);
            assert_eq!(m.start.to_bits(), r.start.to_bits());
            assert_eq!(m.end.to_bits(), r.end.to_bits());
        }
    }

    #[test]
    fn empty_base_and_delta() {
        let ov = SlotQueueOverlay::new(&[], &[]);
        assert!(ov.is_empty());
        assert_eq!(ov.probe(3.0, 2.0), 3.0);
        assert_eq!(ov.iter_merged().count(), 0);
    }

    #[test]
    fn probe_sees_base_and_delta_together() {
        assert_script_equivalent(
            &[(1, 0.0, 2.0), (2, 5.0, 2.0)],
            &[(0.0, 3.0), (0.0, 3.0), (0.0, 1.0), (2.5, 0.4)],
        );
    }

    #[test]
    fn delta_fills_base_gap_and_blocks_it() {
        let mut real = SlotQueue::new();
        real.commit(c(1), 0, 0.0, 2.0);
        real.commit(c(2), 0, 5.0, 2.0);
        let base: Vec<Slot> = real.slots().to_vec();
        let mut delta = Vec::new();
        // Fill the [2,5) gap through the overlay.
        let ov = SlotQueueOverlay::new(&base, &delta);
        assert_eq!(ov.probe(0.0, 3.0), 2.0);
        SlotQueueOverlay::commit_into(&base, &mut delta, c(9), 0, 2.0, 3.0);
        // A second probe must now skip past the delta slot to the tail.
        let ov = SlotQueueOverlay::new(&base, &delta);
        assert_eq!(ov.probe(0.0, 1.0), 7.0);
        // The base itself is untouched.
        assert_eq!(base.len(), 2);
        assert_eq!(real.probe(0.0, 3.0), 2.0, "real queue still sees its gap");
    }

    #[test]
    fn interleaved_probe_commit_matches_real_queue() {
        assert_script_equivalent(
            &[(1, 1.0, 1.5), (2, 4.0, 0.5), (3, 8.0, 2.0), (4, 13.0, 1.0)],
            &[
                (0.0, 1.0),
                (0.0, 1.0),
                (2.0, 1.2),
                (0.0, 0.3),
                (6.0, 1.9),
                (0.0, 5.0),
                (3.0, 0.1),
            ],
        );
    }

    #[test]
    fn pseudo_random_scripts_match_real_queue() {
        let mut x: u64 = 0x0E17_AB1E;
        let mut step = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x
        };
        for trial in 0..40 {
            let mut base_commits = Vec::new();
            let mut probe_q = SlotQueue::new();
            for i in 0..(step() % 12) {
                let r = step();
                let bound = (r >> 33) as f64 % 40.0;
                let dur = 0.1 + ((r >> 11) % 50) as f64 / 10.0;
                let start = probe_q.probe(bound, dur);
                probe_q.commit(c(i), 0, start, dur);
                base_commits.push((i, start, dur));
            }
            let mut script = Vec::new();
            for _ in 0..=(step() % 10) {
                let r = step();
                script.push((
                    (r >> 33) as f64 % 50.0,
                    0.1 + ((r >> 11) % 40) as f64 / 10.0,
                ));
            }
            // Base commits are (id, start, dur) with probe-derived
            // starts, so re-committing them in order reproduces the
            // queue inside the helper.
            let commits: Vec<(u64, f64, f64)> = base_commits
                .iter()
                .map(|&(id, start, dur)| (id, start, dur))
                .collect();
            assert_script_equivalent(&commits, &script);
            let _ = trial;
        }
    }

    #[test]
    fn to_queue_round_trips_and_validates() {
        let mut real = SlotQueue::new();
        real.commit(c(1), 0, 0.0, 1.0);
        real.commit(c(2), 0, 3.0, 1.0);
        let base: Vec<Slot> = real.slots().to_vec();
        let mut delta = Vec::new();
        SlotQueueOverlay::commit_into(&base, &mut delta, c(3), 0, 1.0, 1.5);
        let ov = SlotQueueOverlay::new(&base, &delta);
        assert_eq!(ov.len(), 3);
        for indexed in [false, true] {
            let q = ov.to_queue(indexed);
            assert_eq!(q.len(), 3);
            q.check_invariants().unwrap();
            assert_eq!(
                q.probe(0.0, 2.0).to_bits(),
                ov.probe(0.0, 2.0).to_bits(),
                "replayed queue probes like the overlay"
            );
        }
    }

    #[test]
    #[should_panic(expected = "overlay slot overlap")]
    fn commit_into_panics_on_base_overlap() {
        let mut real = SlotQueue::new();
        real.commit(c(1), 0, 0.0, 3.0);
        let base: Vec<Slot> = real.slots().to_vec();
        let mut delta = Vec::new();
        SlotQueueOverlay::commit_into(&base, &mut delta, c(2), 0, 2.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "overlay slot overlap")]
    fn commit_into_panics_on_delta_overlap() {
        let base: Vec<Slot> = Vec::new();
        let mut delta = Vec::new();
        SlotQueueOverlay::commit_into(&base, &mut delta, c(1), 0, 0.0, 3.0);
        SlotQueueOverlay::commit_into(&base, &mut delta, c(2), 0, 2.0, 2.0);
    }
}
