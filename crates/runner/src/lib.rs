//! # es-runner — shared parallel execution primitives
//!
//! Both the experiment harness (`es-sim`) and the scheduler core
//! (`es-core`, for parallel speculative processor probing) need the
//! same thing: fan independent work items out over a few threads with
//! **no external runtime**, deterministic output order, and panics
//! reported per item. This crate holds that machinery once:
//!
//! * [`parallel_map`] / [`try_parallel_map`] — scoped threads draining
//!   a shared atomic work counter (one scope per call; right for
//!   long-running sweeps where spawn cost is noise);
//! * [`WorkerPool`] — a persistent pool for **short, frequent** bursts
//!   (one probe cycle per ready task) where re-spawning threads per
//!   call would dominate; workers park on a condvar between bursts;
//! * [`Threads`] — the one place thread counts are resolved, honoring
//!   the `ES_THREADS` environment override so CI and bench runs are
//!   reproducible on any machine.

#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A captured panic from one work item of [`try_parallel_map`] or a
/// [`WorkerPool`] burst.
#[derive(Clone, Debug)]
pub struct ItemPanic {
    /// Index of the item whose closure panicked.
    pub index: usize,
    /// The panic payload, when it was a string (the overwhelmingly
    /// common case — `panic!`/`assert!` messages); a placeholder
    /// otherwise.
    pub message: String,
}

impl std::fmt::Display for ItemPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "item {} panicked: {}", self.index, self.message)
    }
}

/// Apply `f` to every item on up to `threads` worker threads,
/// preserving input order in the output.
///
/// `f` must be `Sync` (it is shared by reference across workers) and
/// items are handed out through a shared counter, so faster workers
/// take more cells.
///
/// `threads == 0` or `1` degrades to a sequential map (useful under
/// `cargo test` and for debugging).
///
/// # Panics
/// If `f` panics on any item, re-panics **after the whole sweep has
/// drained** with the item's index and the original message — one bad
/// cell no longer kills the run with an anonymous scope-join panic,
/// and the index identifies the offending parameters. Use
/// [`try_parallel_map`] to handle failures per item instead.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    try_parallel_map(items, threads, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|p| panic!("parallel_map: {p}")))
        .collect()
}

/// Like [`parallel_map`], but a panicking item becomes
/// `Err(`[`ItemPanic`]`)` in its output slot instead of tearing down
/// the sweep; all other items still complete.
pub fn try_parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<Result<R, ItemPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let guarded = |idx: usize, item: &T| {
        catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|payload| ItemPanic {
            index: idx,
            message: panic_message(payload.as_ref()),
        })
    };
    if threads <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| guarded(i, item))
            .collect();
    }
    let n = items.len();
    let slots: Vec<Mutex<Option<Result<R, ItemPanic>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            let next = &next;
            let slots = &slots;
            let guarded = &guarded;
            scope.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(idx) else { break };
                let result = guarded(idx, item);
                *slots[idx].lock().expect("no poisoned slot") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("no poisoned slot")
                .expect("every slot filled by a worker")
        })
        .collect()
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A sensible default worker count: the number of available CPUs
/// (minimum 1). Ignores `ES_THREADS` — use [`Threads::resolve`] when
/// the override should apply (every sweep/bench entry point does).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// A resolved worker-thread count (always ≥ 1).
///
/// Thread counts used to be consulted ad hoc (`default_threads()` per
/// sweep call); this type is the single resolution point. Resolution
/// order: the `ES_THREADS` environment variable when set to a positive
/// integer, else [`default_threads`]. Carry the resolved value through
/// a run rather than re-reading the environment mid-sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Threads(usize);

impl Threads {
    /// Resolve from the environment: `ES_THREADS` (positive integer)
    /// wins, else the available CPU count.
    pub fn resolve() -> Self {
        match std::env::var("ES_THREADS") {
            Ok(s) => Self::from_override(&s),
            Err(_) => Self::exact(default_threads()),
        }
    }

    /// Resolution given the raw override string (empty/invalid values
    /// fall back to the CPU count). Split out so the policy is
    /// testable without touching process-global environment state.
    pub fn from_override(value: &str) -> Self {
        match value.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Self(n),
            _ => Self::exact(default_threads()),
        }
    }

    /// An explicit count, clamped to at least one thread.
    pub fn exact(n: usize) -> Self {
        Self(n.max(1))
    }

    /// The resolved count (≥ 1).
    pub fn get(self) -> usize {
        self.0
    }
}

impl Default for Threads {
    fn default() -> Self {
        Self::resolve()
    }
}

/// A type-erased job pointer published to pool workers: a thin data
/// pointer to the caller's closure plus a monomorphized call thunk.
/// Using a thin pointer + fn pointer (rather than a raw trait object)
/// sidesteps trait-object lifetime-bound erasure entirely.
#[derive(Clone, Copy)]
struct JobPtr {
    data: *const (),
    /// # Safety
    /// `data` must point to a live `F` matching the thunk's type.
    call: unsafe fn(*const (), usize, usize),
}

// SAFETY: `data` always points at an `F: Sync` borrowed by
// `WorkerPool::run`, which does not return until every claimed item
// has completed — so any worker dereferencing the pointer does so
// while the closure is alive, and sharing `&F` across threads is
// exactly what `Sync` permits.
#[allow(unsafe_code)]
unsafe impl Send for JobPtr {}

/// Pool control state. All claim decisions happen under one mutex so a
/// worker can never observe a job pointer from one burst and an item
/// index from another.
struct Ctrl {
    job: Option<JobPtr>,
    items: usize,
    next: usize,
    completed: usize,
    shutdown: bool,
    panic: Option<ItemPanic>,
}

struct Shared {
    ctrl: Mutex<Ctrl>,
    /// Signalled when a burst is published (or on shutdown).
    work: Condvar,
    /// Signalled when the last item of a burst completes.
    done: Condvar,
}

/// A small persistent worker pool for short, frequent parallel bursts.
///
/// [`parallel_map`] spawns a thread scope per call, which is fine for
/// sweeps measured in seconds but far too heavy for a scheduler's
/// inner loop (one burst per ready task, each a few microseconds to a
/// few milliseconds). `WorkerPool` spawns its threads once; between
/// bursts workers park on a condvar.
///
/// A burst is `run(items, job)`: `job(lane, index)` is called exactly
/// once for every `index < items`, distributed over `lanes()` lanes
/// (the calling thread participates as lane 0, so a 1-lane pool runs
/// everything inline and spawns nothing). Lane numbers let callers
/// keep per-worker scratch state without locking contention: at most
/// one item runs per lane at any time.
///
/// # Panics
/// If `job` panics on any item, the burst still drains (so no lane is
/// left holding a claimed item) and `run` re-panics with the item
/// index and original message, mirroring [`parallel_map`].
pub struct WorkerPool {
    shared: Arc<Shared>,
    lanes: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Create a pool with `lanes` lanes (clamped to ≥ 1). Spawns
    /// `lanes - 1` OS threads; the caller of [`WorkerPool::run`] is
    /// lane 0.
    pub fn new(lanes: usize) -> Self {
        let lanes = lanes.max(1);
        let shared = Arc::new(Shared {
            ctrl: Mutex::new(Ctrl {
                job: None,
                items: 0,
                next: 0,
                completed: 0,
                shutdown: false,
                panic: None,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..lanes)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker_loop(&shared, lane))
            })
            .collect();
        Self {
            shared,
            lanes,
            handles,
        }
    }

    /// Number of lanes (including the caller's lane 0).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Run one burst: call `job(lane, index)` once per `index <
    /// items`, across all lanes. Returns only after every item has
    /// completed, so `job` may freely borrow from the caller's stack.
    pub fn run<F: Fn(usize, usize) + Sync>(&mut self, items: usize, job: &F) {
        if items == 0 {
            return;
        }
        if self.lanes == 1 || items == 1 {
            for idx in 0..items {
                job(0, idx);
            }
            return;
        }

        /// # Safety
        /// `data` must point at a live `F`.
        #[allow(unsafe_code, clippy::items_after_statements)]
        unsafe fn thunk<F: Fn(usize, usize) + Sync>(data: *const (), lane: usize, idx: usize) {
            // SAFETY: upheld by the caller (the pool publishes `data`
            // only between publication and completion of one burst,
            // during which `run` keeps the closure borrowed).
            let f = unsafe { &*data.cast::<F>() };
            f(lane, idx);
        }

        {
            let mut c = self.shared.ctrl.lock().expect("pool mutex");
            debug_assert!(c.job.is_none(), "re-entrant burst");
            c.job = Some(JobPtr {
                data: std::ptr::from_ref(job).cast::<()>(),
                call: thunk::<F>,
            });
            c.items = items;
            c.next = 0;
            c.completed = 0;
            c.panic = None;
            self.shared.work.notify_all();
        }

        // The caller participates as lane 0 until the burst's items
        // are all claimed.
        loop {
            let idx = {
                let mut c = self.shared.ctrl.lock().expect("pool mutex");
                if c.next >= c.items {
                    break;
                }
                let idx = c.next;
                c.next += 1;
                idx
            };
            let result = catch_unwind(AssertUnwindSafe(|| job(0, idx)));
            let mut c = self.shared.ctrl.lock().expect("pool mutex");
            Self::finish_item(&self.shared, &mut c, idx, result);
        }

        // Wait for other lanes' in-flight items, then retire the
        // burst. `job` stays borrowed until here, so no worker can
        // ever dereference a dangling pointer.
        let mut c = self.shared.ctrl.lock().expect("pool mutex");
        while c.completed < c.items {
            c = self.shared.done.wait(c).expect("pool mutex");
        }
        c.job = None;
        let panic = c.panic.take();
        drop(c);
        if let Some(p) = panic {
            panic!("worker pool: {p}");
        }
    }

    /// Record one finished item under the control lock.
    fn finish_item(
        shared: &Shared,
        c: &mut Ctrl,
        idx: usize,
        result: Result<(), Box<dyn std::any::Any + Send>>,
    ) {
        if let Err(payload) = result {
            if c.panic.is_none() {
                c.panic = Some(ItemPanic {
                    index: idx,
                    message: panic_message(payload.as_ref()),
                });
            }
        }
        c.completed += 1;
        if c.completed == c.items {
            shared.done.notify_all();
        }
    }

    fn worker_loop(shared: &Shared, lane: usize) {
        let mut c = shared.ctrl.lock().expect("pool mutex");
        loop {
            if c.shutdown {
                return;
            }
            let claim = match c.job {
                Some(ptr) if c.next < c.items => {
                    let idx = c.next;
                    c.next += 1;
                    Some((ptr, idx))
                }
                _ => None,
            };
            let Some((ptr, idx)) = claim else {
                c = shared.work.wait(c).expect("pool mutex");
                continue;
            };
            drop(c);
            // SAFETY: `ptr` and `idx` were claimed atomically under
            // the control lock from the same published burst, and the
            // submitter cannot clear the job (nor return from `run`,
            // nor drop the closure) until this item's completion is
            // counted below — so the closure behind `ptr.data` is
            // alive for the whole call.
            #[allow(unsafe_code)]
            let result = catch_unwind(AssertUnwindSafe(|| unsafe {
                (ptr.call)(ptr.data, lane, idx);
            }));
            c = shared.ctrl.lock().expect("pool mutex");
            Self::finish_item(shared, &mut c, idx, result);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut c = self.shared.ctrl.lock().expect("pool mutex");
            c.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_matches() {
        let items: Vec<u64> = (0..20).collect();
        let a = parallel_map(&items, 1, |&x| x + 1);
        let b = parallel_map(&items, 4, |&x| x + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let count = AtomicUsize::new(0);
        let items: Vec<usize> = (0..500).collect();
        let out = parallel_map(&items, 6, |&x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(count.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = parallel_map(&Vec::<u64>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still all complete.
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(&items, 4, |&x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x * x
        });
        assert_eq!(out[31], 31 * 31);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn try_map_isolates_a_panicking_item() {
        let items: Vec<u64> = (0..16).collect();
        let out = try_parallel_map(&items, 4, |&x| {
            assert!(x != 11, "cell x={x} exploded");
            x * 2
        });
        assert_eq!(out.len(), 16);
        for (i, r) in out.iter().enumerate() {
            if i == 11 {
                let p = r.as_ref().expect_err("item 11 must fail");
                assert_eq!(p.index, 11);
                assert!(p.message.contains("x=11"), "message: {}", p.message);
            } else {
                assert_eq!(*r.as_ref().expect("other items succeed"), items[i] * 2);
            }
        }
    }

    #[test]
    fn parallel_map_repanic_names_the_item() {
        let items: Vec<u64> = (0..8).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            parallel_map(&items, 2, |&x| {
                assert!(x != 5, "boom at x={x}");
                x
            })
        }))
        .expect_err("must re-panic");
        let msg = panic_message(caught.as_ref());
        assert!(msg.contains("item 5"), "message: {msg}");
        assert!(msg.contains("boom at x=5"), "message: {msg}");
    }

    #[test]
    fn try_map_sequential_path_also_captures() {
        let items = vec![1u64];
        let out = try_parallel_map(&items, 1, |_| -> u64 { panic!("lonely") });
        assert_eq!(out[0].as_ref().expect_err("captured").index, 0);
    }

    #[test]
    fn threads_override_parsing() {
        assert_eq!(Threads::from_override("4").get(), 4);
        assert_eq!(Threads::from_override(" 2 ").get(), 2);
        // Invalid or non-positive values fall back to the CPU count.
        assert_eq!(Threads::from_override("0").get(), default_threads());
        assert_eq!(Threads::from_override("").get(), default_threads());
        assert_eq!(Threads::from_override("many").get(), default_threads());
        assert_eq!(Threads::from_override("-3").get(), default_threads());
    }

    #[test]
    fn threads_exact_clamps_to_one() {
        assert_eq!(Threads::exact(0).get(), 1);
        assert_eq!(Threads::exact(7).get(), 7);
        assert!(Threads::resolve().get() >= 1);
    }

    #[test]
    fn pool_runs_every_item_once() {
        let mut pool = WorkerPool::new(4);
        for round in 0..50 {
            let n = 1 + (round % 17);
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.run(n, &|_lane, idx| {
                hits[idx].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "round {round} item {i}");
            }
        }
    }

    #[test]
    fn pool_lane_ids_are_exclusive_and_in_range() {
        let mut pool = WorkerPool::new(3);
        assert_eq!(pool.lanes(), 3);
        let in_lane: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        pool.run(64, &|lane, _idx| {
            assert!(lane < 3);
            // At most one item in flight per lane at any moment.
            assert_eq!(in_lane[lane].fetch_add(1, Ordering::SeqCst), 0);
            std::thread::sleep(std::time::Duration::from_micros(50));
            in_lane[lane].fetch_sub(1, Ordering::SeqCst);
        });
    }

    #[test]
    fn pool_single_lane_runs_inline() {
        let mut pool = WorkerPool::new(1);
        let main = std::thread::current().id();
        let count = AtomicUsize::new(0);
        pool.run(9, &|lane, _idx| {
            assert_eq!(lane, 0);
            assert_eq!(std::thread::current().id(), main);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn pool_burst_borrows_stack_data() {
        let mut pool = WorkerPool::new(4);
        let input: Vec<u64> = (0..40).collect();
        let out: Vec<Mutex<u64>> = (0..40).map(|_| Mutex::new(0)).collect();
        pool.run(input.len(), &|_lane, idx| {
            *out[idx].lock().expect("slot") = input[idx] * 3;
        });
        for (i, m) in out.iter().enumerate() {
            assert_eq!(*m.lock().expect("slot"), input[i] * 3);
        }
    }

    #[test]
    fn pool_drains_and_repanics_with_item_index() {
        let mut pool = WorkerPool::new(2);
        let done = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, &|_lane, idx| {
                assert!(idx != 7, "probe idx={idx} exploded");
                done.fetch_add(1, Ordering::Relaxed);
            });
        }))
        .expect_err("must re-panic");
        let msg = panic_message(caught.as_ref());
        assert!(msg.contains("item 7"), "message: {msg}");
        assert!(msg.contains("idx=7"), "message: {msg}");
        // The rest of the burst still drained.
        assert_eq!(done.load(Ordering::Relaxed), 15);
        // And the pool is reusable afterwards.
        let count = AtomicUsize::new(0);
        pool.run(5, &|_lane, _idx| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn pool_shutdown_joins_workers() {
        let pool = WorkerPool::new(4);
        drop(pool); // must not hang
    }
}
