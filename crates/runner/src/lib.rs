//! # es-runner — shared parallel execution primitives
//!
//! Both the experiment harness (`es-sim`) and the scheduler core
//! (`es-core`, for parallel speculative processor probing) need the
//! same thing: fan independent work items out over a few threads with
//! **no external runtime**, deterministic output order, and panics
//! reported per item. This crate holds that machinery once:
//!
//! * [`parallel_map`] / [`try_parallel_map`] — scoped threads draining
//!   a shared atomic work counter (one scope per call; right for
//!   long-running sweeps where spawn cost is noise);
//! * [`WorkerPool`] — a persistent pool for **short, frequent** bursts
//!   (one probe cycle per ready task) where re-spawning threads per
//!   call would dominate; workers park on a condvar between bursts;
//! * [`Threads`] — the one place thread counts are resolved, honoring
//!   the `ES_THREADS` environment override so CI and bench runs are
//!   reproducible on any machine.

#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Acquire a mutex, recovering the guard if a previous holder
/// panicked. Every lock in this crate guards plain counters and
/// `Option` slots whose invariants are re-established by the next
/// writer, so a poisoned guard is always safe to adopt — and adopting
/// it keeps one panicking job from wedging every other lane behind a
/// `PoisonError` panic cascade.
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A captured panic from one work item of [`try_parallel_map`] or a
/// [`WorkerPool`] burst.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ItemPanic {
    /// Index of the item whose closure panicked.
    pub index: usize,
    /// The panic payload, when it was a string (the overwhelmingly
    /// common case — `panic!`/`assert!` messages); a placeholder
    /// otherwise.
    pub message: String,
}

impl std::fmt::Display for ItemPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "item {} panicked: {}", self.index, self.message)
    }
}

/// Apply `f` to every item on up to `threads` worker threads,
/// preserving input order in the output.
///
/// `f` must be `Sync` (it is shared by reference across workers) and
/// items are handed out through a shared counter, so faster workers
/// take more cells.
///
/// `threads == 0` or `1` degrades to a sequential map (useful under
/// `cargo test` and for debugging).
///
/// # Panics
/// If `f` panics on any item, re-panics **after the whole sweep has
/// drained** with the item's index and the original message — one bad
/// cell no longer kills the run with an anonymous scope-join panic,
/// and the index identifies the offending parameters. Use
/// [`try_parallel_map`] to handle failures per item instead.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    try_parallel_map(items, threads, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|p| panic!("parallel_map: {p}")))
        .collect()
}

/// Like [`parallel_map`], but a panicking item becomes
/// `Err(`[`ItemPanic`]`)` in its output slot instead of tearing down
/// the sweep; all other items still complete.
pub fn try_parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<Result<R, ItemPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let guarded = |idx: usize, item: &T| {
        catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|payload| ItemPanic {
            index: idx,
            message: panic_message(payload.as_ref()),
        })
    };
    if threads <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| guarded(i, item))
            .collect();
    }
    let n = items.len();
    let slots: Vec<Mutex<Option<Result<R, ItemPanic>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            let next = &next;
            let slots = &slots;
            let guarded = &guarded;
            scope.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(idx) else { break };
                let result = guarded(idx, item);
                *lock_recovering(&slots[idx]) = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every slot filled by a worker")
        })
        .collect()
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A sensible default worker count: the number of available CPUs
/// (minimum 1). Ignores `ES_THREADS` — use [`Threads::resolve`] when
/// the override should apply (every sweep/bench entry point does).
///
/// The probe is cached for the process lifetime:
/// `available_parallelism` reads cgroup quota files on Linux (tens of
/// microseconds), and [`Threads::resolve`] sits on the per-schedule
/// path of every `ProbeParallelism::Auto` run — uncached it was a
/// measurable fraction of a sub-millisecond schedule. The `ES_THREADS`
/// override in [`Threads::resolve`] is deliberately *not* cached, so
/// tests and operators can change it mid-process.
pub fn default_threads() -> usize {
    static CPUS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CPUS.get_or_init(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
}

/// A diagnosable configuration-parse failure: an environment variable
/// (or CLI flag routed through the same helpers) was set, but its
/// value does not parse. Carries everything a log line needs; callers
/// decide between falling back to a default and refusing to start.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnvError {
    /// The variable (or flag) that failed to parse.
    pub var: String,
    /// The offending raw value (lossily decoded when not UTF-8).
    pub value: String,
    /// Why it was rejected, e.g. `expected a positive integer`.
    pub reason: String,
}

impl std::fmt::Display for EnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}={:?}: {} (ignoring; using default)",
            self.var, self.value, self.reason
        )
    }
}

impl std::error::Error for EnvError {}

/// Read and parse an environment variable. `Ok(None)` when unset,
/// `Ok(Some(v))` when it parses, `Err` with a typed diagnostic when it
/// is set but malformed — the caller chooses the fallback, nothing
/// here panics.
pub fn env_parse<T: std::str::FromStr>(var: &str) -> Result<Option<T>, EnvError> {
    let raw = match std::env::var(var) {
        Ok(s) => s,
        Err(std::env::VarError::NotPresent) => return Ok(None),
        Err(std::env::VarError::NotUnicode(os)) => {
            return Err(EnvError {
                var: var.to_string(),
                value: os.to_string_lossy().into_owned(),
                reason: "not valid UTF-8".to_string(),
            })
        }
    };
    match raw.trim().parse::<T>() {
        Ok(v) => Ok(Some(v)),
        Err(_) => Err(EnvError {
            var: var.to_string(),
            value: raw,
            reason: format!("expected a {}", std::any::type_name::<T>()),
        }),
    }
}

/// [`env_parse`] specialised to positive integers (the shape of every
/// count/limit knob in this workspace): `0` is rejected with a
/// diagnostic rather than silently clamped.
pub fn env_usize(var: &str) -> Result<Option<usize>, EnvError> {
    match env_parse::<usize>(var)? {
        Some(0) => Err(EnvError {
            var: var.to_string(),
            value: "0".to_string(),
            reason: "expected a positive integer".to_string(),
        }),
        other => Ok(other),
    }
}

/// A resolved worker-thread count (always ≥ 1).
///
/// Thread counts used to be consulted ad hoc (`default_threads()` per
/// sweep call); this type is the single resolution point. Resolution
/// order: the `ES_THREADS` environment variable when set to a positive
/// integer, else [`default_threads`]. Carry the resolved value through
/// a run rather than re-reading the environment mid-sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Threads(usize);

impl Threads {
    /// Resolve from the environment: `ES_THREADS` (positive integer)
    /// wins, else the available CPU count. A malformed override falls
    /// back to the CPU count; use [`Threads::resolve_reporting`] when
    /// the caller wants the diagnostic too.
    pub fn resolve() -> Self {
        Self::resolve_reporting().0
    }

    /// Like [`Threads::resolve`], but surfaces a typed [`EnvError`]
    /// when `ES_THREADS` was set to something unusable — so service
    /// entry points (es-serve) can log exactly what was ignored
    /// instead of silently diverging from the operator's intent.
    pub fn resolve_reporting() -> (Self, Option<EnvError>) {
        match env_usize("ES_THREADS") {
            Ok(Some(n)) => (Self(n), None),
            Ok(None) => (Self::exact(default_threads()), None),
            Err(e) => (Self::exact(default_threads()), Some(e)),
        }
    }

    /// Resolution given the raw override string (empty/invalid values
    /// fall back to the CPU count). Split out so the policy is
    /// testable without touching process-global environment state.
    pub fn from_override(value: &str) -> Self {
        Self::from_override_reporting(value).0
    }

    /// [`Threads::from_override`] with the diagnostic for malformed
    /// values (the fallback to the CPU count is unchanged).
    pub fn from_override_reporting(value: &str) -> (Self, Option<EnvError>) {
        match value.trim().parse::<usize>() {
            Ok(n) if n >= 1 => (Self(n), None),
            _ => (
                Self::exact(default_threads()),
                Some(EnvError {
                    var: "ES_THREADS".to_string(),
                    value: value.to_string(),
                    reason: "expected a positive integer".to_string(),
                }),
            ),
        }
    }

    /// An explicit count, clamped to at least one thread.
    pub fn exact(n: usize) -> Self {
        Self(n.max(1))
    }

    /// The resolved count (≥ 1).
    pub fn get(self) -> usize {
        self.0
    }
}

impl Default for Threads {
    fn default() -> Self {
        Self::resolve()
    }
}

/// A type-erased job pointer published to pool workers: a thin data
/// pointer to the caller's closure plus a monomorphized call thunk.
/// Using a thin pointer + fn pointer (rather than a raw trait object)
/// sidesteps trait-object lifetime-bound erasure entirely.
#[derive(Clone, Copy)]
struct JobPtr {
    data: *const (),
    /// # Safety
    /// `data` must point to a live `F` matching the thunk's type.
    call: unsafe fn(*const (), usize, usize),
}

// SAFETY: `data` always points at an `F: Sync` borrowed by
// `WorkerPool::run`, which does not return until every claimed item
// has completed — so any worker dereferencing the pointer does so
// while the closure is alive, and sharing `&F` across threads is
// exactly what `Sync` permits.
#[allow(unsafe_code)]
unsafe impl Send for JobPtr {}

/// Pool control state. All claim decisions happen under one mutex so a
/// worker can never observe a job pointer from one burst and an item
/// index from another.
struct Ctrl {
    job: Option<JobPtr>,
    items: usize,
    next: usize,
    completed: usize,
    shutdown: bool,
    panic: Option<ItemPanic>,
}

struct Shared {
    ctrl: Mutex<Ctrl>,
    /// Signalled when a burst is published (or on shutdown).
    work: Condvar,
    /// Signalled when the last item of a burst completes.
    done: Condvar,
}

/// A small persistent worker pool for short, frequent parallel bursts.
///
/// [`parallel_map`] spawns a thread scope per call, which is fine for
/// sweeps measured in seconds but far too heavy for a scheduler's
/// inner loop (one burst per ready task, each a few microseconds to a
/// few milliseconds). `WorkerPool` spawns its threads once; between
/// bursts workers park on a condvar.
///
/// A burst is `run(items, job)`: `job(lane, index)` is called exactly
/// once for every `index < items`, distributed over `lanes()` lanes
/// (the calling thread participates as lane 0, so a 1-lane pool runs
/// everything inline and spawns nothing). Lane numbers let callers
/// keep per-worker scratch state without locking contention: at most
/// one item runs per lane at any time.
///
/// # Panics
/// If `job` panics on any item, the burst still drains (so no lane is
/// left holding a claimed item) and `run` re-panics with the item
/// index and original message, mirroring [`parallel_map`].
pub struct WorkerPool {
    shared: Arc<Shared>,
    lanes: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Create a pool with `lanes` lanes (clamped to ≥ 1). Spawns
    /// `lanes - 1` OS threads; the caller of [`WorkerPool::run`] is
    /// lane 0.
    pub fn new(lanes: usize) -> Self {
        let lanes = lanes.max(1);
        let shared = Arc::new(Shared {
            ctrl: Mutex::new(Ctrl {
                job: None,
                items: 0,
                next: 0,
                completed: 0,
                shutdown: false,
                panic: None,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..lanes)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker_loop(&shared, lane))
            })
            .collect();
        Self {
            shared,
            lanes,
            handles,
        }
    }

    /// Number of lanes (including the caller's lane 0).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Run one burst: call `job(lane, index)` once per `index <
    /// items`, across all lanes. Returns only after every item has
    /// completed, so `job` may freely borrow from the caller's stack.
    ///
    /// Panicking variant of [`WorkerPool::try_run`]: re-panics with
    /// the first captured [`ItemPanic`].
    pub fn run<F: Fn(usize, usize) + Sync>(&mut self, items: usize, job: &F) {
        if let Err(p) = self.try_run(items, job) {
            panic!("worker pool: {p}");
        }
    }

    /// Run one burst like [`WorkerPool::run`], but report a panicking
    /// item as `Err(`[`ItemPanic`]`)` instead of re-panicking. The
    /// burst always drains fully — every item runs exactly once, no
    /// lane is left holding a claim, and the pool stays reusable —
    /// whatever the verdict. Only the first panic is reported (by
    /// claim order); subsequent ones are dropped after draining.
    pub fn try_run<F: Fn(usize, usize) + Sync>(
        &mut self,
        items: usize,
        job: &F,
    ) -> Result<(), ItemPanic> {
        if items == 0 {
            return Ok(());
        }
        if self.lanes == 1 || items == 1 {
            let mut first: Option<ItemPanic> = None;
            for idx in 0..items {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| job(0, idx))) {
                    if first.is_none() {
                        first = Some(ItemPanic {
                            index: idx,
                            message: panic_message(payload.as_ref()),
                        });
                    }
                }
            }
            return match first {
                Some(p) => Err(p),
                None => Ok(()),
            };
        }

        /// # Safety
        /// `data` must point at a live `F`.
        #[allow(unsafe_code, clippy::items_after_statements)]
        unsafe fn thunk<F: Fn(usize, usize) + Sync>(data: *const (), lane: usize, idx: usize) {
            // SAFETY: upheld by the caller (the pool publishes `data`
            // only between publication and completion of one burst,
            // during which `run` keeps the closure borrowed).
            let f = unsafe { &*data.cast::<F>() };
            f(lane, idx);
        }

        {
            let mut c = lock_recovering(&self.shared.ctrl);
            debug_assert!(c.job.is_none(), "re-entrant burst");
            c.job = Some(JobPtr {
                data: std::ptr::from_ref(job).cast::<()>(),
                call: thunk::<F>,
            });
            c.items = items;
            c.next = 0;
            c.completed = 0;
            c.panic = None;
            self.shared.work.notify_all();
        }

        // The caller participates as lane 0 until the burst's items
        // are all claimed.
        loop {
            let idx = {
                let mut c = lock_recovering(&self.shared.ctrl);
                if c.next >= c.items {
                    break;
                }
                let idx = c.next;
                c.next += 1;
                idx
            };
            let result = catch_unwind(AssertUnwindSafe(|| job(0, idx)));
            let mut c = lock_recovering(&self.shared.ctrl);
            Self::finish_item(&self.shared, &mut c, idx, result);
        }

        // Wait for other lanes' in-flight items, then retire the
        // burst. `job` stays borrowed until here, so no worker can
        // ever dereference a dangling pointer.
        let mut c = lock_recovering(&self.shared.ctrl);
        while c.completed < c.items {
            c = self
                .shared
                .done
                .wait(c)
                .unwrap_or_else(PoisonError::into_inner);
        }
        c.job = None;
        let panic = c.panic.take();
        drop(c);
        match panic {
            Some(p) => Err(p),
            None => Ok(()),
        }
    }

    /// Record one finished item under the control lock.
    fn finish_item(
        shared: &Shared,
        c: &mut Ctrl,
        idx: usize,
        result: Result<(), Box<dyn std::any::Any + Send>>,
    ) {
        if let Err(payload) = result {
            if c.panic.is_none() {
                c.panic = Some(ItemPanic {
                    index: idx,
                    message: panic_message(payload.as_ref()),
                });
            }
        }
        c.completed += 1;
        if c.completed == c.items {
            shared.done.notify_all();
        }
    }

    fn worker_loop(shared: &Shared, lane: usize) {
        let mut c = lock_recovering(&shared.ctrl);
        loop {
            if c.shutdown {
                return;
            }
            let claim = match c.job {
                Some(ptr) if c.next < c.items => {
                    let idx = c.next;
                    c.next += 1;
                    Some((ptr, idx))
                }
                _ => None,
            };
            let Some((ptr, idx)) = claim else {
                c = shared.work.wait(c).unwrap_or_else(PoisonError::into_inner);
                continue;
            };
            drop(c);
            // SAFETY: `ptr` and `idx` were claimed atomically under
            // the control lock from the same published burst, and the
            // submitter cannot clear the job (nor return from `run`,
            // nor drop the closure) until this item's completion is
            // counted below — so the closure behind `ptr.data` is
            // alive for the whole call.
            #[allow(unsafe_code)]
            let result = catch_unwind(AssertUnwindSafe(|| unsafe {
                (ptr.call)(ptr.data, lane, idx);
            }));
            c = lock_recovering(&shared.ctrl);
            Self::finish_item(shared, &mut c, idx, result);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut c = lock_recovering(&self.shared.ctrl);
            c.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_matches() {
        let items: Vec<u64> = (0..20).collect();
        let a = parallel_map(&items, 1, |&x| x + 1);
        let b = parallel_map(&items, 4, |&x| x + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let count = AtomicUsize::new(0);
        let items: Vec<usize> = (0..500).collect();
        let out = parallel_map(&items, 6, |&x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(count.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = parallel_map(&Vec::<u64>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still all complete.
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(&items, 4, |&x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x * x
        });
        assert_eq!(out[31], 31 * 31);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn try_map_isolates_a_panicking_item() {
        let items: Vec<u64> = (0..16).collect();
        let out = try_parallel_map(&items, 4, |&x| {
            assert!(x != 11, "cell x={x} exploded");
            x * 2
        });
        assert_eq!(out.len(), 16);
        for (i, r) in out.iter().enumerate() {
            if i == 11 {
                let p = r.as_ref().expect_err("item 11 must fail");
                assert_eq!(p.index, 11);
                assert!(p.message.contains("x=11"), "message: {}", p.message);
            } else {
                assert_eq!(*r.as_ref().expect("other items succeed"), items[i] * 2);
            }
        }
    }

    #[test]
    fn parallel_map_repanic_names_the_item() {
        let items: Vec<u64> = (0..8).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            parallel_map(&items, 2, |&x| {
                assert!(x != 5, "boom at x={x}");
                x
            })
        }))
        .expect_err("must re-panic");
        let msg = panic_message(caught.as_ref());
        assert!(msg.contains("item 5"), "message: {msg}");
        assert!(msg.contains("boom at x=5"), "message: {msg}");
    }

    #[test]
    fn try_map_sequential_path_also_captures() {
        let items = vec![1u64];
        let out = try_parallel_map(&items, 1, |_| -> u64 { panic!("lonely") });
        assert_eq!(out[0].as_ref().expect_err("captured").index, 0);
    }

    #[test]
    fn threads_override_parsing() {
        assert_eq!(Threads::from_override("4").get(), 4);
        assert_eq!(Threads::from_override(" 2 ").get(), 2);
        // Invalid or non-positive values fall back to the CPU count.
        assert_eq!(Threads::from_override("0").get(), default_threads());
        assert_eq!(Threads::from_override("").get(), default_threads());
        assert_eq!(Threads::from_override("many").get(), default_threads());
        assert_eq!(Threads::from_override("-3").get(), default_threads());
    }

    #[test]
    fn threads_exact_clamps_to_one() {
        assert_eq!(Threads::exact(0).get(), 1);
        assert_eq!(Threads::exact(7).get(), 7);
        assert!(Threads::resolve().get() >= 1);
    }

    #[test]
    fn pool_runs_every_item_once() {
        let mut pool = WorkerPool::new(4);
        for round in 0..50 {
            let n = 1 + (round % 17);
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.run(n, &|_lane, idx| {
                hits[idx].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "round {round} item {i}");
            }
        }
    }

    #[test]
    fn pool_lane_ids_are_exclusive_and_in_range() {
        let mut pool = WorkerPool::new(3);
        assert_eq!(pool.lanes(), 3);
        let in_lane: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        pool.run(64, &|lane, _idx| {
            assert!(lane < 3);
            // At most one item in flight per lane at any moment.
            assert_eq!(in_lane[lane].fetch_add(1, Ordering::SeqCst), 0);
            std::thread::sleep(std::time::Duration::from_micros(50));
            in_lane[lane].fetch_sub(1, Ordering::SeqCst);
        });
    }

    #[test]
    fn pool_single_lane_runs_inline() {
        let mut pool = WorkerPool::new(1);
        let main = std::thread::current().id();
        let count = AtomicUsize::new(0);
        pool.run(9, &|lane, _idx| {
            assert_eq!(lane, 0);
            assert_eq!(std::thread::current().id(), main);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn pool_burst_borrows_stack_data() {
        let mut pool = WorkerPool::new(4);
        let input: Vec<u64> = (0..40).collect();
        let out: Vec<Mutex<u64>> = (0..40).map(|_| Mutex::new(0)).collect();
        pool.run(input.len(), &|_lane, idx| {
            *out[idx].lock().expect("slot") = input[idx] * 3;
        });
        for (i, m) in out.iter().enumerate() {
            assert_eq!(*m.lock().expect("slot"), input[i] * 3);
        }
    }

    #[test]
    fn pool_drains_and_repanics_with_item_index() {
        let mut pool = WorkerPool::new(2);
        let done = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, &|_lane, idx| {
                assert!(idx != 7, "probe idx={idx} exploded");
                done.fetch_add(1, Ordering::Relaxed);
            });
        }))
        .expect_err("must re-panic");
        let msg = panic_message(caught.as_ref());
        assert!(msg.contains("item 7"), "message: {msg}");
        assert!(msg.contains("idx=7"), "message: {msg}");
        // The rest of the burst still drained.
        assert_eq!(done.load(Ordering::Relaxed), 15);
        // And the pool is reusable afterwards.
        let count = AtomicUsize::new(0);
        pool.run(5, &|_lane, _idx| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn pool_shutdown_joins_workers() {
        let pool = WorkerPool::new(4);
        drop(pool); // must not hang
    }

    #[test]
    fn pool_try_run_surfaces_panic_as_result() {
        let mut pool = WorkerPool::new(3);
        let done = AtomicUsize::new(0);
        let err = pool
            .try_run(20, &|_lane, idx| {
                assert!(idx != 4, "lane job idx={idx} exploded");
                done.fetch_add(1, Ordering::Relaxed);
            })
            .expect_err("item 4 must fail");
        assert_eq!(err.index, 4);
        assert!(err.message.contains("idx=4"), "message: {}", err.message);
        // Every other item still ran; no lane is wedged.
        assert_eq!(done.load(Ordering::Relaxed), 19);
        assert_eq!(pool.try_run(8, &|_lane, _idx| {}), Ok(()));
    }

    #[test]
    fn pool_try_run_single_lane_drains_too() {
        let mut pool = WorkerPool::new(1);
        let done = AtomicUsize::new(0);
        let err = pool
            .try_run(6, &|_lane, idx| {
                assert!(idx != 2, "inline idx={idx}");
                done.fetch_add(1, Ordering::Relaxed);
            })
            .expect_err("item 2 must fail");
        assert_eq!(err.index, 2);
        assert_eq!(done.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn pool_survives_repeated_panicking_bursts() {
        // A lane that catches a panic must keep claiming work on the
        // very next burst — no poisoned mutex, no dead lane.
        let mut pool = WorkerPool::new(4);
        for round in 0..10 {
            let err = pool
                .try_run(9, &|_lane, idx| assert!(idx != round % 9, "boom"))
                .expect_err("one item fails per round");
            assert_eq!(err.index, round % 9);
        }
        let count = AtomicUsize::new(0);
        pool.run(16, &|_lane, _idx| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn env_parse_unset_is_none() {
        assert_eq!(env_parse::<usize>("ES_TEST_UNSET_VAR_XYZ"), Ok(None));
    }

    #[test]
    fn env_parse_reads_and_trims() {
        std::env::set_var("ES_TEST_PARSE_OK", " 42 ");
        assert_eq!(env_parse::<usize>("ES_TEST_PARSE_OK"), Ok(Some(42)));
    }

    #[test]
    fn env_parse_malformed_is_typed_error() {
        std::env::set_var("ES_TEST_PARSE_BAD", "over 9000");
        let err = env_parse::<usize>("ES_TEST_PARSE_BAD").expect_err("malformed");
        assert_eq!(err.var, "ES_TEST_PARSE_BAD");
        assert_eq!(err.value, "over 9000");
        let shown = err.to_string();
        assert!(shown.contains("ES_TEST_PARSE_BAD"), "display: {shown}");
        assert!(shown.contains("using default"), "display: {shown}");
    }

    #[test]
    fn env_usize_rejects_zero() {
        std::env::set_var("ES_TEST_USIZE_ZERO", "0");
        let err = env_usize("ES_TEST_USIZE_ZERO").expect_err("zero is not a lane count");
        assert!(err.reason.contains("positive"), "reason: {}", err.reason);
        std::env::set_var("ES_TEST_USIZE_OK", "3");
        assert_eq!(env_usize("ES_TEST_USIZE_OK"), Ok(Some(3)));
    }

    #[test]
    fn env_parse_empty_and_whitespace_are_typed_errors() {
        // An empty or blank value is *set* but unusable: it must come
        // back as a typed error (so the operator is told), never as a
        // silent `Ok(None)` that masquerades as "unset".
        std::env::set_var("ES_TEST_PARSE_EMPTY", "");
        let err = env_parse::<usize>("ES_TEST_PARSE_EMPTY").expect_err("empty is not unset");
        assert_eq!(
            (err.var.as_str(), err.value.as_str()),
            ("ES_TEST_PARSE_EMPTY", "")
        );
        std::env::set_var("ES_TEST_PARSE_BLANK", "   \t ");
        let err = env_parse::<usize>("ES_TEST_PARSE_BLANK").expect_err("blank is not unset");
        assert_eq!(err.value, "   \t ", "diagnostic carries the raw value");
    }

    #[test]
    fn env_parse_overflow_is_a_typed_error() {
        // A value beyond the integer's range must be rejected with a
        // diagnostic, not wrapped, clamped, or silently defaulted.
        std::env::set_var("ES_TEST_PARSE_HUGE", "99999999999999999999999");
        let err = env_parse::<usize>("ES_TEST_PARSE_HUGE").expect_err("overflow rejected");
        assert_eq!(err.value, "99999999999999999999999");
        assert!(err.reason.contains("usize"), "reason: {}", err.reason);
        std::env::set_var("ES_TEST_USIZE_HUGE", "99999999999999999999999");
        assert!(env_usize("ES_TEST_USIZE_HUGE").is_err());
    }

    #[test]
    fn env_usize_rejects_negative_with_diagnostic() {
        std::env::set_var("ES_TEST_USIZE_NEG", "-3");
        let err = env_usize("ES_TEST_USIZE_NEG").expect_err("negative rejected");
        assert_eq!(err.var, "ES_TEST_USIZE_NEG");
        assert_eq!(err.value, "-3");
    }

    #[test]
    fn threads_resolve_reads_the_environment() {
        // This is the only test that writes ES_THREADS; concurrent
        // `resolve()` calls elsewhere only assert `>= 1`, which holds
        // for every value set here.
        std::env::set_var("ES_THREADS", "3");
        let (t, err) = Threads::resolve_reporting();
        assert_eq!((t.get(), err), (3, None));
        // Zero is diagnosed and falls back to the CPU count.
        std::env::set_var("ES_THREADS", "0");
        let (t, err) = Threads::resolve_reporting();
        assert_eq!(t.get(), default_threads());
        let err = err.expect("zero lanes is diagnosed");
        assert_eq!((err.var.as_str(), err.value.as_str()), ("ES_THREADS", "0"));
        // Garbage likewise — typed error, not a silent default.
        std::env::set_var("ES_THREADS", "all-of-them");
        let (t, err) = Threads::resolve_reporting();
        assert_eq!(t.get(), default_threads());
        assert!(err
            .expect("garbage diagnosed")
            .to_string()
            .contains("ES_THREADS"));
        // Plain `resolve()` swallows the diagnostic but keeps the
        // same fallback.
        assert_eq!(Threads::resolve().get(), default_threads());
        std::env::remove_var("ES_THREADS");
        assert_eq!(Threads::resolve().get(), default_threads());
    }

    #[test]
    fn threads_override_overflow_falls_back_with_diagnostic() {
        let (t, err) = Threads::from_override_reporting("99999999999999999999999");
        assert_eq!(t.get(), default_threads());
        assert_eq!(
            err.expect("overflow diagnosed").value,
            "99999999999999999999999"
        );
        let (t, err) = Threads::from_override_reporting("  \t");
        assert_eq!(t.get(), default_threads());
        assert!(err.is_some(), "blank override is diagnosed");
    }

    #[test]
    fn threads_reporting_carries_diagnostic() {
        let (t, err) = Threads::from_override_reporting("4");
        assert_eq!((t.get(), err), (4, None));
        let (t, err) = Threads::from_override_reporting("banana");
        assert_eq!(t.get(), default_threads());
        let err = err.expect("malformed override is diagnosed");
        assert_eq!(err.var, "ES_THREADS");
        assert_eq!(err.value, "banana");
    }

    #[test]
    fn lock_recovering_adopts_poisoned_guard() {
        let m = Arc::new(Mutex::new(5u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().expect("fresh mutex");
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_recovering(&m), 5);
    }
}
