//! Tests of the model extension points the paper explicitly invites:
//! per-hop switch delay (§2.2: "it can be included if necessary") and
//! store-and-forward switching (vs the paper's cut-through).

use es_core::config::{ListConfig, Switching};
use es_core::{validate::validate, BbsaScheduler, ListScheduler, Scheduler};
use es_dag::gen::structured::{fork_join, gauss_elim};
use es_dag::TaskGraphBuilder;
use es_net::{NodeId, Topology};

/// p0 — sw — sw — p1 line with unit speeds and configurable hop delay.
fn two_switch_line(hop_delay: f64) -> Topology {
    let mut b = Topology::builder();
    b.set_hop_delay(hop_delay);
    let (p0, _) = b.add_processor(1.0);
    let (p1, _) = b.add_processor(1.0);
    let s1 = b.add_switch();
    let s2 = b.add_switch();
    b.add_duplex_cable(p0, s1, 1.0);
    b.add_duplex_cable(s1, s2, 1.0);
    b.add_duplex_cable(s2, p1, 1.0);
    b.build().unwrap()
}

/// Two tasks forced onto different processors (two entry tasks + join).
fn split_dag() -> es_dag::TaskGraph {
    let mut g = TaskGraphBuilder::new();
    let a = g.add_task(10.0);
    let b = g.add_task(10.0);
    let j = g.add_task(1.0);
    g.add_edge(a, j, 6.0).unwrap();
    g.add_edge(b, j, 6.0).unwrap();
    g.build().unwrap()
}

#[test]
fn hop_delay_increases_slotted_makespan() {
    let dag = split_dag();
    let free = ListScheduler::ba()
        .schedule(&dag, &two_switch_line(0.0))
        .unwrap();
    let delayed_topo = two_switch_line(2.0);
    let delayed = ListScheduler::ba().schedule(&dag, &delayed_topo).unwrap();
    validate(&dag, &delayed_topo, &delayed).expect("valid with hop delay");
    assert!(
        delayed.makespan > free.makespan,
        "3-hop route must pay 2 hop delays: {} vs {}",
        delayed.makespan,
        free.makespan
    );
    // Exactly two extra hops' worth on the critical communication.
    assert!((delayed.makespan - free.makespan - 4.0).abs() < 1e-6);
}

#[test]
fn hop_delay_increases_fluid_makespan() {
    let dag = split_dag();
    let free = BbsaScheduler::new()
        .schedule(&dag, &two_switch_line(0.0))
        .unwrap();
    let topo = two_switch_line(1.5);
    let delayed = BbsaScheduler::new().schedule(&dag, &topo).unwrap();
    validate(&dag, &topo, &delayed).expect("valid with hop delay");
    assert!(delayed.makespan > free.makespan);
}

#[test]
fn all_schedulers_valid_under_hop_delay() {
    let dag = gauss_elim(5, 8.0, 12.0);
    let topo = two_switch_line(0.7);
    for sched in [
        Box::new(ListScheduler::ba()) as Box<dyn Scheduler>,
        Box::new(ListScheduler::ba_static()),
        Box::new(ListScheduler::oihsa()),
        Box::new(BbsaScheduler::new()),
    ] {
        let s = sched.schedule(&dag, &topo).unwrap();
        if let Err(errs) = validate(&dag, &topo, &s) {
            panic!("{} with hop delay: {}", sched.name(), errs.join("\n"));
        }
    }
}

#[test]
fn store_and_forward_never_beats_cut_through() {
    let dag = split_dag();
    let topo = two_switch_line(0.0);
    let ct = ListScheduler::ba().schedule(&dag, &topo).unwrap();
    let sf_cfg = ListConfig {
        name: "BA-sf",
        switching: Switching::StoreAndForward,
        ..ListConfig::ba()
    };
    let sf = ListScheduler::with_config(sf_cfg)
        .schedule(&dag, &topo)
        .unwrap();
    validate(&dag, &topo, &sf).expect("store-and-forward schedules are valid");
    assert!(
        sf.makespan >= ct.makespan - 1e-9,
        "SF {} vs CT {}",
        sf.makespan,
        ct.makespan
    );
    // On a 3-hop unit-speed route, store-and-forward pays the transfer
    // time per hop instead of once: strictly worse here.
    assert!(sf.makespan > ct.makespan);
}

#[test]
fn store_and_forward_schedules_are_valid_everywhere() {
    let dag = fork_join(5, 10.0, 8.0);
    let topo = two_switch_line(0.5);
    for base in [ListConfig::ba(), ListConfig::oihsa()] {
        let cfg = ListConfig {
            name: "sf",
            switching: Switching::StoreAndForward,
            ..base
        };
        let s = ListScheduler::with_config(cfg)
            .schedule(&dag, &topo)
            .unwrap();
        if let Err(errs) = validate(&dag, &topo, &s) {
            panic!("{base:?} SF: {}", errs.join("\n"));
        }
    }
}

#[test]
fn hop_delay_respected_hop_by_hop() {
    let dag = split_dag();
    let topo = two_switch_line(2.0);
    let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
    for c in &s.comms {
        if let es_core::CommPlacement::Slotted { times, .. } = c {
            for w in times.windows(2) {
                assert!(w[1].0 + 1e-9 >= w[0].0 + 2.0, "start delayed per hop");
                assert!(w[1].1 + 1e-9 >= w[0].1 + 2.0, "finish delayed per hop");
            }
        }
    }
}

#[test]
fn builder_rejects_negative_hop_delay() {
    let mut b = Topology::builder();
    b.set_hop_delay(-1.0);
    b.add_processor(1.0);
    assert!(b.build().is_err());
    let _ = NodeId(0); // silence unused import lint paths
}
