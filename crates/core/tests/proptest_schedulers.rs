//! The workspace's heaviest property: every scheduler must produce a
//! **fully valid** schedule on arbitrary random instances. This drives
//! the independent validator (precedence, non-preemption, causality,
//! bandwidth, volume conservation, makespan) over the whole scheduler ×
//! instance space.

use es_core::{validate::validate, BbsaScheduler, ListScheduler, Scheduler};
use es_dag::gen::layered::{random_layered, LayeredDagConfig};
use es_dag::TaskGraph;
use es_net::gen::{self, WanConfig};
use es_net::Topology;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn instance_strategy() -> impl Strategy<Value = (TaskGraph, Topology)> {
    (
        2usize..50,   // tasks
        1usize..8,    // mean width
        0.0f64..0.6,  // density
        2usize..16,   // processors
        any::<u64>(), // seed
        prop::bool::ANY,
    )
        .prop_map(|(tasks, width, density, procs, seed, hetero)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let dag = random_layered(
                &LayeredDagConfig {
                    tasks,
                    mean_width: width,
                    edge_density: density,
                    max_jump: 2,
                    weight_range: (1, 500),
                    cost_range: (1, 2000),
                },
                &mut rng,
            );
            let cfg = if hetero {
                WanConfig::heterogeneous(procs)
            } else {
                WanConfig::homogeneous(procs)
            };
            let topo = gen::random_switched_wan(&cfg, &mut rng);
            (dag, topo)
        })
}

proptest! {
    // Each case runs 6 schedulers + validation; keep the case count
    // moderate so the suite stays under a minute.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_schedulers_produce_valid_schedules((dag, topo) in instance_strategy()) {
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(ListScheduler::ba()),
            Box::new(ListScheduler::ba_static()),
            Box::new(ListScheduler::oihsa()),
            Box::new(ListScheduler::oihsa_probing()),
            Box::new(BbsaScheduler::new()),
            Box::new(BbsaScheduler::with_config(es_core::bbsa::BbsaConfig::probing())),
        ];
        for sched in schedulers {
            let s = sched
                .schedule(&dag, &topo)
                .unwrap_or_else(|e| panic!("{}: {e}", sched.name()));
            if let Err(errs) = validate(&dag, &topo, &s) {
                panic!("{} invalid:\n{}", sched.name(), errs.join("\n"));
            }
            prop_assert!(s.makespan.is_finite() && s.makespan >= 0.0);
        }
    }

    #[test]
    fn makespans_dominate_work_lower_bound((dag, topo) in instance_strategy()) {
        let total_work: f64 = dag.task_ids().map(|t| dag.weight(t)).sum();
        let total_speed: f64 = topo.proc_ids().map(|p| topo.proc_speed(p)).sum();
        let lb = total_work / total_speed;
        for sched in [
            Box::new(ListScheduler::ba()) as Box<dyn Scheduler>,
            Box::new(ListScheduler::oihsa()),
            Box::new(BbsaScheduler::new()),
        ] {
            let s = sched.schedule(&dag, &topo).unwrap();
            prop_assert!(s.makespan + 1e-6 >= lb, "{}", sched.name());
        }
    }

    #[test]
    fn executor_dominates_and_compaction_validates((dag, topo) in instance_strategy()) {
        // The operational executor must never derive later times than
        // the scheduler recorded, and compaction must stay valid.
        for sched in [
            Box::new(ListScheduler::ba()) as Box<dyn Scheduler>,
            Box::new(ListScheduler::ba_static()),
            Box::new(ListScheduler::oihsa()),
        ] {
            let s = sched.schedule(&dag, &topo).unwrap();
            let exec = es_core::exec::execute(&dag, &topo, &s)
                .unwrap_or_else(|e| panic!("{}: {e}", sched.name()));
            es_core::exec::check_dominates(&s, &exec)
                .unwrap_or_else(|e| panic!("{}: {e}", sched.name()));
            let compacted = es_core::exec::compact(&dag, &topo, &s).unwrap();
            if let Err(errs) = validate(&dag, &topo, &compacted) {
                panic!("{} compacted invalid:\n{}", sched.name(), errs.join("\n"));
            }
            prop_assert!(compacted.makespan <= s.makespan + 1e-6);
        }
    }

    #[test]
    fn lower_bounds_hold((dag, topo) in instance_strategy()) {
        let lb = es_core::bounds::makespan_lower_bound(&dag, &topo);
        for sched in [
            Box::new(ListScheduler::ba()) as Box<dyn Scheduler>,
            Box::new(BbsaScheduler::new()),
        ] {
            let s = sched.schedule(&dag, &topo).unwrap();
            prop_assert!(s.makespan + 1e-6 >= lb, "{}", sched.name());
        }
    }

    #[test]
    fn scheduling_is_deterministic((dag, topo) in instance_strategy()) {
        for sched in [
            Box::new(ListScheduler::oihsa()) as Box<dyn Scheduler>,
            Box::new(BbsaScheduler::new()),
        ] {
            let a = sched.schedule(&dag, &topo).unwrap();
            let b = sched.schedule(&dag, &topo).unwrap();
            prop_assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        }
    }
}
