//! Property: the route/probe cache never serves a stale route. Twin
//! [`SlottedState`]s — one with the optimized tuning (cache + indexed
//! gaps), one with the reference tuning — are driven through identical
//! random sequences of probe cycles (checkpoint → tentative schedule →
//! exact rollback → restore), real commits, and schedules against
//! masked repair views of the topology. Every returned arrival time
//! and every recorded placement must match bit for bit; any stale
//! cache entry surviving a link-queue mutation or a topology mask
//! switch would diverge here.

use es_core::config::{Insertion, Routing, Switching};
use es_core::slotted::SlottedState;
use es_core::Tuning;
use es_linksched::CommId;
use es_net::gen::{self, WanConfig};
use es_net::Topology;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One scripted communication request.
#[derive(Clone, Debug)]
struct Req {
    est: f64,
    cost: f64,
    from: usize,
    to: usize,
    candidates: usize,
    optimal: bool,
    /// Schedule this request against the masked view instead of the
    /// full topology (exercises signature-keyed invalidation).
    masked: bool,
}

fn reqs_strategy() -> impl Strategy<Value = Vec<Req>> {
    prop::collection::vec(
        (
            0.0f64..50.0,
            0.5f64..40.0,
            0usize..64,
            0usize..64,
            1usize..5,
            prop::bool::ANY,
            0u8..10,
        ),
        1..24,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(est, cost, from, to, candidates, optimal, m)| Req {
                est,
                cost,
                from,
                to,
                candidates,
                optimal,
                masked: m < 3,
            })
            .collect()
    })
}

fn drive(topo: &Topology, masked: &Topology, reqs: &[Req], tuning: Tuning) -> SlottedState {
    let mut st = SlottedState::with_tuning(topo, reqs.len() * 8, tuning);
    let procs = topo.proc_count();
    let mut next = 0u64;
    for r in reqs {
        let from = r.from % procs;
        let view = if r.masked { masked } else { topo };
        let insertion = if r.optimal {
            Insertion::Optimal
        } else {
            Insertion::Basic
        };
        // Probe cycle over candidate destinations, mirroring
        // pick_by_probe: tentative schedules are exactly rolled back
        // before each restore, so the cache may serve repeat searches.
        let cp = st.checkpoint();
        for c in 0..r.candidates {
            let to = (r.to + c) % procs;
            if to == from {
                st.restore(cp);
                continue;
            }
            let comm = CommId(next);
            let ok = st
                .schedule_comm(
                    view,
                    comm,
                    r.est,
                    r.cost,
                    es_net::ProcId(from as u32),
                    es_net::ProcId(to as u32),
                    Routing::ModifiedDijkstra,
                    Insertion::Basic,
                    Switching::CutThrough,
                )
                .is_ok();
            if ok {
                st.unschedule(comm);
            }
            st.restore(cp);
        }
        // Real commit (mutates the link queues, moving the epoch, so
        // any cached search must stop being served afterwards).
        let to = if r.to % procs == from {
            (from + 1) % procs
        } else {
            r.to % procs
        };
        if to != from {
            let comm = CommId(next);
            next += 1;
            let _ = st.schedule_comm(
                view,
                comm,
                r.est,
                r.cost,
                es_net::ProcId(from as u32),
                es_net::ProcId(to as u32),
                Routing::ModifiedDijkstra,
                insertion,
                Switching::CutThrough,
            );
        }
    }
    st.check_invariants().expect("invariants");
    st
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn route_cache_never_serves_stale_routes(
        procs in 2usize..10,
        seed in any::<u64>(),
        hetero in prop::bool::ANY,
        mask_seed in any::<u64>(),
        reqs in reqs_strategy(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = if hetero {
            WanConfig::heterogeneous(procs)
        } else {
            WanConfig::homogeneous(procs)
        };
        let topo = gen::random_switched_wan(&cfg, &mut rng);
        // Mask a pseudo-random subset of links (possibly disconnecting
        // the view — NoRoute results must then match on both sides).
        let masked = topo.masked(|l| (mask_seed >> (l.index() % 61)) & 1 == 1);

        let opt = drive(&topo, &masked, &reqs, Tuning::optimized());
        let refr = drive(&topo, &masked, &reqs, Tuning::reference());

        for link in topo.link_ids() {
            let (a, b) = (opt.queue(link), refr.queue(link));
            prop_assert_eq!(a.len(), b.len(), "queue length on link {}", link.index());
            for (x, y) in a.slots().iter().zip(b.slots()) {
                prop_assert_eq!(x.comm, y.comm);
                prop_assert_eq!(x.seq, y.seq);
                prop_assert_eq!(x.start.to_bits(), y.start.to_bits());
                prop_assert_eq!(x.end.to_bits(), y.end.to_bits());
            }
        }
    }
}
