//! Text Gantt charts for schedules.
//!
//! Renders processor rows (task executions) and link rows (slot or
//! fluid occupancy) on a shared time axis — the fastest way to *see*
//! contention: queued transfers show up as back-to-back blocks on a
//! link row. Used by the examples and handy in tests.

use crate::schedule::{CommPlacement, Schedule};
use es_dag::TaskGraph;
use es_net::Topology;
use std::fmt::Write as _;

/// Rendering options.
#[derive(Clone, Debug)]
pub struct GanttOptions {
    /// Total character width of the time axis.
    pub width: usize,
    /// Also render link rows (processor rows always render).
    pub show_links: bool,
    /// Skip links that carry no traffic.
    pub hide_idle_links: bool,
}

impl Default for GanttOptions {
    fn default() -> Self {
        Self {
            width: 72,
            show_links: true,
            hide_idle_links: true,
        }
    }
}

/// Render the schedule as a text Gantt chart.
pub fn render(
    dag: &TaskGraph,
    topo: &Topology,
    schedule: &Schedule,
    opts: &GanttOptions,
) -> String {
    let span = schedule.makespan.max(1e-9);
    let width = opts.width.max(10);
    let scale = |t: f64| -> usize { (((t / span) * width as f64).round() as usize).min(width) };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} — makespan {:.1} (one column ≈ {:.2} time units)",
        schedule.algorithm,
        schedule.makespan,
        span / width as f64
    );

    // Processor rows: one block per task labelled by task index mod 10.
    for p in topo.proc_ids() {
        let mut row = vec![b'.'; width];
        for (i, t) in schedule.tasks.iter().enumerate() {
            if t.proc != p {
                continue;
            }
            let (a, b) = (scale(t.start), scale(t.finish).max(scale(t.start) + 1));
            let label = char::from_digit((i % 10) as u32, 10).unwrap_or('#') as u8;
            for cell in row.iter_mut().take(b.min(width)).skip(a) {
                *cell = label;
            }
        }
        let _ = writeln!(out, "{p:>5} |{}|", String::from_utf8_lossy(&row));
    }

    if !opts.show_links {
        return out;
    }

    // Link rows: '#' for full occupancy (slots), digit for fluid rates.
    for l in topo.link_ids() {
        let mut row = vec![b'.'; width];
        let mut any = false;
        for comm in &schedule.comms {
            match comm {
                CommPlacement::Slotted { route, times } => {
                    for (hop, &(s, f)) in route.iter().zip(times) {
                        if hop.link != l {
                            continue;
                        }
                        any = true;
                        let (a, b) = (scale(s), scale(f).max(scale(s) + 1));
                        for cell in row.iter_mut().take(b.min(width)).skip(a) {
                            *cell = b'#';
                        }
                    }
                }
                CommPlacement::Fluid { route, flows } => {
                    for (hop, flow) in route.iter().zip(flows) {
                        if hop.link != l {
                            continue;
                        }
                        any = true;
                        for piece in &flow.pieces {
                            let (a, b) = (
                                scale(piece.start),
                                scale(piece.end).max(scale(piece.start) + 1),
                            );
                            // Show the rate decile: '9' = full bandwidth.
                            let d = ((piece.rate * 9.0).round() as u32).min(9);
                            let label = char::from_digit(d, 10).unwrap() as u8;
                            for cell in row.iter_mut().take(b.min(width)).skip(a) {
                                *cell = label;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        if any || !opts.hide_idle_links {
            let _ = writeln!(out, "{l:>5} |{}|", String::from_utf8_lossy(&row));
        }
    }
    let _ = writeln!(
        out,
        "tasks: {} / edges: {} / remote comms: {}",
        dag.task_count(),
        dag.edge_count(),
        schedule
            .comms
            .iter()
            .filter(|c| !matches!(c, CommPlacement::Local))
            .count()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbsa::BbsaScheduler;
    use crate::list::ListScheduler;
    use crate::schedule::Scheduler;
    use es_dag::gen::structured::fork_join;
    use es_net::gen::{self, SpeedDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (TaskGraph, Topology) {
        let dag = fork_join(3, 20.0, 10.0);
        let mut rng = StdRng::seed_from_u64(1);
        let topo = gen::star(2, SpeedDist::Fixed(1.0), SpeedDist::Fixed(1.0), &mut rng);
        (dag, topo)
    }

    #[test]
    fn renders_all_processor_rows() {
        let (dag, topo) = fixture();
        let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        let txt = render(&dag, &topo, &s, &GanttOptions::default());
        assert!(txt.contains("P0"));
        assert!(txt.contains("P1"));
        assert!(txt.contains("makespan"));
    }

    #[test]
    fn busy_links_show_hash_marks() {
        let (dag, topo) = fixture();
        let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        let txt = render(&dag, &topo, &s, &GanttOptions::default());
        assert!(txt.contains('#'), "slotted transfers render as #:\n{txt}");
    }

    #[test]
    fn fluid_links_show_rate_digits() {
        let (dag, topo) = fixture();
        let s = BbsaScheduler::new().schedule(&dag, &topo).unwrap();
        let txt = render(&dag, &topo, &s, &GanttOptions::default());
        // Full-rate pieces render as '9' on link rows.
        let link_lines: Vec<&str> = txt
            .lines()
            .filter(|l| l.trim_start().starts_with('L'))
            .collect();
        assert!(!link_lines.is_empty());
        assert!(link_lines.iter().any(|l| l.contains('9')), "{txt}");
    }

    #[test]
    fn hide_idle_links_prunes_rows() {
        let (dag, topo) = fixture();
        let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        let all = render(
            &dag,
            &topo,
            &s,
            &GanttOptions {
                hide_idle_links: false,
                ..GanttOptions::default()
            },
        );
        let pruned = render(&dag, &topo, &s, &GanttOptions::default());
        let count = |t: &str| {
            t.lines()
                .filter(|l| l.trim_start().starts_with('L'))
                .count()
        };
        assert!(count(&all) >= count(&pruned));
        assert_eq!(count(&all), topo.link_count());
    }

    #[test]
    fn width_is_respected() {
        let (dag, topo) = fixture();
        let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        let txt = render(
            &dag,
            &topo,
            &s,
            &GanttOptions {
                width: 40,
                ..GanttOptions::default()
            },
        );
        for line in txt.lines().filter(|l| l.contains('|')) {
            let bar = line.split('|').nth(1).unwrap();
            assert_eq!(bar.len(), 40, "{line}");
        }
    }
}
