//! Operational execution of slotted schedules.
//!
//! A schedule fixes three kinds of *decisions*: where each task runs,
//! which route each communication takes, and in what order each
//! resource (processor or link) serves its work. This module replays
//! only those decisions under an **as-soon-as-possible event
//! semantics** and re-derives every start/finish time from scratch:
//!
//! * a transfer's hop starts once (a) the previous transfer in the
//!   link's scheduled order has finished, (b) its own previous hop
//!   permits it under link causality (cut-through virtual start, plus
//!   the hop delay), and (c) the source task has finished;
//! * a task starts once the previous task in its processor's scheduled
//!   order has finished and all its in-communications have arrived.
//!
//! Because the scheduled times are one feasible solution of exactly
//! these constraints and the executor computes their least fixed
//! point, **derived times can never exceed the scheduled ones** — a
//! strong differential oracle for the schedulers' time bookkeeping
//! (checked in tests and usable on any valid schedule).
//!
//! Two entry points:
//!
//! * [`execute`] — re-derive times; errors if the decision graph is
//!   cyclic (which would mean the schedule's orderings are inconsistent);
//! * [`compact`] — rebuild the schedule with the derived times: a
//!   classic *schedule compaction* post-pass. For OIHSA this can close
//!   the gaps that optimal-insertion deferrals opened; for BA it is the
//!   identity (asserted in tests).
//!
//! Fluid (BBSA) schedules are not compacted — their bandwidth shares
//! already saturate the resources they were granted; [`execute`]
//! rejects them explicitly.

use crate::schedule::{CommPlacement, Schedule, TaskPlacement};
use es_dag::TaskGraph;
use es_linksched::time::EPS;
use es_net::Topology;
use std::collections::VecDeque;

/// Why execution was refused.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// The schedule contains fluid (BBSA) communications.
    FluidNotSupported,
    /// The decision graph has a cycle — the schedule's per-resource
    /// orderings are mutually inconsistent (cannot happen for schedules
    /// produced by this workspace's schedulers).
    InconsistentOrdering,
    /// Structural mismatch (wrong placement counts, etc.).
    Malformed(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::FluidNotSupported => write!(f, "fluid schedules are not executable"),
            ExecError::InconsistentOrdering => write!(f, "inconsistent resource orderings"),
            ExecError::Malformed(why) => write!(f, "malformed schedule: {why}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Event node: a task or one hop of a communication.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Node {
    Task(usize),
    /// (edge index, hop index)
    Hop(usize, usize),
}

/// Result of executing a schedule.
#[derive(Clone, Debug)]
pub struct Execution {
    /// Derived task times, same indexing as the input schedule.
    pub tasks: Vec<TaskPlacement>,
    /// Derived per-hop times for each slotted edge (empty vec for
    /// local/ideal communications).
    pub hop_times: Vec<Vec<(f64, f64)>>,
    /// Derived makespan.
    pub makespan: f64,
}

/// Replay the schedule's decisions ASAP; see the module docs.
pub fn execute(
    dag: &TaskGraph,
    topo: &Topology,
    schedule: &Schedule,
) -> Result<Execution, ExecError> {
    if schedule.tasks.len() != dag.task_count() || schedule.comms.len() != dag.edge_count() {
        return Err(ExecError::Malformed(format!(
            "{} task / {} comm placements for {} / {}",
            schedule.tasks.len(),
            schedule.comms.len(),
            dag.task_count(),
            dag.edge_count()
        )));
    }
    if schedule
        .comms
        .iter()
        .any(|c| matches!(c, CommPlacement::Fluid { .. }))
    {
        return Err(ExecError::FluidNotSupported);
    }

    // --- Node table: tasks first, then hops.
    let mut hop_base = vec![0usize; dag.edge_count()];
    let mut nodes: Vec<Node> = (0..dag.task_count()).map(Node::Task).collect();
    for e in dag.edge_ids() {
        hop_base[e.index()] = nodes.len();
        if let CommPlacement::Slotted { route, .. } = &schedule.comms[e.index()] {
            for k in 0..route.len() {
                nodes.push(Node::Hop(e.index(), k));
            }
        }
    }
    let n = nodes.len();
    let node_of_task = |t: usize| t;
    let node_of_hop = |e: usize, k: usize| hop_base[e] + k;

    // --- Dependency edges (dep -> node), built from the decisions.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];

    // Processor order: sort tasks per processor by scheduled start.
    let mut per_proc: Vec<Vec<usize>> = vec![Vec::new(); topo.proc_count()];
    for (i, t) in schedule.tasks.iter().enumerate() {
        per_proc[t.proc.index()].push(i);
    }
    for list in &mut per_proc {
        list.sort_by(|&a, &b| {
            schedule.tasks[a]
                .start
                .partial_cmp(&schedule.tasks[b].start)
                .expect("finite")
        });
        for w in list.windows(2) {
            preds[node_of_task(w[1])].push(node_of_task(w[0]));
        }
    }

    // Link order: gather (edge, hop, start) per link, sort by start.
    let mut per_link: Vec<Vec<(usize, usize, f64)>> = vec![Vec::new(); topo.link_count()];
    for e in dag.edge_ids() {
        if let CommPlacement::Slotted { route, times } = &schedule.comms[e.index()] {
            for (k, (hop, &(s, _))) in route.iter().zip(times).enumerate() {
                per_link[hop.link.index()].push((e.index(), k, s));
            }
        }
    }
    for list in &mut per_link {
        list.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"));
        for w in list.windows(2) {
            preds[node_of_hop(w[1].0, w[1].1)].push(node_of_hop(w[0].0, w[0].1));
        }
    }

    // Intrinsic dependencies.
    for e in dag.edge_ids() {
        let edge = dag.edge(e);
        match &schedule.comms[e.index()] {
            CommPlacement::Slotted { route, .. } => {
                // First hop needs the source task; each hop needs its
                // predecessor hop; the destination task needs the last.
                preds[node_of_hop(e.index(), 0)].push(node_of_task(edge.src.index()));
                for k in 1..route.len() {
                    preds[node_of_hop(e.index(), k)].push(node_of_hop(e.index(), k - 1));
                }
                preds[node_of_task(edge.dst.index())].push(node_of_hop(e.index(), route.len() - 1));
            }
            CommPlacement::Local | CommPlacement::Ideal { .. } => {
                preds[node_of_task(edge.dst.index())].push(node_of_task(edge.src.index()));
            }
            CommPlacement::Fluid { .. } => unreachable!("rejected above"),
        }
    }

    // --- Kahn over the decision graph, computing ASAP times.
    let mut indegree = vec![0usize; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, ps) in preds.iter().enumerate() {
        indegree[v] = ps.len();
        for &p in ps {
            succs[p].push(v);
        }
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
    let mut times: Vec<(f64, f64)> = vec![(0.0, 0.0); n];
    let mut done = 0usize;

    // The ready time each node may start at, accumulated from preds.
    while let Some(v) = queue.pop_front() {
        done += 1;
        let (start, finish) = compute_node_times(dag, topo, schedule, &nodes, v, &preds[v], &times);
        times[v] = (start, finish);
        for &s in &succs[v] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                queue.push_back(s);
            }
        }
    }
    if done != n {
        return Err(ExecError::InconsistentOrdering);
    }

    // --- Assemble.
    let tasks: Vec<TaskPlacement> = schedule
        .tasks
        .iter()
        .enumerate()
        .map(|(i, t)| TaskPlacement {
            proc: t.proc,
            start: times[node_of_task(i)].0,
            finish: times[node_of_task(i)].1,
        })
        .collect();
    let hop_times: Vec<Vec<(f64, f64)>> = dag
        .edge_ids()
        .map(|e| match &schedule.comms[e.index()] {
            CommPlacement::Slotted { route, .. } => (0..route.len())
                .map(|k| times[node_of_hop(e.index(), k)])
                .collect(),
            _ => Vec::new(),
        })
        .collect();
    let makespan = tasks.iter().map(|t| t.finish).fold(0.0, f64::max);
    Ok(Execution {
        tasks,
        hop_times,
        makespan,
    })
}

/// ASAP times of one node given its (already computed) dependencies.
fn compute_node_times(
    dag: &TaskGraph,
    topo: &Topology,
    schedule: &Schedule,
    nodes: &[Node],
    v: usize,
    preds: &[usize],
    times: &[(f64, f64)],
) -> (f64, f64) {
    match nodes[v] {
        Node::Task(t) => {
            // Earliest start: after every dependency. A predecessor
            // that is a hop contributes its finish (arrival); a
            // predecessor task contributes its finish (processor order
            // or same-processor precedence); ideal comms add their
            // modelled delay.
            let mut ready = 0.0_f64;
            for &p in preds {
                ready = ready.max(times[p].1);
            }
            // Ideal comm delays are not captured by order edges alone.
            for &e in dag.in_edges(es_dag::TaskId(t as u32)) {
                if let CommPlacement::Ideal { delay, .. } = &schedule.comms[e.index()] {
                    let src = dag.edge(e).src;
                    ready = ready.max(times[src.index()].1 + delay);
                }
            }
            let speed = topo.proc_speed(schedule.tasks[t].proc);
            let w = dag.weight(es_dag::TaskId(t as u32));
            (ready, ready + w / speed)
        }
        Node::Hop(e, k) => {
            let CommPlacement::Slotted { route, .. } = &schedule.comms[e] else {
                unreachable!("hops exist only for slotted comms")
            };
            let cost = dag.cost(es_dag::EdgeId(e as u32));
            let int = cost / topo.link_speed(route[k].link);
            let delay = if k == 0 { 0.0 } else { topo.hop_delay() };
            let mut bound = 0.0_f64;
            for &p in preds {
                bound = bound.max(match nodes[p] {
                    // Source task or queue predecessor on this link:
                    // must have finished.
                    Node::Task(_) => times[p].1,
                    Node::Hop(pe, pk) if pe == e && pk + 1 == k => {
                        // Own previous hop: cut-through virtual start.
                        (times[p].0 + delay).max(times[p].1 + delay - int)
                    }
                    // Queue predecessor (other comm on same link).
                    Node::Hop(_, _) => times[p].1,
                });
            }
            (bound, bound + int)
        }
    }
}

/// Schedule compaction: execute and rebuild the schedule with the
/// derived (never-later) times.
pub fn compact(
    dag: &TaskGraph,
    topo: &Topology,
    schedule: &Schedule,
) -> Result<Schedule, ExecError> {
    let exec = execute(dag, topo, schedule)?;
    let comms = dag
        .edge_ids()
        .map(|e| match &schedule.comms[e.index()] {
            CommPlacement::Slotted { route, .. } => CommPlacement::Slotted {
                route: route.clone(),
                times: exec.hop_times[e.index()].clone(),
            },
            CommPlacement::Ideal { delay, .. } => {
                let src = dag.edge(e).src;
                CommPlacement::Ideal {
                    delay: *delay,
                    arrival: exec.tasks[src.index()].finish + delay,
                }
            }
            other => other.clone(),
        })
        .collect();
    Ok(Schedule {
        algorithm: schedule.algorithm,
        tasks: exec.tasks.clone(),
        comms,
        makespan: exec.makespan,
    })
}

/// Differential check used by tests: every derived time must be no
/// later than its scheduled counterpart (see module docs).
pub fn check_dominates(schedule: &Schedule, exec: &Execution) -> Result<(), String> {
    for (i, (s, d)) in schedule.tasks.iter().zip(&exec.tasks).enumerate() {
        if d.start > s.start + EPS || d.finish > s.finish + EPS {
            return Err(format!(
                "task n{i}: derived [{}, {}) later than scheduled [{}, {})",
                d.start, d.finish, s.start, s.finish
            ));
        }
    }
    if exec.makespan > schedule.makespan + EPS {
        return Err(format!(
            "derived makespan {} exceeds scheduled {}",
            exec.makespan, schedule.makespan
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbsa::BbsaScheduler;
    use crate::list::ListScheduler;
    use crate::schedule::Scheduler;
    use crate::validate::validate;
    use es_dag::gen::structured::{fork_join, gauss_elim, stencil_1d};
    use es_net::gen::{self, SpeedDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star(n: usize) -> Topology {
        gen::star(
            n,
            SpeedDist::Fixed(1.0),
            SpeedDist::Fixed(1.0),
            &mut StdRng::seed_from_u64(1),
        )
    }

    #[test]
    fn execution_reproduces_ba_times_exactly() {
        // BA uses first-fit/append ordering: greedy replay of the same
        // orders recovers the identical times.
        let dag = fork_join(5, 20.0, 12.0);
        let topo = star(3);
        let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        let exec = execute(&dag, &topo, &s).unwrap();
        for (a, b) in s.tasks.iter().zip(&exec.tasks) {
            assert!((a.start - b.start).abs() < 1e-9, "{a:?} vs {b:?}");
            assert!((a.finish - b.finish).abs() < 1e-9);
        }
        assert!((s.makespan - exec.makespan).abs() < 1e-9);
    }

    #[test]
    fn execution_never_later_than_schedule() {
        let mut rng = StdRng::seed_from_u64(9);
        for seed in 0..6u64 {
            let _ = seed;
            let dag = gauss_elim(5, 10.0, 25.0);
            let topo = gen::random_switched_wan(&gen::WanConfig::heterogeneous(8), &mut rng);
            for sched in [
                ListScheduler::ba(),
                ListScheduler::ba_static(),
                ListScheduler::oihsa(),
                ListScheduler::oihsa_probing(),
            ] {
                let s = sched.schedule(&dag, &topo).unwrap();
                let exec = execute(&dag, &topo, &s).unwrap();
                check_dominates(&s, &exec).unwrap_or_else(|e| panic!("{}: {e}", sched.name()));
            }
        }
    }

    #[test]
    fn compaction_yields_valid_schedule() {
        let dag = stencil_1d(4, 4, 8.0, 15.0);
        let mut rng = StdRng::seed_from_u64(12);
        let topo = gen::random_switched_wan(&gen::WanConfig::homogeneous(8), &mut rng);
        for sched in [ListScheduler::oihsa(), ListScheduler::ba_static()] {
            let s = sched.schedule(&dag, &topo).unwrap();
            let c = compact(&dag, &topo, &s).unwrap();
            if let Err(errs) = validate(&dag, &topo, &c) {
                panic!("{}: compacted schedule invalid: {errs:#?}", sched.name());
            }
            assert!(c.makespan <= s.makespan + 1e-9);
        }
    }

    #[test]
    fn compaction_is_idempotent() {
        let dag = fork_join(4, 10.0, 30.0);
        let topo = star(3);
        let s = ListScheduler::oihsa().schedule(&dag, &topo).unwrap();
        let c1 = compact(&dag, &topo, &s).unwrap();
        let c2 = compact(&dag, &topo, &c1).unwrap();
        assert!((c1.makespan - c2.makespan).abs() < 1e-9);
        for (a, b) in c1.tasks.iter().zip(&c2.tasks) {
            assert!((a.start - b.start).abs() < 1e-9);
        }
    }

    #[test]
    fn fluid_schedules_are_rejected() {
        let dag = fork_join(3, 10.0, 10.0);
        let topo = star(2);
        let s = BbsaScheduler::new().schedule(&dag, &topo).unwrap();
        assert_eq!(
            execute(&dag, &topo, &s).unwrap_err(),
            ExecError::FluidNotSupported
        );
    }

    #[test]
    fn ideal_schedules_execute() {
        let dag = fork_join(3, 10.0, 10.0);
        let topo = star(3);
        let s = crate::ideal::IdealScheduler::new()
            .schedule(&dag, &topo)
            .unwrap();
        let exec = execute(&dag, &topo, &s).unwrap();
        check_dominates(&s, &exec).unwrap();
    }
}
