//! Operational execution of slotted schedules, with fault injection.
//!
//! A schedule fixes three kinds of *decisions*: where each task runs,
//! which route each communication takes, and in what order each
//! resource (processor or link) serves its work. This module replays
//! only those decisions under an **as-soon-as-possible event
//! semantics** and re-derives every start/finish time from scratch:
//!
//! * a transfer's hop starts once (a) the previous transfer in the
//!   link's scheduled order has finished, (b) its own previous hop
//!   permits it under link causality (cut-through virtual start, plus
//!   the hop delay), and (c) the source task has finished;
//! * a task starts once the previous task in its processor's scheduled
//!   order has finished and all its in-communications have arrived.
//!
//! Because the scheduled times are one feasible solution of exactly
//! these constraints and the executor computes their least fixed
//! point, **derived times can never exceed the scheduled ones** — a
//! strong differential oracle for the schedulers' time bookkeeping
//! (checked in tests and usable on any valid schedule).
//!
//! Entry points:
//!
//! * [`execute`] — re-derive times; errors if the decision graph is
//!   cyclic (which would mean the schedule's orderings are inconsistent);
//! * [`execute_with`] — the same replay under a deterministic
//!   [`FaultPlan`]: per-task weight jitter, per-link speed degradation,
//!   transient link outages (busy intervals injected into the replay),
//!   and hard fail-stop processor/link failures. Returns a
//!   [`PerturbedExecution`] with realized times, per-task slack, and
//!   the decisions the hard failures made infeasible. Under
//!   [`FaultPlan::none`] it reproduces [`execute`] bit for bit (every
//!   identity factor is an exact IEEE multiplication by 1.0 and the
//!   outage scan is a no-op).
//! * [`compact`] — rebuild the schedule with the derived times: a
//!   classic *schedule compaction* post-pass. For OIHSA this can close
//!   the gaps that optimal-insertion deferrals opened; for BA it is the
//!   identity (asserted in tests).
//!
//! Fluid (BBSA) schedules are not compacted — their bandwidth shares
//! already saturate the resources they were granted; [`execute`]
//! rejects them explicitly.

use crate::diag::{Code, Diagnostic, Report, Span};
use crate::schedule::{CommPlacement, Schedule, TaskPlacement};
use es_dag::TaskGraph;
use es_linksched::time::EPS;
use es_net::{LinkId, ProcId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Why execution was refused.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// The schedule contains fluid (BBSA) communications.
    FluidNotSupported,
    /// The decision graph has a cycle — the schedule's per-resource
    /// orderings are mutually inconsistent (cannot happen for schedules
    /// produced by this workspace's schedulers).
    InconsistentOrdering,
    /// Structural mismatch (wrong placement counts, etc.).
    Malformed(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::FluidNotSupported => write!(f, "fluid schedules are not executable"),
            ExecError::InconsistentOrdering => write!(f, "inconsistent resource orderings"),
            ExecError::Malformed(why) => write!(f, "malformed schedule: {why}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A deterministic fault scenario for [`execute_with`] and
/// [`crate::repair::repair`].
///
/// Every vector is either **empty** (no fault of that class — the
/// accessors then return exact identity values) or sized to the
/// instance. Fail times use the schedule's own time axis and
/// `f64::INFINITY` encodes "never fails", so a plan never needs
/// `Option` per resource.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Multiplicative factor on each task's weight (`> 1` slows the
    /// task down). Empty = every factor is exactly 1.
    pub task_weight_factor: Vec<f64>,
    /// Multiplicative factor on each link's speed (`< 1` degrades
    /// bandwidth). Empty = every factor is exactly 1.
    pub link_speed_factor: Vec<f64>,
    /// Transient outages per link: sorted, disjoint `[start, end)`
    /// intervals during which the link carries no traffic.
    pub link_outages: Vec<Vec<(f64, f64)>>,
    /// Hard fail-stop time per processor (`INFINITY` = never).
    pub proc_fail: Vec<f64>,
    /// Hard fail-stop time per link (`INFINITY` = never).
    pub link_fail: Vec<f64>,
}

impl FaultPlan {
    /// The empty plan: [`execute_with`] reproduces [`execute`] bitwise
    /// and [`crate::repair::repair`] is the identity.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan carries no faults of any class.
    pub fn is_none(&self) -> bool {
        self.task_weight_factor.is_empty()
            && self.link_speed_factor.is_empty()
            && self.link_outages.iter().all(Vec::is_empty)
            && !self.has_hard_failures()
    }

    /// True when any processor or link has a finite fail time.
    pub fn has_hard_failures(&self) -> bool {
        self.proc_fail
            .iter()
            .chain(&self.link_fail)
            .any(|t| t.is_finite())
    }

    /// Weight factor of one task (1.0 when unperturbed).
    #[inline]
    pub fn weight_factor(&self, task: usize) -> f64 {
        self.task_weight_factor.get(task).copied().unwrap_or(1.0)
    }

    /// Speed factor of one link (1.0 when unperturbed).
    #[inline]
    pub fn link_factor(&self, link: LinkId) -> f64 {
        self.link_speed_factor
            .get(link.index())
            .copied()
            .unwrap_or(1.0)
    }

    /// Outage intervals of one link (empty when none).
    #[inline]
    pub fn outages(&self, link: LinkId) -> &[(f64, f64)] {
        self.link_outages
            .get(link.index())
            .map_or(&[], Vec::as_slice)
    }

    /// Fail-stop time of one processor (`INFINITY` = never).
    #[inline]
    pub fn proc_fail_time(&self, proc: ProcId) -> f64 {
        self.proc_fail
            .get(proc.index())
            .copied()
            .unwrap_or(f64::INFINITY)
    }

    /// Fail-stop time of one link (`INFINITY` = never).
    #[inline]
    pub fn link_fail_time(&self, link: LinkId) -> f64 {
        self.link_fail
            .get(link.index())
            .copied()
            .unwrap_or(f64::INFINITY)
    }

    /// A plan whose only fault is `proc` fail-stopping at time `at`.
    pub fn kill_processor(topo: &Topology, proc: ProcId, at: f64) -> Self {
        let mut proc_fail = vec![f64::INFINITY; topo.proc_count()];
        proc_fail[proc.index()] = at;
        Self {
            proc_fail,
            ..Self::default()
        }
    }

    /// A plan whose only fault is `link` fail-stopping at time `at`.
    pub fn kill_link(topo: &Topology, link: LinkId, at: f64) -> Self {
        let mut link_fail = vec![f64::INFINITY; topo.link_count()];
        link_fail[link.index()] = at;
        Self {
            link_fail,
            ..Self::default()
        }
    }

    /// Draw a deterministic plan from `spec` and `seed`.
    ///
    /// Soft faults scale with `spec.intensity`: task weights inflate by
    /// up to `intensity` (uniform), link speeds degrade by up to the
    /// same factor, and each link suffers at most one outage (with
    /// probability `intensity / 2`) placed inside `spec.horizon`. Hard
    /// failures draw one victim resource each, failing between 25% and
    /// 75% of the horizon; a processor kill needs at least two
    /// processors (killing the only one leaves nothing to repair onto).
    pub fn seeded(dag: &TaskGraph, topo: &Topology, spec: &FaultSpec, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let intensity = spec.intensity.clamp(0.0, 1.0);
        let horizon = spec.horizon.max(1.0);
        let mut plan = FaultPlan::none();
        if intensity > 0.0 {
            plan.task_weight_factor = (0..dag.task_count())
                .map(|_| 1.0 + intensity * rng.random_range(0.0..1.0))
                .collect();
            plan.link_speed_factor = (0..topo.link_count())
                .map(|_| 1.0 / (1.0 + intensity * rng.random_range(0.0..1.0)))
                .collect();
            plan.link_outages = (0..topo.link_count())
                .map(|_| {
                    if rng.random_bool(0.5 * intensity) {
                        let at = rng.random_range(0.0..horizon);
                        let len = rng.random_range(0.0..0.25 * intensity * horizon);
                        vec![(at, at + len)]
                    } else {
                        Vec::new()
                    }
                })
                .collect();
        }
        if spec.kill_proc && topo.proc_count() > 1 {
            let victim = rng.random_range(0..topo.proc_count());
            let at = horizon * rng.random_range(0.25..0.75);
            plan.proc_fail = vec![f64::INFINITY; topo.proc_count()];
            plan.proc_fail[victim] = at;
        }
        if spec.kill_link && topo.link_count() > 0 {
            let victim = rng.random_range(0..topo.link_count());
            let at = horizon * rng.random_range(0.25..0.75);
            plan.link_fail = vec![f64::INFINITY; topo.link_count()];
            plan.link_fail[victim] = at;
        }
        plan
    }
}

/// Knobs for [`FaultPlan::seeded`]: one scalar intensity scales every
/// soft-fault class; hard failures are opt-in per resource kind.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// Soft-fault intensity in `[0, 1]` (clamped): scales weight
    /// jitter, link degradation, and outage probability/length.
    pub intensity: f64,
    /// Reference duration (typically the scheduled makespan): outages
    /// and failure times are drawn relative to it.
    pub horizon: f64,
    /// Draw one processor that hard-fails mid-horizon.
    pub kill_proc: bool,
    /// Draw one link that hard-fails mid-horizon.
    pub kill_link: bool,
}

impl FaultSpec {
    /// Soft faults only at the given intensity (no hard failures).
    pub fn soft(intensity: f64, horizon: f64) -> Self {
        Self {
            intensity,
            horizon,
            kill_proc: false,
            kill_link: false,
        }
    }
}

/// Event node: a task or one hop of a communication.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Node {
    Task(usize),
    /// (edge index, hop index)
    Hop(usize, usize),
}

/// Result of executing a schedule.
#[derive(Clone, Debug)]
pub struct Execution {
    /// Derived task times, same indexing as the input schedule.
    pub tasks: Vec<TaskPlacement>,
    /// Derived per-hop times for each slotted edge (empty vec for
    /// local/ideal communications).
    pub hop_times: Vec<Vec<(f64, f64)>>,
    /// Derived makespan.
    pub makespan: f64,
}

/// One scheduled decision that a hard failure made impossible.
#[derive(Clone, Debug, PartialEq)]
pub enum Infeasibility {
    /// A task cannot complete before its processor fail-stops.
    Task {
        /// Task index.
        task: usize,
        /// The processor that fails.
        proc: ProcId,
        /// When it fails.
        fail_at: f64,
    },
    /// A hop cannot complete before its link fail-stops.
    Hop {
        /// Edge index of the communication.
        edge: usize,
        /// 0-based hop position along its route.
        hop: usize,
        /// The link that fails.
        link: LinkId,
        /// When it fails.
        fail_at: f64,
    },
    /// A task transitively depends on an infeasible decision.
    DownstreamTask {
        /// Task index.
        task: usize,
    },
    /// A hop transitively depends on an infeasible decision.
    DownstreamHop {
        /// Edge index of the communication.
        edge: usize,
        /// 0-based hop position along its route.
        hop: usize,
    },
}

/// Result of [`execute_with`]: the realized (perturbed) execution plus
/// the fault analysis.
///
/// Realized times for infeasible decisions are "as if the hard failure
/// had not struck" — the replay keeps deriving them so slack and
/// degradation stay well-defined; [`PerturbedExecution::is_feasible`]
/// says whether the makespan is actually achievable.
#[derive(Clone, Debug)]
pub struct PerturbedExecution {
    /// Realized times under the fault plan.
    pub execution: Execution,
    /// Per-task slack: scheduled finish minus realized finish. Negative
    /// slack means the perturbation made the task late; without faults
    /// it is non-negative (the domination property of the replay).
    pub slack: Vec<f64>,
    /// Decisions made impossible by hard failures, in node order
    /// (tasks by index, then hops by edge and position).
    pub infeasible: Vec<Infeasibility>,
}

impl PerturbedExecution {
    /// True when no scheduled decision was hit by a hard failure.
    pub fn is_feasible(&self) -> bool {
        self.infeasible.is_empty()
    }

    /// Realized makespan (shortcut for `execution.makespan`).
    pub fn realized_makespan(&self) -> f64 {
        self.execution.makespan
    }

    /// Render the infeasibilities as ES-E009 diagnostics: direct hits
    /// are errors, transitively affected decisions are warnings.
    pub fn to_report(&self, subject: impl Into<String>) -> Report {
        let mut report = Report::new(subject);
        for inf in &self.infeasible {
            report.push(match *inf {
                Infeasibility::Task {
                    task,
                    proc,
                    fail_at,
                } => Diagnostic::error(
                    Code::FaultInfeasible,
                    Span::Task(task as u32),
                    format!("task cannot finish before its processor fails at {fail_at}"),
                )
                .with("proc", proc.index())
                .with("fail_at", fail_at),
                Infeasibility::Hop {
                    edge,
                    hop,
                    link,
                    fail_at,
                } => Diagnostic::error(
                    Code::FaultInfeasible,
                    Span::Hop {
                        edge: edge as u32,
                        hop: hop as u32,
                    },
                    format!("hop cannot finish before its link fails at {fail_at}"),
                )
                .with("link", link.index())
                .with("fail_at", fail_at),
                Infeasibility::DownstreamTask { task } => Diagnostic::warning(
                    Code::FaultInfeasible,
                    Span::Task(task as u32),
                    "task depends on an infeasible decision",
                ),
                Infeasibility::DownstreamHop { edge, hop } => Diagnostic::warning(
                    Code::FaultInfeasible,
                    Span::Hop {
                        edge: edge as u32,
                        hop: hop as u32,
                    },
                    "hop depends on an infeasible decision",
                ),
            });
        }
        report
    }
}

/// Internal replay state shared by [`execute`] and [`execute_with`].
struct Replay {
    nodes: Vec<Node>,
    hop_base: Vec<usize>,
    /// Topological order in which node times were computed.
    order: Vec<usize>,
    times: Vec<(f64, f64)>,
}

/// Replay the schedule's decisions ASAP; see the module docs.
pub fn execute(
    dag: &TaskGraph,
    topo: &Topology,
    schedule: &Schedule,
) -> Result<Execution, ExecError> {
    let replay = replay(dag, topo, schedule, &FaultPlan::none())?;
    Ok(assemble(dag, schedule, &replay))
}

/// Replay the schedule's decisions ASAP under a [`FaultPlan`]; see the
/// module docs. With [`FaultPlan::none`] this reproduces [`execute`]
/// bit for bit.
pub fn execute_with(
    dag: &TaskGraph,
    topo: &Topology,
    schedule: &Schedule,
    plan: &FaultPlan,
) -> Result<PerturbedExecution, ExecError> {
    let replay = replay(dag, topo, schedule, plan)?;
    let execution = assemble(dag, schedule, &replay);
    let slack = schedule
        .tasks
        .iter()
        .zip(&execution.tasks)
        .map(|(s, d)| s.finish - d.finish)
        .collect();
    let infeasible = find_infeasible(dag, schedule, plan, &replay);
    Ok(PerturbedExecution {
        execution,
        slack,
        infeasible,
    })
}

/// Build the decision graph and compute every node's ASAP times.
fn replay(
    dag: &TaskGraph,
    topo: &Topology,
    schedule: &Schedule,
    plan: &FaultPlan,
) -> Result<Replay, ExecError> {
    if schedule.tasks.len() != dag.task_count() || schedule.comms.len() != dag.edge_count() {
        return Err(ExecError::Malformed(format!(
            "{} task / {} comm placements for {} / {}",
            schedule.tasks.len(),
            schedule.comms.len(),
            dag.task_count(),
            dag.edge_count()
        )));
    }
    if schedule
        .comms
        .iter()
        .any(|c| matches!(c, CommPlacement::Fluid { .. }))
    {
        return Err(ExecError::FluidNotSupported);
    }

    // --- Node table: tasks first, then hops.
    let mut hop_base = vec![0usize; dag.edge_count()];
    let mut nodes: Vec<Node> = (0..dag.task_count()).map(Node::Task).collect();
    for e in dag.edge_ids() {
        hop_base[e.index()] = nodes.len();
        if let CommPlacement::Slotted { route, .. } = &schedule.comms[e.index()] {
            for k in 0..route.len() {
                nodes.push(Node::Hop(e.index(), k));
            }
        }
    }
    let n = nodes.len();
    let node_of_task = |t: usize| t;
    let node_of_hop = |e: usize, k: usize| hop_base[e] + k;

    // --- Dependency edges (dep -> node), built from the decisions.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];

    // Processor order: sort tasks per processor by scheduled start.
    // total_cmp, not partial_cmp: a NaN start in a malformed import
    // must surface as an audit diagnostic downstream, not a panic here.
    let mut per_proc: Vec<Vec<usize>> = vec![Vec::new(); topo.proc_count()];
    for (i, t) in schedule.tasks.iter().enumerate() {
        per_proc[t.proc.index()].push(i);
    }
    for list in &mut per_proc {
        list.sort_by(|&a, &b| schedule.tasks[a].start.total_cmp(&schedule.tasks[b].start));
        for w in list.windows(2) {
            preds[node_of_task(w[1])].push(node_of_task(w[0]));
        }
    }

    // Link order: gather (edge, hop, start) per link, sort by start.
    let mut per_link: Vec<Vec<(usize, usize, f64)>> = vec![Vec::new(); topo.link_count()];
    for e in dag.edge_ids() {
        if let CommPlacement::Slotted { route, times } = &schedule.comms[e.index()] {
            for (k, (hop, &(s, _))) in route.iter().zip(times).enumerate() {
                per_link[hop.link.index()].push((e.index(), k, s));
            }
        }
    }
    for list in &mut per_link {
        list.sort_by(|a, b| a.2.total_cmp(&b.2));
        for w in list.windows(2) {
            preds[node_of_hop(w[1].0, w[1].1)].push(node_of_hop(w[0].0, w[0].1));
        }
    }

    // Intrinsic dependencies.
    for e in dag.edge_ids() {
        let edge = dag.edge(e);
        match &schedule.comms[e.index()] {
            CommPlacement::Slotted { route, .. } => {
                // First hop needs the source task; each hop needs its
                // predecessor hop; the destination task needs the last.
                preds[node_of_hop(e.index(), 0)].push(node_of_task(edge.src.index()));
                for k in 1..route.len() {
                    preds[node_of_hop(e.index(), k)].push(node_of_hop(e.index(), k - 1));
                }
                preds[node_of_task(edge.dst.index())].push(node_of_hop(e.index(), route.len() - 1));
            }
            CommPlacement::Local | CommPlacement::Ideal { .. } => {
                preds[node_of_task(edge.dst.index())].push(node_of_task(edge.src.index()));
            }
            CommPlacement::Fluid { .. } => unreachable!("rejected above"),
        }
    }

    // --- Kahn over the decision graph, computing ASAP times.
    let mut indegree = vec![0usize; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, ps) in preds.iter().enumerate() {
        indegree[v] = ps.len();
        for &p in ps {
            succs[p].push(v);
        }
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
    let mut times: Vec<(f64, f64)> = vec![(0.0, 0.0); n];
    let mut order: Vec<usize> = Vec::with_capacity(n);

    // The ready time each node may start at, accumulated from preds.
    while let Some(v) = queue.pop_front() {
        order.push(v);
        let (start, finish) =
            compute_node_times(dag, topo, schedule, plan, &nodes, v, &preds[v], &times);
        times[v] = (start, finish);
        for &s in &succs[v] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                queue.push_back(s);
            }
        }
    }
    if order.len() != n {
        return Err(ExecError::InconsistentOrdering);
    }
    Ok(Replay {
        nodes,
        hop_base,
        order,
        times,
    })
}

/// Assemble an [`Execution`] from computed replay times.
fn assemble(dag: &TaskGraph, schedule: &Schedule, replay: &Replay) -> Execution {
    let tasks: Vec<TaskPlacement> = schedule
        .tasks
        .iter()
        .enumerate()
        .map(|(i, t)| TaskPlacement {
            proc: t.proc,
            start: replay.times[i].0,
            finish: replay.times[i].1,
        })
        .collect();
    let hop_times: Vec<Vec<(f64, f64)>> = dag
        .edge_ids()
        .map(|e| match &schedule.comms[e.index()] {
            CommPlacement::Slotted { route, .. } => (0..route.len())
                .map(|k| replay.times[replay.hop_base[e.index()] + k])
                .collect(),
            _ => Vec::new(),
        })
        .collect();
    let makespan = tasks.iter().map(|t| t.finish).fold(0.0, f64::max);
    Execution {
        tasks,
        hop_times,
        makespan,
    }
}

/// Which decisions the plan's hard failures make impossible: direct
/// hits (realized interval not strictly before the resource's fail
/// time) plus everything data-dependent on them.
fn find_infeasible(
    dag: &TaskGraph,
    schedule: &Schedule,
    plan: &FaultPlan,
    replay: &Replay,
) -> Vec<Infeasibility> {
    if !plan.has_hard_failures() {
        return Vec::new();
    }
    const OK: u8 = 0;
    const DOWNSTREAM: u8 = 1;
    const DIRECT: u8 = 2;
    let mut status = vec![OK; replay.nodes.len()];
    for (v, node) in replay.nodes.iter().enumerate() {
        let finish = replay.times[v].1;
        match *node {
            Node::Task(t) => {
                if finish > plan.proc_fail_time(schedule.tasks[t].proc) + EPS {
                    status[v] = DIRECT;
                }
            }
            Node::Hop(e, k) => {
                let CommPlacement::Slotted { route, .. } = &schedule.comms[e] else {
                    unreachable!("hops exist only for slotted comms")
                };
                if finish > plan.link_fail_time(route[k].link) + EPS {
                    status[v] = DIRECT;
                }
            }
        }
    }
    // Propagate along data dependencies (not queue-order edges: a
    // queue successor could legitimately run without its predecessor)
    // in the replay's topological order.
    for &v in &replay.order {
        if status[v] != OK {
            continue;
        }
        let tainted =
            match replay.nodes[v] {
                Node::Task(t) => dag.in_edges(es_dag::TaskId(t as u32)).iter().any(|&e| {
                    match &schedule.comms[e.index()] {
                        CommPlacement::Slotted { route, .. } => {
                            status[replay.hop_base[e.index()] + route.len() - 1] != OK
                        }
                        _ => status[dag.edge(e).src.index()] != OK,
                    }
                }),
                Node::Hop(e, 0) => status[dag.edge(es_dag::EdgeId(e as u32)).src.index()] != OK,
                Node::Hop(e, k) => status[replay.hop_base[e] + k - 1] != OK,
            };
        if tainted {
            status[v] = DOWNSTREAM;
        }
    }
    let mut out = Vec::new();
    for (v, node) in replay.nodes.iter().enumerate() {
        match (*node, status[v]) {
            (_, OK) => {}
            (Node::Task(task), DIRECT) => {
                let proc = schedule.tasks[task].proc;
                out.push(Infeasibility::Task {
                    task,
                    proc,
                    fail_at: plan.proc_fail_time(proc),
                });
            }
            (Node::Hop(edge, hop), DIRECT) => {
                let CommPlacement::Slotted { route, .. } = &schedule.comms[edge] else {
                    unreachable!("hops exist only for slotted comms")
                };
                let link = route[hop].link;
                out.push(Infeasibility::Hop {
                    edge,
                    hop,
                    link,
                    fail_at: plan.link_fail_time(link),
                });
            }
            (Node::Task(task), _) => out.push(Infeasibility::DownstreamTask { task }),
            (Node::Hop(edge, hop), _) => out.push(Infeasibility::DownstreamHop { edge, hop }),
        }
    }
    out
}

/// ASAP times of one node given its (already computed) dependencies.
#[allow(clippy::too_many_arguments)]
fn compute_node_times(
    dag: &TaskGraph,
    topo: &Topology,
    schedule: &Schedule,
    plan: &FaultPlan,
    nodes: &[Node],
    v: usize,
    preds: &[usize],
    times: &[(f64, f64)],
) -> (f64, f64) {
    match nodes[v] {
        Node::Task(t) => {
            // Earliest start: after every dependency. A predecessor
            // that is a hop contributes its finish (arrival); a
            // predecessor task contributes its finish (processor order
            // or same-processor precedence); ideal comms add their
            // modelled delay.
            let mut ready = 0.0_f64;
            for &p in preds {
                ready = ready.max(times[p].1);
            }
            // Ideal comm delays are not captured by order edges alone.
            for &e in dag.in_edges(es_dag::TaskId(t as u32)) {
                if let CommPlacement::Ideal { delay, .. } = &schedule.comms[e.index()] {
                    let src = dag.edge(e).src;
                    ready = ready.max(times[src.index()].1 + delay);
                }
            }
            let speed = topo.proc_speed(schedule.tasks[t].proc);
            let w = dag.weight(es_dag::TaskId(t as u32)) * plan.weight_factor(t);
            (ready, ready + w / speed)
        }
        Node::Hop(e, k) => {
            let CommPlacement::Slotted { route, .. } = &schedule.comms[e] else {
                unreachable!("hops exist only for slotted comms")
            };
            let link = route[k].link;
            let cost = dag.cost(es_dag::EdgeId(e as u32));
            let int = cost / (topo.link_speed(link) * plan.link_factor(link));
            let delay = if k == 0 { 0.0 } else { topo.hop_delay() };
            let mut bound = 0.0_f64;
            for &p in preds {
                bound = bound.max(match nodes[p] {
                    // Source task or queue predecessor on this link:
                    // must have finished.
                    Node::Task(_) => times[p].1,
                    Node::Hop(pe, pk) if pe == e && pk + 1 == k => {
                        // Own previous hop: cut-through virtual start.
                        (times[p].0 + delay).max(times[p].1 + delay - int)
                    }
                    // Queue predecessor (other comm on same link).
                    Node::Hop(_, _) => times[p].1,
                });
            }
            let start = next_clear_of_outages(plan.outages(link), bound, int);
            (start, start + int)
        }
    }
}

/// Earliest `t >= bound` such that `[t, t + int)` overlaps no outage
/// interval. Intervals are sorted by start and disjoint, so one
/// forward pass suffices (skipping past an interval can only collide
/// with later ones). Empty slice: returns `bound` unchanged, which is
/// what keeps the zero-fault replay bitwise identical to [`execute`].
fn next_clear_of_outages(outages: &[(f64, f64)], bound: f64, int: f64) -> f64 {
    let mut start = bound;
    for &(o_start, o_end) in outages {
        if start + int > o_start + EPS && start < o_end - EPS {
            start = o_end;
        }
    }
    start
}

/// Schedule compaction: execute and rebuild the schedule with the
/// derived (never-later) times.
pub fn compact(
    dag: &TaskGraph,
    topo: &Topology,
    schedule: &Schedule,
) -> Result<Schedule, ExecError> {
    let exec = execute(dag, topo, schedule)?;
    let comms = dag
        .edge_ids()
        .map(|e| match &schedule.comms[e.index()] {
            CommPlacement::Slotted { route, .. } => CommPlacement::Slotted {
                route: route.clone(),
                times: exec.hop_times[e.index()].clone(),
            },
            CommPlacement::Ideal { delay, .. } => {
                let src = dag.edge(e).src;
                CommPlacement::Ideal {
                    delay: *delay,
                    arrival: exec.tasks[src.index()].finish + delay,
                }
            }
            other => other.clone(),
        })
        .collect();
    Ok(Schedule {
        algorithm: schedule.algorithm,
        tasks: exec.tasks.clone(),
        comms,
        makespan: exec.makespan,
    })
}

/// Differential check used by tests: every derived time must be no
/// later than its scheduled counterpart (see module docs).
pub fn check_dominates(schedule: &Schedule, exec: &Execution) -> Result<(), String> {
    for (i, (s, d)) in schedule.tasks.iter().zip(&exec.tasks).enumerate() {
        if d.start > s.start + EPS || d.finish > s.finish + EPS {
            return Err(format!(
                "task n{i}: derived [{}, {}) later than scheduled [{}, {})",
                d.start, d.finish, s.start, s.finish
            ));
        }
    }
    if exec.makespan > schedule.makespan + EPS {
        return Err(format!(
            "derived makespan {} exceeds scheduled {}",
            exec.makespan, schedule.makespan
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbsa::BbsaScheduler;
    use crate::list::ListScheduler;
    use crate::schedule::Scheduler;
    use crate::validate::validate;
    use es_dag::gen::structured::{fork_join, gauss_elim, stencil_1d};
    use es_net::gen::{self, SpeedDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star(n: usize) -> Topology {
        gen::star(
            n,
            SpeedDist::Fixed(1.0),
            SpeedDist::Fixed(1.0),
            &mut StdRng::seed_from_u64(1),
        )
    }

    #[test]
    fn execution_reproduces_ba_times_exactly() {
        // BA uses first-fit/append ordering: greedy replay of the same
        // orders recovers the identical times.
        let dag = fork_join(5, 20.0, 12.0);
        let topo = star(3);
        let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        let exec = execute(&dag, &topo, &s).unwrap();
        for (a, b) in s.tasks.iter().zip(&exec.tasks) {
            assert!((a.start - b.start).abs() < 1e-9, "{a:?} vs {b:?}");
            assert!((a.finish - b.finish).abs() < 1e-9);
        }
        assert!((s.makespan - exec.makespan).abs() < 1e-9);
    }

    #[test]
    fn execution_never_later_than_schedule() {
        let mut rng = StdRng::seed_from_u64(9);
        for seed in 0..6u64 {
            let _ = seed;
            let dag = gauss_elim(5, 10.0, 25.0);
            let topo = gen::random_switched_wan(&gen::WanConfig::heterogeneous(8), &mut rng);
            for sched in [
                ListScheduler::ba(),
                ListScheduler::ba_static(),
                ListScheduler::oihsa(),
                ListScheduler::oihsa_probing(),
            ] {
                let s = sched.schedule(&dag, &topo).unwrap();
                let exec = execute(&dag, &topo, &s).unwrap();
                check_dominates(&s, &exec).unwrap_or_else(|e| panic!("{}: {e}", sched.name()));
            }
        }
    }

    #[test]
    fn compaction_yields_valid_schedule() {
        let dag = stencil_1d(4, 4, 8.0, 15.0);
        let mut rng = StdRng::seed_from_u64(12);
        let topo = gen::random_switched_wan(&gen::WanConfig::homogeneous(8), &mut rng);
        for sched in [ListScheduler::oihsa(), ListScheduler::ba_static()] {
            let s = sched.schedule(&dag, &topo).unwrap();
            let c = compact(&dag, &topo, &s).unwrap();
            if let Err(errs) = validate(&dag, &topo, &c) {
                panic!("{}: compacted schedule invalid: {errs:#?}", sched.name());
            }
            assert!(c.makespan <= s.makespan + 1e-9);
        }
    }

    #[test]
    fn compaction_is_idempotent() {
        let dag = fork_join(4, 10.0, 30.0);
        let topo = star(3);
        let s = ListScheduler::oihsa().schedule(&dag, &topo).unwrap();
        let c1 = compact(&dag, &topo, &s).unwrap();
        let c2 = compact(&dag, &topo, &c1).unwrap();
        assert!((c1.makespan - c2.makespan).abs() < 1e-9);
        for (a, b) in c1.tasks.iter().zip(&c2.tasks) {
            assert!((a.start - b.start).abs() < 1e-9);
        }
    }

    #[test]
    fn fluid_schedules_are_rejected() {
        let dag = fork_join(3, 10.0, 10.0);
        let topo = star(2);
        let s = BbsaScheduler::new().schedule(&dag, &topo).unwrap();
        assert_eq!(
            execute(&dag, &topo, &s).unwrap_err(),
            ExecError::FluidNotSupported
        );
        assert_eq!(
            execute_with(&dag, &topo, &s, &FaultPlan::none()).unwrap_err(),
            ExecError::FluidNotSupported
        );
    }

    #[test]
    fn ideal_schedules_execute() {
        let dag = fork_join(3, 10.0, 10.0);
        let topo = star(3);
        let s = crate::ideal::IdealScheduler::new()
            .schedule(&dag, &topo)
            .unwrap();
        let exec = execute(&dag, &topo, &s).unwrap();
        check_dominates(&s, &exec).unwrap();
    }

    #[test]
    fn empty_fault_plan_is_bitwise_identity() {
        let dag = gauss_elim(5, 10.0, 25.0);
        let mut rng = StdRng::seed_from_u64(31);
        let topo = gen::random_switched_wan(&gen::WanConfig::heterogeneous(8), &mut rng);
        let s = ListScheduler::oihsa().schedule(&dag, &topo).unwrap();
        let plain = execute(&dag, &topo, &s).unwrap();
        let faulted = execute_with(&dag, &topo, &s, &FaultPlan::none()).unwrap();
        assert!(faulted.is_feasible());
        assert_eq!(
            plain.makespan.to_bits(),
            faulted.execution.makespan.to_bits()
        );
        for (a, b) in plain.tasks.iter().zip(&faulted.execution.tasks) {
            assert_eq!(a.start.to_bits(), b.start.to_bits());
            assert_eq!(a.finish.to_bits(), b.finish.to_bits());
        }
        for (a, b) in plain.hop_times.iter().zip(&faulted.execution.hop_times) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.0.to_bits(), y.0.to_bits());
                assert_eq!(x.1.to_bits(), y.1.to_bits());
            }
        }
    }

    #[test]
    fn weight_jitter_inflates_makespan() {
        let dag = fork_join(5, 20.0, 12.0);
        let topo = star(3);
        let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        let plan = FaultPlan {
            task_weight_factor: vec![1.5; dag.task_count()],
            ..FaultPlan::none()
        };
        let p = execute_with(&dag, &topo, &s, &plan).unwrap();
        assert!(p.is_feasible());
        assert!(
            p.execution.makespan > s.makespan + EPS,
            "{} vs {}",
            p.execution.makespan,
            s.makespan
        );
        assert!(p.slack.iter().any(|&sl| sl < -EPS), "some task ran late");
    }

    #[test]
    fn outage_defers_hops() {
        let dag = fork_join(5, 20.0, 12.0);
        let topo = star(3);
        let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        // Block every link for the first half of the schedule: every
        // remote transfer must start at or after the outage end.
        let outage_end = s.makespan / 2.0;
        let plan = FaultPlan {
            link_outages: vec![vec![(0.0, outage_end)]; topo.link_count()],
            ..FaultPlan::none()
        };
        let p = execute_with(&dag, &topo, &s, &plan).unwrap();
        for hops in &p.execution.hop_times {
            for &(start, _) in hops {
                assert!(start + EPS >= outage_end, "hop started inside the outage");
            }
        }
    }

    #[test]
    fn processor_failure_marks_decisions_infeasible() {
        let dag = fork_join(5, 20.0, 12.0);
        let topo = star(3);
        let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        // Fail the processor of the exit task just before the end: at
        // least that task becomes infeasible.
        let exit = s.tasks.len() - 1;
        let plan = FaultPlan::kill_processor(&topo, s.tasks[exit].proc, s.makespan / 2.0);
        let p = execute_with(&dag, &topo, &s, &plan).unwrap();
        assert!(!p.is_feasible());
        let report = p.to_report("test");
        assert!(report.error_count() >= 1);
        assert!(report.counts_by_code().contains_key(&Code::FaultInfeasible));
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let dag = gauss_elim(5, 10.0, 25.0);
        let mut rng = StdRng::seed_from_u64(77);
        let topo = gen::random_switched_wan(&gen::WanConfig::heterogeneous(8), &mut rng);
        let spec = FaultSpec {
            intensity: 0.6,
            horizon: 500.0,
            kill_proc: true,
            kill_link: true,
        };
        let a = FaultPlan::seeded(&dag, &topo, &spec, 42);
        let b = FaultPlan::seeded(&dag, &topo, &spec, 42);
        assert_eq!(a.task_weight_factor.len(), b.task_weight_factor.len());
        for (x, y) in a.task_weight_factor.iter().zip(&b.task_weight_factor) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.proc_fail.iter().zip(&b.proc_fail) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert!(a.has_hard_failures());
        let c = FaultPlan::seeded(&dag, &topo, &spec, 43);
        let differs = a
            .task_weight_factor
            .iter()
            .zip(&c.task_weight_factor)
            .any(|(x, y)| x.to_bits() != y.to_bits());
        assert!(differs, "different seeds draw different jitter");
    }

    #[test]
    fn zero_intensity_spec_without_kills_is_no_faults() {
        let dag = fork_join(3, 10.0, 10.0);
        let topo = star(2);
        let plan = FaultPlan::seeded(&dag, &topo, &FaultSpec::soft(0.0, 100.0), 7);
        assert!(plan.is_none());
    }

    #[test]
    fn nan_start_does_not_panic_the_replay() {
        // Malformed import: a NaN start must not crash the sort — the
        // replay still runs and the audit catches the bad timing.
        let dag = fork_join(3, 10.0, 10.0);
        let topo = star(2);
        let mut s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        s.tasks[0].start = f64::NAN;
        let _ = execute(&dag, &topo, &s);
    }
}
