//! Structured schedule-audit diagnostics.
//!
//! The validator ([`crate::validate`]) reports findings as typed
//! [`Diagnostic`]s rather than strings: each carries a stable
//! [`Code`] naming the violated invariant family, a [`Severity`], a
//! [`Span`] locating the finding inside the schedule, a human message
//! and key/value context. A [`Report`] aggregates them with per-code
//! counts and renders either human text or a line-oriented JSON
//! document that round-trips through [`Report::from_json`].
//!
//! The code table (kept in sync with DESIGN.md §8 — lint L3 of
//! `xtask analyze` cross-checks the two):
//!
//! | code    | invariant family                                   |
//! |---------|----------------------------------------------------|
//! | ES-E000 | structural shape (placement counts, times arity)   |
//! | ES-E001 | task timing (`t_f = t_s + w/s`, non-negative start)|
//! | ES-E002 | processor non-preemption                           |
//! | ES-E003 | precedence / data-ready starts                     |
//! | ES-E004 | route validity (chaining, permits, placement kind) |
//! | ES-E005 | link causality along routes                        |
//! | ES-E006 | slotted exclusivity (duration, no link overlap)    |
//! | ES-E007 | fluid capacity & volume conservation               |
//! | ES-E008 | reported makespan equals latest task finish        |
//! | ES-E009 | fault feasibility (decisions vs hard failures)     |

use std::collections::BTreeMap;
use std::fmt;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: the schedule is valid but worth a second look (e.g.
    /// idealised communications weaken what the audit can check).
    Warning,
    /// The schedule violates the scheduling model.
    Error,
}

impl Severity {
    /// Lower-case name used in JSON and human output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Inverse of [`Severity::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable diagnostic code, one per invariant family of the scheduling
/// model (§2 of the paper; see the module-level table).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(clippy::upper_case_acronyms)]
pub enum Code {
    /// ES-E000 — structural shape: placement counts match the DAG,
    /// per-hop arrays have one entry per hop.
    Structure,
    /// ES-E001 — task timing: `t_f = t_s + w/s(P)`, starts
    /// non-negative.
    TaskTiming,
    /// ES-E002 — processor non-preemption: tasks on one processor
    /// never overlap.
    ProcOverlap,
    /// ES-E003 — precedence / data-ready: a task starts only after
    /// every incoming communication has arrived.
    Precedence,
    /// ES-E004 — route validity: hops chain source to destination and
    /// are permitted by their links; placement kind matches locality.
    Route,
    /// ES-E005 — link causality along routes: hop times non-decreasing
    /// (plus the configured per-hop switch delay).
    LinkCausality,
    /// ES-E006 — slotted exclusivity: each transfer occupies exactly
    /// `c(e)/s(L)` and transfers on one link never overlap.
    SlotExclusivity,
    /// ES-E007 — fluid capacity & conservation: ≤100% bandwidth per
    /// link, full volume per hop, forwarding never outpaces arrival.
    FluidCapacity,
    /// ES-E008 — the reported makespan equals the latest task finish.
    Makespan,
    /// ES-E009 — fault feasibility: under a hard-failure plan, every
    /// scheduled decision finishes before its resource fail-stops
    /// (reported by [`crate::exec::PerturbedExecution::to_report`]).
    FaultInfeasible,
}

impl Code {
    /// All codes, in numeric order.
    pub const ALL: [Code; 10] = [
        Code::Structure,
        Code::TaskTiming,
        Code::ProcOverlap,
        Code::Precedence,
        Code::Route,
        Code::LinkCausality,
        Code::SlotExclusivity,
        Code::FluidCapacity,
        Code::Makespan,
        Code::FaultInfeasible,
    ];

    /// The stable `ES-Exxx` identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Structure => "ES-E000",
            Code::TaskTiming => "ES-E001",
            Code::ProcOverlap => "ES-E002",
            Code::Precedence => "ES-E003",
            Code::Route => "ES-E004",
            Code::LinkCausality => "ES-E005",
            Code::SlotExclusivity => "ES-E006",
            Code::FluidCapacity => "ES-E007",
            Code::Makespan => "ES-E008",
            Code::FaultInfeasible => "ES-E009",
        }
    }

    /// One-line description of the invariant family.
    pub fn summary(self) -> &'static str {
        match self {
            Code::Structure => "structural shape of the schedule",
            Code::TaskTiming => "task timing (finish = start + w/s, start >= 0)",
            Code::ProcOverlap => "processor non-preemption",
            Code::Precedence => "precedence and data-ready starts",
            Code::Route => "route validity",
            Code::LinkCausality => "link causality along routes",
            Code::SlotExclusivity => "slotted link exclusivity",
            Code::FluidCapacity => "fluid capacity and volume conservation",
            Code::Makespan => "reported makespan consistency",
            Code::FaultInfeasible => "fault feasibility under hard failures",
        }
    }

    /// Inverse of [`Code::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        Code::ALL.into_iter().find(|c| c.as_str() == s)
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which part of the schedule a finding is about.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Span {
    /// The schedule as a whole (shape, makespan).
    Schedule,
    /// One task placement (`TaskId` index).
    Task(u32),
    /// One communication placement (`EdgeId` index).
    Edge(u32),
    /// One hop of one communication.
    Hop {
        /// `EdgeId` index of the communication.
        edge: u32,
        /// 0-based hop position along its route.
        hop: u32,
    },
    /// One processor (`ProcId` index).
    Proc(u32),
    /// One link (`LinkId` index).
    Link(u32),
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Schedule => write!(f, "schedule"),
            Span::Task(i) => write!(f, "n{i}"),
            Span::Edge(i) => write!(f, "e{i}"),
            Span::Hop { edge, hop } => write!(f, "e{edge}.hop{hop}"),
            Span::Proc(i) => write!(f, "P{i}"),
            Span::Link(i) => write!(f, "L{i}"),
        }
    }
}

/// One audit finding.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Invariant family violated (stable across releases).
    pub code: Code,
    /// Error (model violation) or warning (advisory).
    pub severity: Severity,
    /// Where in the schedule.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
    /// Key/value details (expected vs actual quantities, etc.),
    /// ordered as inserted.
    pub context: Vec<(String, String)>,
}

impl Diagnostic {
    /// New error-severity diagnostic.
    pub fn error(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            span,
            message: message.into(),
            context: Vec::new(),
        }
    }

    /// New warning-severity diagnostic.
    pub fn warning(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, span, message)
        }
    }

    /// Attach one context key/value pair (builder style).
    #[must_use]
    pub fn with(mut self, key: impl Into<String>, value: impl fmt::Display) -> Self {
        self.context.push((key.into(), value.to_string()));
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} [{}]: {}",
            self.severity, self.code, self.span, self.message
        )?;
        for (k, v) in &self.context {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

/// Aggregated audit outcome.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    /// What was audited (algorithm name, file, ...); free-form.
    pub subject: String,
    /// All findings, in emission order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Empty report for `subject`.
    pub fn new(subject: impl Into<String>) -> Self {
        Report {
            subject: subject.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Append a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// No error-severity findings (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Findings per code, in code order (codes with no findings are
    /// omitted).
    pub fn counts_by_code(&self) -> BTreeMap<Code, usize> {
        let mut m = BTreeMap::new();
        for d in &self.diagnostics {
            *m.entry(d.code).or_insert(0) += 1;
        }
        m
    }

    /// Legacy string form: one rendered message per finding. Feeds the
    /// `validate()` shim so pre-diagnostic call sites keep working.
    pub fn messages(&self) -> Vec<String> {
        self.diagnostics.iter().map(|d| d.message.clone()).collect()
    }

    /// Multi-line human rendering: header, per-code counts, findings.
    pub fn render_human(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let verdict = if self.is_clean() { "PASS" } else { "FAIL" };
        let _ = writeln!(
            out,
            "audit {}: {verdict} ({} error(s), {} warning(s))",
            self.subject,
            self.error_count(),
            self.warning_count()
        );
        for (code, n) in self.counts_by_code() {
            let _ = writeln!(out, "  {code} x{n} — {}", code.summary());
        }
        for d in &self.diagnostics {
            let _ = writeln!(out, "  {d}");
        }
        out
    }

    /// JSON rendering (hand-rolled; no serde runtime in this
    /// workspace). Schema `es-diag-v1`; parse back with
    /// [`Report::from_json`].
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("{\"schema\":\"es-diag-v1\",\"subject\":");
        json_string(&mut s, &self.subject);
        let _ = write!(
            s,
            ",\"error_count\":{},\"warning_count\":{},\"counts\":{{",
            self.error_count(),
            self.warning_count()
        );
        for (i, (code, n)) in self.counts_by_code().into_iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{code}\":{n}");
        }
        s.push_str("},\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"span\":",
                d.code, d.severity
            );
            span_json(&mut s, d.span);
            s.push_str(",\"message\":");
            json_string(&mut s, &d.message);
            s.push_str(",\"context\":[");
            for (j, (k, v)) in d.context.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push('[');
                json_string(&mut s, k);
                s.push(',');
                json_string(&mut s, v);
                s.push(']');
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }

    /// Parse a report back from [`Report::to_json`] output (or any
    /// JSON matching the `es-diag-v1` schema).
    pub fn from_json(input: &str) -> Result<Report, String> {
        let value = json::parse(input)?;
        let obj = value.as_object().ok_or("top level is not an object")?;
        let subject = obj
            .get("subject")
            .and_then(json::Value::as_str)
            .unwrap_or_default()
            .to_string();
        let mut report = Report::new(subject);
        let diags = obj
            .get("diagnostics")
            .and_then(json::Value::as_array)
            .ok_or("missing diagnostics array")?;
        for d in diags {
            let d = d.as_object().ok_or("diagnostic is not an object")?;
            let code_str = d
                .get("code")
                .and_then(json::Value::as_str)
                .ok_or("diagnostic without code")?;
            let code = Code::parse(code_str)
                .ok_or_else(|| format!("unknown diagnostic code {code_str}"))?;
            let severity = d
                .get("severity")
                .and_then(json::Value::as_str)
                .and_then(Severity::parse)
                .ok_or("diagnostic without valid severity")?;
            let span = parse_span(d.get("span").ok_or("diagnostic without span")?)?;
            let message = d
                .get("message")
                .and_then(json::Value::as_str)
                .ok_or("diagnostic without message")?
                .to_string();
            let mut context = Vec::new();
            if let Some(pairs) = d.get("context").and_then(json::Value::as_array) {
                for pair in pairs {
                    let pair = pair.as_array().ok_or("context entry is not a pair")?;
                    let (Some(k), Some(v)) = (
                        pair.first().and_then(json::Value::as_str),
                        pair.get(1).and_then(json::Value::as_str),
                    ) else {
                        return Err("context pair is not two strings".into());
                    };
                    context.push((k.to_string(), v.to_string()));
                }
            }
            report.push(Diagnostic {
                code,
                severity,
                span,
                message,
                context,
            });
        }
        Ok(report)
    }
}

fn span_json(s: &mut String, span: Span) {
    use std::fmt::Write as _;
    let _ = match span {
        Span::Schedule => write!(s, "{{\"kind\":\"schedule\"}}"),
        Span::Task(i) => write!(s, "{{\"kind\":\"task\",\"index\":{i}}}"),
        Span::Edge(i) => write!(s, "{{\"kind\":\"edge\",\"index\":{i}}}"),
        Span::Hop { edge, hop } => {
            write!(s, "{{\"kind\":\"hop\",\"edge\":{edge},\"hop\":{hop}}}")
        }
        Span::Proc(i) => write!(s, "{{\"kind\":\"proc\",\"index\":{i}}}"),
        Span::Link(i) => write!(s, "{{\"kind\":\"link\",\"index\":{i}}}"),
    };
}

fn parse_span(v: &json::Value) -> Result<Span, String> {
    let obj = v.as_object().ok_or("span is not an object")?;
    let kind = obj
        .get("kind")
        .and_then(json::Value::as_str)
        .ok_or("span without kind")?;
    let index = |key: &str| -> Result<u32, String> {
        obj.get(key)
            .and_then(json::Value::as_u32)
            .ok_or_else(|| format!("span missing integer `{key}`"))
    };
    match kind {
        "schedule" => Ok(Span::Schedule),
        "task" => Ok(Span::Task(index("index")?)),
        "edge" => Ok(Span::Edge(index("index")?)),
        "hop" => Ok(Span::Hop {
            edge: index("edge")?,
            hop: index("hop")?,
        }),
        "proc" => Ok(Span::Proc(index("index")?)),
        "link" => Ok(Span::Link(index("index")?)),
        other => Err(format!("unknown span kind {other}")),
    }
}

fn json_string(out: &mut String, v: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Minimal JSON reader for [`Report::from_json`] — the workspace has
/// no serde runtime (offline build), and the diag schema only needs
/// objects, arrays, strings and small integers.
mod json {
    /// Parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number (kept as f64).
        Num(f64),
        /// String (escapes resolved).
        Str(String),
        /// Array.
        Arr(Vec<Value>),
        /// Object, insertion-ordered.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }
        pub fn as_object(&self) -> Option<Obj<'_>> {
            match self {
                Value::Obj(pairs) => Some(Obj(pairs)),
                _ => None,
            }
        }
        pub fn as_u32(&self) -> Option<u32> {
            match self {
                Value::Num(n) if *n >= 0.0 && n.trunc() == *n && *n <= f64::from(u32::MAX) => {
                    Some(*n as u32)
                }
                _ => None,
            }
        }
    }

    /// Borrowed object view with `get`.
    pub struct Obj<'a>(&'a [(String, Value)]);

    impl<'a> Obj<'a> {
        pub fn get(&self, key: &str) -> Option<&'a Value> {
            self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }
    }

    /// Parse one JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Value, String> {
        let mut p = Parser {
            b: input.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(v)
    }

    struct Parser<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }

        fn expect(&mut self, c: u8) -> Result<(), String> {
            self.skip_ws();
            if self.i < self.b.len() && self.b[self.i] == c {
                self.i += 1;
                Ok(())
            } else {
                Err(format!("expected `{}` at byte {}", char::from(c), self.i))
            }
        }

        fn peek(&mut self) -> Option<u8> {
            self.skip_ws();
            self.b.get(self.i).copied()
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek().ok_or("unexpected end of input")? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Ok(Value::Str(self.string()?)),
                b't' => self.literal("true", Value::Bool(true)),
                b'f' => self.literal("false", Value::Bool(false)),
                b'n' => self.literal("null", Value::Null),
                _ => self.number(),
            }
        }

        fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
            if self.b[self.i..].starts_with(word.as_bytes()) {
                self.i += word.len();
                Ok(v)
            } else {
                Err(format!("bad literal at byte {}", self.i))
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut pairs = Vec::new();
            if self.peek() == Some(b'}') {
                self.i += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.expect(b':')?;
                pairs.push((key, self.value()?));
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(format!("bad object at byte {}", self.i)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            if self.peek() == Some(b']') {
                self.i += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.value()?);
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b']') => {
                        self.i += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("bad array at byte {}", self.i)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            while self.i < self.b.len() {
                match self.b[self.i] {
                    b'"' => {
                        self.i += 1;
                        return Ok(out);
                    }
                    b'\\' => {
                        self.i += 1;
                        let esc = *self.b.get(self.i).ok_or("unterminated escape")?;
                        self.i += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let hex = self
                                    .b
                                    .get(self.i..self.i + 4)
                                    .ok_or("truncated \\u escape")?;
                                let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                                let cp =
                                    u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                                self.i += 4;
                                out.push(char::from_u32(cp).ok_or("bad \\u code point")?);
                            }
                            _ => return Err("unknown escape".into()),
                        }
                    }
                    _ => {
                        // Copy one UTF-8 scalar.
                        let rest =
                            std::str::from_utf8(&self.b[self.i..]).map_err(|_| "invalid utf-8")?;
                        let c = rest.chars().next().ok_or("unterminated string")?;
                        out.push(c);
                        self.i += c.len_utf8();
                    }
                }
            }
            Err("unterminated string".into())
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.i;
            if self.peek() == Some(b'-') {
                self.i += 1;
            }
            while self.i < self.b.len()
                && (self.b[self.i].is_ascii_digit()
                    || matches!(self.b[self.i], b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                self.i += 1;
            }
            std::str::from_utf8(&self.b[start..self.i])
                .ok()
                .and_then(|s| s.trim().parse::<f64>().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("BA");
        r.push(
            Diagnostic::error(Code::ProcOverlap, Span::Proc(0), "tasks overlap")
                .with("first", "[0, 2)")
                .with("second", "[1, 3)"),
        );
        r.push(Diagnostic::error(
            Code::Makespan,
            Span::Schedule,
            "makespan 9 != max task finish 8",
        ));
        r.push(Diagnostic::warning(
            Code::Route,
            Span::Edge(3),
            "ideal communication: contention checks skipped",
        ));
        r
    }

    #[test]
    fn counts_and_cleanliness() {
        let r = sample();
        assert_eq!(r.error_count(), 2);
        assert_eq!(r.warning_count(), 1);
        assert!(!r.is_clean());
        assert!(Report::new("x").is_clean());
        let counts = r.counts_by_code();
        assert_eq!(counts[&Code::ProcOverlap], 1);
        assert_eq!(counts.len(), 3);
    }

    #[test]
    fn codes_are_stable_and_parseable() {
        for code in Code::ALL {
            assert_eq!(Code::parse(code.as_str()), Some(code));
        }
        // Unknown code, assembled at runtime so the xtask L3 scan (a
        // textual `ES-Exxx` search) does not see a phantom code here.
        let unknown = format!("ES-{}", "E999");
        assert_eq!(Code::parse(&unknown), None);
        assert_eq!(Code::Structure.as_str(), "ES-E000");
        assert_eq!(Code::Makespan.as_str(), "ES-E008");
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let r = sample();
        let parsed = Report::from_json(&r.to_json()).expect("parse back");
        assert_eq!(parsed, r);
    }

    #[test]
    fn json_escapes_round_trip() {
        let mut r = Report::new("quote \" backslash \\ newline \n tab \t");
        r.push(Diagnostic::error(
            Code::Structure,
            Span::Hop { edge: 2, hop: 1 },
            "message with \"quotes\" and\nnewline",
        ));
        let parsed = Report::from_json(&r.to_json()).expect("parse back");
        assert_eq!(parsed, r);
    }

    #[test]
    fn human_rendering_mentions_codes_and_verdict() {
        let r = sample();
        let text = r.render_human();
        assert!(text.contains("FAIL"));
        assert!(text.contains("ES-E002"));
        assert!(text.contains("ES-E008"));
        assert!(text.contains("2 error(s), 1 warning(s)"));
        let clean = Report::new("OIHSA").render_human();
        assert!(clean.contains("PASS"));
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(Report::from_json("not json").is_err());
        assert!(Report::from_json("{}").is_err());
        // Unknown-code document, assembled at runtime to stay invisible
        // to the xtask L3 textual code scan.
        let unknown = format!("ES-{}", "E999");
        let doc = format!(
            r#"{{"diagnostics":[{{"code":"{unknown}","severity":"error","span":{{"kind":"schedule"}},"message":"x"}}]}}"#
        );
        assert!(Report::from_json(&doc).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Span::Hop { edge: 4, hop: 2 }.to_string(), "e4.hop2");
        let d = Diagnostic::error(Code::TaskTiming, Span::Task(7), "bad finish")
            .with("expected", 4.0)
            .with("actual", 5.0);
        let line = d.to_string();
        assert!(line.contains("error ES-E001 [n7]: bad finish"));
        assert!(line.contains("expected=4"));
    }
}
