//! Schedule quality metrics beyond the makespan.
//!
//! The paper reports only makespan; these metrics (standard in the
//! scheduling literature) let the examples and EXPERIMENTS.md explain
//! *why* one schedule beats another: processor/link utilisation, the
//! schedule-length ratio against the critical-path bound, speedup over
//! serial execution, and communication statistics.

use crate::schedule::{CommPlacement, Schedule};
use es_dag::{critical_path, TaskGraph};
use es_net::{LinkId, Topology};

/// Aggregate metrics of one schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleMetrics {
    /// The schedule length.
    pub makespan: f64,
    /// `makespan / (critical path length on speed-1 resources)` — the
    /// classic SLR; can drop below 1 on faster-than-1 processors.
    pub slr: f64,
    /// Serial time on the fastest processor divided by the makespan.
    pub speedup: f64,
    /// Processors that execute at least one task.
    pub processors_used: usize,
    /// Mean busy fraction over *used* processors (busy time / makespan).
    pub mean_proc_utilisation: f64,
    /// Number of edges realised as link traffic (not processor-local).
    pub remote_comms: usize,
    /// Number of edges with source and destination co-located.
    pub local_comms: usize,
    /// Total volume-time on links: Σ over transfers of `c(e) / s(L)`
    /// (slotted) or piece areas (fluid).
    pub total_link_busy: f64,
    /// Links carrying at least one transfer.
    pub links_used: usize,
    /// Busy time of the single most loaded link.
    pub max_link_busy: f64,
    /// Mean number of hops over remote communications.
    pub mean_route_length: f64,
}

/// Compute [`ScheduleMetrics`].
pub fn metrics(dag: &TaskGraph, topo: &Topology, schedule: &Schedule) -> ScheduleMetrics {
    let makespan = schedule.makespan;

    // Processor side.
    let mut busy = vec![0.0_f64; topo.proc_count()];
    for (i, t) in schedule.tasks.iter().enumerate() {
        let _ = i;
        busy[t.proc.index()] += (t.finish - t.start).max(0.0);
    }
    let processors_used = busy.iter().filter(|&&b| b > 0.0).count();
    let mean_proc_utilisation = if processors_used == 0 || makespan <= 0.0 {
        0.0
    } else {
        busy.iter()
            .filter(|&&b| b > 0.0)
            .map(|b| b / makespan)
            .sum::<f64>()
            / processors_used as f64
    };

    // Link side.
    let mut link_busy = vec![0.0_f64; topo.link_count()];
    let mut remote = 0usize;
    let mut local = 0usize;
    let mut hops_total = 0usize;
    for comm in &schedule.comms {
        match comm {
            CommPlacement::Local => local += 1,
            CommPlacement::Ideal { .. } => remote += 1,
            CommPlacement::Slotted { route, times } => {
                remote += 1;
                hops_total += route.len();
                for (hop, &(s, f)) in route.iter().zip(times) {
                    link_busy[hop.link.index()] += (f - s).max(0.0);
                }
            }
            CommPlacement::Fluid { route, flows } => {
                remote += 1;
                hops_total += route.len();
                for (hop, flow) in route.iter().zip(flows) {
                    let area: f64 = flow
                        .pieces
                        .iter()
                        .map(|p| p.rate * (p.end - p.start).max(0.0))
                        .sum();
                    link_busy[hop.link.index()] += area;
                }
            }
        }
    }
    let links_used = link_busy.iter().filter(|&&b| b > 0.0).count();
    let slotted_or_fluid = schedule
        .comms
        .iter()
        .filter(|c| {
            matches!(
                c,
                CommPlacement::Slotted { .. } | CommPlacement::Fluid { .. }
            )
        })
        .count();

    let total_work: f64 = dag.task_ids().map(|t| dag.weight(t)).sum();
    let best_speed = topo
        .proc_ids()
        .map(|p| topo.proc_speed(p))
        .fold(0.0, f64::max);

    ScheduleMetrics {
        makespan,
        slr: if critical_path(dag) > 0.0 {
            makespan / critical_path(dag)
        } else {
            0.0
        },
        speedup: if makespan > 0.0 {
            (total_work / best_speed) / makespan
        } else {
            0.0
        },
        processors_used,
        mean_proc_utilisation,
        remote_comms: remote,
        local_comms: local,
        total_link_busy: link_busy.iter().sum(),
        links_used,
        max_link_busy: link_busy.iter().copied().fold(0.0, f64::max),
        mean_route_length: if slotted_or_fluid == 0 {
            0.0
        } else {
            hops_total as f64 / slotted_or_fluid as f64
        },
    }
}

/// Per-link busy time, indexed by [`LinkId`] — what the heat-map-style
/// reports in the examples print.
pub fn link_busy_times(topo: &Topology, schedule: &Schedule) -> Vec<(LinkId, f64)> {
    let mut busy = vec![0.0_f64; topo.link_count()];
    for comm in &schedule.comms {
        match comm {
            CommPlacement::Slotted { route, times } => {
                for (hop, &(s, f)) in route.iter().zip(times) {
                    busy[hop.link.index()] += (f - s).max(0.0);
                }
            }
            CommPlacement::Fluid { route, flows } => {
                for (hop, flow) in route.iter().zip(flows) {
                    busy[hop.link.index()] += flow
                        .pieces
                        .iter()
                        .map(|p| p.rate * (p.end - p.start).max(0.0))
                        .sum::<f64>();
                }
            }
            _ => {}
        }
    }
    busy.into_iter()
        .enumerate()
        .map(|(i, b)| (LinkId(i as u32), b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::ListScheduler;
    use crate::schedule::Scheduler;
    use es_dag::gen::structured::{chain, fork_join};
    use es_net::gen::{self, SpeedDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star(n: usize) -> Topology {
        gen::star(
            n,
            SpeedDist::Fixed(1.0),
            SpeedDist::Fixed(1.0),
            &mut StdRng::seed_from_u64(1),
        )
    }

    #[test]
    fn serial_chain_metrics() {
        let dag = chain(4, 5.0, 100.0);
        let topo = star(3);
        let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        let m = metrics(&dag, &topo, &s);
        assert_eq!(m.makespan, 20.0);
        assert_eq!(m.processors_used, 1);
        assert!((m.mean_proc_utilisation - 1.0).abs() < 1e-9);
        assert_eq!(m.remote_comms, 0);
        assert_eq!(m.local_comms, 3);
        assert_eq!(m.links_used, 0);
        assert!((m.speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_fork_join_metrics() {
        let dag = fork_join(4, 50.0, 1.0);
        let topo = star(4);
        let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        let m = metrics(&dag, &topo, &s);
        assert!(m.processors_used > 1, "spreads out");
        assert!(m.remote_comms > 0);
        assert!(m.speedup > 1.0, "parallelism pays: {}", m.speedup);
        assert!(m.total_link_busy > 0.0);
        assert!(m.max_link_busy <= m.total_link_busy);
        // Star routes are always 2 hops.
        assert!((m.mean_route_length - 2.0).abs() < 1e-9);
    }

    #[test]
    fn link_busy_sums_match_total() {
        let dag = fork_join(4, 50.0, 3.0);
        let topo = star(4);
        let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        let m = metrics(&dag, &topo, &s);
        let per_link = link_busy_times(&topo, &s);
        let sum: f64 = per_link.iter().map(|(_, b)| b).sum();
        assert!((sum - m.total_link_busy).abs() < 1e-9);
        assert_eq!(per_link.len(), topo.link_count());
    }

    #[test]
    fn slr_relative_to_critical_path() {
        let dag = chain(3, 10.0, 0.0);
        let topo = star(2);
        let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        let m = metrics(&dag, &topo, &s);
        // Chain with zero comm on unit processors: makespan == cp.
        assert!((m.slr - 1.0).abs() < 1e-9);
    }
}
