//! Failure-aware schedule repair.
//!
//! Given a schedule and a [`FaultPlan`] with hard fail-stop failures,
//! [`repair`] produces a schedule for the *surviving* platform:
//!
//! * **Processor failures** are handled at task-dispatch granularity.
//!   A task whose scheduled start lies strictly before its processor's
//!   fail time counts as already dispatched and keeps its placement
//!   (its network interface keeps forwarding); every other task on a
//!   dead processor is re-placed via OIHSA's §4.1 hybrid static
//!   criterion, evaluated over the surviving processors with the mean
//!   speed of the surviving links.
//! * **Link failures** are fail-stop for all re-planned traffic: the
//!   repair routes every communication with the modified-Dijkstra
//!   router (§4.3) over a [`Topology::masked`] view from which the
//!   failed links are absent, so no new transfer can be placed on them.
//! * Processors cut off from the largest surviving component (their
//!   node no longer mutually reachable with it once failed links are
//!   masked) are treated like failed ones: their tasks move into the
//!   component, keeping all repaired communications routable.
//!
//! The rebuild is a fresh forward pass in the original priority order
//! (bottom level), re-deriving every start time — a global re-dispatch
//! rather than a local patch, which is what lets the result satisfy
//! the full [`crate::validate::audit`] contract. Placements of
//! unaffected tasks are preserved (pinned); only times move. The first
//! attempt uses OIHSA's optimal insertion; if the audit is not clean
//! (or scheduling fails), a bounded retry falls back to BA-style
//! append/basic insertion, which is audit-clean by construction.
//!
//! Everything is deterministic: same schedule + same plan = bitwise
//! identical repair (covered by `xtask analyze --determinism`). A plan
//! without hard failures returns the input schedule unchanged — soft
//! faults (jitter, degradation, outages) degrade execution but never
//! invalidate placements, so there is nothing to repair.
//!
//! Note the deliberate scope limit: repaired start times are relative
//! to the same time origin as the input schedule, not shifted to the
//! failure instant — the repair answers "what should the dispatcher's
//! table look like on the surviving platform", not "simulate the
//! moment of the crash". Communications are always re-planned as
//! slotted (or local) placements, whatever their original kind.

use crate::config::{EdgeOrder, Insertion, Routing, Switching, Tuning};
use crate::diag::Report;
use crate::exec::FaultPlan;
use crate::procsched::ProcState;
use crate::schedule::{CommPlacement, SchedError, Schedule, TaskPlacement};
use crate::slotted::SlottedState;
use crate::validate::audit;
use es_dag::{priority_list, Priority, TaskGraph, TaskId};
use es_linksched::time::EPS;
use es_linksched::CommId;
use es_net::{LinkId, ProcId, Topology};
use es_route::{reachable_nodes_with, BfsScratch};

/// Why a repair could not be completed.
#[derive(Debug)]
pub enum RepairError {
    /// Every processor failed (or none remains mutually connected).
    NoSurvivingProcessors,
    /// The rebuild could not schedule a communication on the surviving
    /// topology, even with the basic-insertion fallback.
    Unroutable(SchedError),
    /// Both insertion attempts produced a schedule the diagnostic audit
    /// rejects; the report of the (final) basic-insertion attempt is
    /// attached.
    AuditFailed(Report),
    /// The input schedule does not match the instance.
    Malformed(String),
}

impl std::fmt::Display for RepairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairError::NoSurvivingProcessors => write!(f, "no surviving processors"),
            RepairError::Unroutable(e) => write!(f, "repair unroutable: {e}"),
            RepairError::AuditFailed(r) => {
                write!(
                    f,
                    "repaired schedule failed audit ({} errors)",
                    r.error_count()
                )
            }
            RepairError::Malformed(why) => write!(f, "malformed schedule: {why}"),
        }
    }
}

impl std::error::Error for RepairError {}

/// Result of a successful [`repair`].
#[derive(Clone, Debug)]
pub struct RepairOutcome {
    /// The repaired schedule. Valid against the *full* topology (the
    /// masked view keeps all resource ids stable), so the existing
    /// audit / export / verify pipeline applies unchanged.
    pub schedule: Schedule,
    /// Tasks that changed processor, in task-id order.
    pub moved_tasks: Vec<TaskId>,
    /// Communications whose placement kind or route changed.
    pub rerouted_comms: usize,
    /// True when the optimal-insertion attempt was rejected and the
    /// BA-style basic-insertion fallback produced the result.
    pub used_fallback: bool,
}

/// Repair `schedule` against the hard failures in `plan`; see the
/// module docs. A plan without hard failures returns the schedule
/// unchanged (the identity repair). Uses [`Tuning::default`].
pub fn repair(
    dag: &TaskGraph,
    topo: &Topology,
    schedule: &Schedule,
    plan: &FaultPlan,
) -> Result<RepairOutcome, RepairError> {
    repair_with(dag, topo, schedule, plan, Tuning::default())
}

/// [`repair`] with an explicit performance [`Tuning`] for the rebuild's
/// link state. Tuning never changes the repaired schedule (bitwise);
/// the `repair_cache_equivalence` integration test enforces this.
pub fn repair_with(
    dag: &TaskGraph,
    topo: &Topology,
    schedule: &Schedule,
    plan: &FaultPlan,
    tuning: Tuning,
) -> Result<RepairOutcome, RepairError> {
    if schedule.tasks.len() != dag.task_count() || schedule.comms.len() != dag.edge_count() {
        return Err(RepairError::Malformed(format!(
            "{} task / {} comm placements for {} / {}",
            schedule.tasks.len(),
            schedule.comms.len(),
            dag.task_count(),
            dag.edge_count()
        )));
    }
    if !plan.has_hard_failures() {
        return Ok(RepairOutcome {
            schedule: schedule.clone(),
            moved_tasks: Vec::new(),
            rerouted_comms: 0,
            used_fallback: false,
        });
    }

    let failed_link = |l: LinkId| plan.link_fail_time(l).is_finite();
    let masked = topo.masked(failed_link);
    let usable = surviving_component(topo, &masked, plan);
    if usable.iter().all(|&u| !u) {
        return Err(RepairError::NoSurvivingProcessors);
    }

    // Pin every task we keep; the rest are re-placed by the rebuild.
    // Keep = the processor is in the surviving component, or it failed
    // *after* the task was dispatched and can still be reached.
    let in_component = connected_to_component(topo, &masked, &usable);
    let mut pinned: Vec<Option<ProcId>> = vec![None; dag.task_count()];
    for (i, t) in schedule.tasks.iter().enumerate() {
        let fail_at = plan.proc_fail_time(t.proc);
        let keep =
            in_component[t.proc.index()] && (!fail_at.is_finite() || t.start + EPS < fail_at);
        if keep {
            pinned[i] = Some(t.proc);
        }
    }

    // Mean speed over surviving links only — the §4.1 criterion should
    // price communication on the network that still exists.
    let mls = surviving_mls(topo, plan);

    let attempt = |insertion: Insertion| -> Result<Schedule, SchedError> {
        rebuild(
            dag, &masked, schedule, &pinned, &usable, mls, insertion, tuning,
        )
    };

    let mut used_fallback = false;
    let repaired = match attempt(Insertion::Optimal) {
        Ok(s) if audit(dag, topo, &s).is_clean() => s,
        _ => {
            used_fallback = true;
            let s = attempt(Insertion::Basic).map_err(RepairError::Unroutable)?;
            let report = audit(dag, topo, &s);
            if !report.is_clean() {
                return Err(RepairError::AuditFailed(report));
            }
            s
        }
    };

    let moved_tasks = dag
        .task_ids()
        .filter(|t| pinned[t.index()].is_none())
        .collect();
    let rerouted_comms = schedule
        .comms
        .iter()
        .zip(&repaired.comms)
        .filter(|(a, b)| route_changed(a, b))
        .count();
    Ok(RepairOutcome {
        schedule: repaired,
        moved_tasks,
        rerouted_comms,
        used_fallback,
    })
}

/// Usable repair targets: non-failed processors belonging to the best
/// mutually connected component of the masked topology. `result[p]` is
/// true iff processor `p` may receive re-placed tasks.
fn surviving_component(topo: &Topology, masked: &Topology, plan: &FaultPlan) -> Vec<bool> {
    let survivors: Vec<ProcId> = topo
        .proc_ids()
        .filter(|&p| !plan.proc_fail_time(p).is_finite())
        .collect();
    // Forward reachability from every surviving processor's node; the
    // pair (p, q) is mutually connected iff each reaches the other.
    // One shared traversal scratch across all the sweeps.
    let mut scratch = BfsScratch::new();
    let reach: Vec<Vec<bool>> = survivors
        .iter()
        .map(|&p| reachable_nodes_with(masked, topo.node_of_proc(p), &mut scratch).to_vec())
        .collect();
    let mutual = |i: usize, j: usize| {
        reach[i][topo.node_of_proc(survivors[j]).index()]
            && reach[j][topo.node_of_proc(survivors[i]).index()]
    };
    // Reference processor: the survivor whose component is largest
    // (ties break to the lowest processor index — determinism).
    let mut best: Option<(usize, usize)> = None; // (survivor idx, size)
    for i in 0..survivors.len() {
        let size = (0..survivors.len()).filter(|&j| mutual(i, j)).count();
        if best.is_none_or(|(_, bs)| size > bs) {
            best = Some((i, size));
        }
    }
    let mut usable = vec![false; topo.proc_count()];
    if let Some((r, _)) = best {
        for j in 0..survivors.len() {
            if mutual(r, j) {
                usable[survivors[j].index()] = true;
            }
        }
    }
    usable
}

/// Which processors (failed or not) are mutually reachable with the
/// usable component — a dispatched task may keep a dead processor only
/// if its outputs can still reach the survivors.
fn connected_to_component(topo: &Topology, masked: &Topology, usable: &[bool]) -> Vec<bool> {
    let Some(reference) = topo.proc_ids().find(|&p| usable[p.index()]) else {
        return vec![false; topo.proc_count()];
    };
    let mut scratch = BfsScratch::new();
    let from_ref =
        reachable_nodes_with(masked, topo.node_of_proc(reference), &mut scratch).to_vec();
    topo.proc_ids()
        .map(|p| {
            usable[p.index()] || {
                let n = topo.node_of_proc(p);
                from_ref[n.index()]
                    && reachable_nodes_with(masked, n, &mut scratch)
                        [topo.node_of_proc(reference).index()]
            }
        })
        .collect()
}

/// Mean speed of the links that did not fail (1.0 when none survive,
/// mirroring [`Topology::mean_link_speed`] on an empty link set).
fn surviving_mls(topo: &Topology, plan: &FaultPlan) -> f64 {
    let mut sum = 0.0_f64;
    let mut count = 0usize;
    for l in topo.link_ids() {
        if !plan.link_fail_time(l).is_finite() {
            sum += topo.link_speed(l);
            count += 1;
        }
    }
    if count == 0 {
        1.0
    } else {
        sum / count as f64
    }
}

/// One full forward rebuild: priority order, pinned tasks stay put,
/// unpinned tasks are placed by the hybrid criterion over `usable`,
/// all communications re-planned on the masked topology with OIHSA's
/// edge order / routing / switching and the given insertion policy.
#[allow(clippy::too_many_arguments)]
fn rebuild(
    dag: &TaskGraph,
    masked: &Topology,
    original: &Schedule,
    pinned: &[Option<ProcId>],
    usable: &[bool],
    mls: f64,
    insertion: Insertion,
    tuning: Tuning,
) -> Result<Schedule, SchedError> {
    let mut procs = ProcState::new(masked);
    let mut links = SlottedState::with_tuning(masked, dag.edge_count(), tuning);
    let mut placed: Vec<Option<TaskPlacement>> = vec![None; dag.task_count()];
    // In-edge ordering scratch, hoisted out of the task loop
    // (clear-don't-drop; the analyze pass's L4 lint bans per-task
    // allocations in this loop).
    let mut edge_costs: Vec<f64> = Vec::new();
    let mut edge_idx: Vec<usize> = Vec::new();

    for &task in &priority_list(dag, Priority::BottomLevel) {
        let proc = match pinned[task.index()] {
            Some(p) => p,
            None => pick_target(dag, masked, &procs, &placed, usable, mls, task)?,
        };
        // §4.1/§4.2 dynamic model: every in-communication becomes
        // available at the ready time and is placed in cost-descending
        // order.
        let ready = dag
            .predecessors(task)
            .map(|s| placed[s.index()].expect("predecessors placed first").finish)
            .fold(0.0_f64, f64::max);
        let in_edges = dag.in_edges(task);
        edge_costs.clear();
        edge_costs.extend(in_edges.iter().map(|&e| dag.cost(e)));
        EdgeOrder::CostDesc.order_into(&edge_costs, &mut edge_idx);
        let mut data_ready = 0.0_f64;
        for k in 0..edge_idx.len() {
            let e = in_edges[edge_idx[k]];
            let edge = dag.edge(e);
            let src = placed[edge.src.index()].expect("predecessors placed first");
            let arrival = if src.proc == proc {
                src.finish
            } else {
                links.schedule_comm(
                    masked,
                    CommId(u64::from(e.0)),
                    ready,
                    edge.cost,
                    src.proc,
                    proc,
                    Routing::ModifiedDijkstra,
                    insertion,
                    Switching::CutThrough,
                )?
            };
            data_ready = data_ready.max(arrival);
        }
        let (start, finish) = procs.place(masked, proc, data_ready, dag.weight(task));
        placed[task.index()] = Some(TaskPlacement {
            proc,
            start,
            finish,
        });
    }

    let tasks: Vec<TaskPlacement> = placed
        .into_iter()
        .map(|p| p.expect("all tasks placed"))
        .collect();
    let comms: Vec<CommPlacement> = dag
        .edge_ids()
        .map(|e| {
            let edge = dag.edge(e);
            if tasks[edge.src.index()].proc == tasks[edge.dst.index()].proc {
                CommPlacement::Local
            } else {
                let (route, times) = links.placement(CommId(u64::from(e.0)));
                CommPlacement::Slotted { route, times }
            }
        })
        .collect();
    debug_assert!(links.check_invariants().is_ok());
    let makespan = Schedule::compute_makespan(&tasks);
    Ok(Schedule {
        algorithm: original.algorithm,
        tasks,
        comms,
        makespan,
    })
}

/// OIHSA's §4.1 hybrid static criterion restricted to the usable
/// processors (mirrors `ListScheduler`'s, with the surviving MLS).
fn pick_target(
    dag: &TaskGraph,
    masked: &Topology,
    procs: &ProcState,
    placed: &[Option<TaskPlacement>],
    usable: &[bool],
    mls: f64,
    task: TaskId,
) -> Result<ProcId, SchedError> {
    let weight = dag.weight(task);
    let mut best: Option<(ProcId, f64)> = None;
    for p in masked.proc_ids().filter(|&p| usable[p.index()]) {
        let mut comm_part = 0.0_f64;
        for &e in dag.in_edges(task) {
            let edge = dag.edge(e);
            let src = placed[edge.src.index()].expect("predecessors placed first");
            let est = if src.proc == p {
                src.finish
            } else {
                src.finish + edge.cost / mls
            };
            comm_part = comm_part.max(est);
        }
        let start = comm_part.max(procs.finish_time(p));
        let value = start + weight / masked.proc_speed(p);
        if best.is_none_or(|(_, bv)| value < bv - EPS) {
            best = Some((p, value));
        }
    }
    best.map(|(p, _)| p).ok_or(SchedError::NoProcessors)
}

/// Did the communication's realisation change in a way the robustness
/// metrics should count — different placement kind or different route?
/// (Pure time shifts on the same route do not count.)
fn route_changed(a: &CommPlacement, b: &CommPlacement) -> bool {
    match (a, b) {
        (CommPlacement::Local, CommPlacement::Local) => false,
        (CommPlacement::Slotted { route: ra, .. }, CommPlacement::Slotted { route: rb, .. }) => {
            ra != rb
        }
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, FaultPlan};
    use crate::list::ListScheduler;
    use crate::schedule::Scheduler;
    use es_dag::gen::structured::{fork_join, gauss_elim};
    use es_net::gen::{self, SpeedDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star(n: usize) -> Topology {
        gen::star(
            n,
            SpeedDist::Fixed(1.0),
            SpeedDist::Fixed(1.0),
            &mut StdRng::seed_from_u64(1),
        )
    }

    #[test]
    fn no_failure_plan_is_identity() {
        let dag = fork_join(5, 20.0, 12.0);
        let topo = star(3);
        let s = ListScheduler::oihsa().schedule(&dag, &topo).unwrap();
        // Soft faults alone never trigger a rebuild.
        let soft = FaultPlan {
            task_weight_factor: vec![2.0; dag.task_count()],
            ..FaultPlan::none()
        };
        for plan in [FaultPlan::none(), soft] {
            let out = repair(&dag, &topo, &s, &plan).unwrap();
            assert!(out.moved_tasks.is_empty());
            assert_eq!(out.rerouted_comms, 0);
            assert!(!out.used_fallback);
            assert_eq!(out.schedule.makespan.to_bits(), s.makespan.to_bits());
            for (a, b) in out.schedule.tasks.iter().zip(&s.tasks) {
                assert_eq!(a.proc, b.proc);
                assert_eq!(a.start.to_bits(), b.start.to_bits());
                assert_eq!(a.finish.to_bits(), b.finish.to_bits());
            }
        }
    }

    #[test]
    fn processor_failure_moves_unstarted_tasks_and_audits_clean() {
        let dag = gauss_elim(5, 10.0, 25.0);
        let topo = star(4);
        let s = ListScheduler::ba_static().schedule(&dag, &topo).unwrap();
        for victim in topo.proc_ids() {
            let fail_at = s.makespan / 2.0;
            let plan = FaultPlan::kill_processor(&topo, victim, fail_at);
            let out = repair(&dag, &topo, &s, &plan).unwrap();
            assert!(audit(&dag, &topo, &out.schedule).is_clean(), "{victim}");
            // Nothing unstarted remains on the dead processor; tasks
            // dispatched before the failure may stay.
            for (i, t) in out.schedule.tasks.iter().enumerate() {
                if t.proc == victim {
                    assert!(
                        s.tasks[i].proc == victim && s.tasks[i].start + EPS < fail_at,
                        "task n{i} newly placed on the dead processor"
                    );
                }
            }
            for &m in &out.moved_tasks {
                assert_eq!(s.tasks[m.index()].proc, victim);
                assert!(out.schedule.tasks[m.index()].proc != victim);
            }
            // The repaired schedule must itself be executable.
            execute(&dag, &topo, &out.schedule).unwrap();
        }
    }

    #[test]
    fn link_failure_reroutes_around_the_dead_link() {
        let dag = gauss_elim(5, 10.0, 25.0);
        let mut rng = StdRng::seed_from_u64(5);
        let topo = gen::random_switched_wan(&gen::WanConfig::homogeneous(8), &mut rng);
        let s = ListScheduler::oihsa().schedule(&dag, &topo).unwrap();
        // Fail the first link any slotted communication uses.
        let victim = s
            .comms
            .iter()
            .find_map(|c| match c {
                CommPlacement::Slotted { route, .. } => route.first().map(|h| h.link),
                _ => None,
            })
            .expect("at least one remote communication");
        let plan = FaultPlan::kill_link(&topo, victim, 0.0);
        let out = repair(&dag, &topo, &s, &plan).unwrap();
        assert!(audit(&dag, &topo, &out.schedule).is_clean());
        for c in &out.schedule.comms {
            if let CommPlacement::Slotted { route, .. } = c {
                assert!(
                    route.iter().all(|h| h.link != victim),
                    "repaired route still uses the failed link"
                );
            }
        }
        assert!(out.rerouted_comms >= 1);
    }

    #[test]
    fn all_processors_failing_is_an_error() {
        let dag = fork_join(3, 10.0, 10.0);
        let topo = star(2);
        let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        let plan = FaultPlan {
            proc_fail: vec![0.0; topo.proc_count()],
            ..FaultPlan::none()
        };
        assert!(matches!(
            repair(&dag, &topo, &s, &plan),
            Err(RepairError::NoSurvivingProcessors)
        ));
    }

    #[test]
    fn isolated_survivor_component_absorbs_all_tasks() {
        // Two processors joined only through one cable; failing both
        // directions isolates them. The component chooser must settle
        // on one side and move everything there.
        let mut b = Topology::builder();
        let (n0, _) = b.add_processor(1.0);
        let (n1, _) = b.add_processor(1.0);
        let (l_fwd, l_rev) = b.add_duplex_cable(n0, n1, 1.0);
        let topo = b.build().unwrap();
        let dag = fork_join(3, 10.0, 1.0);
        let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        let mut plan = FaultPlan::kill_link(&topo, l_fwd, 0.0);
        plan.link_fail[l_rev.index()] = 0.0;
        let out = repair(&dag, &topo, &s, &plan).unwrap();
        assert!(audit(&dag, &topo, &out.schedule).is_clean());
        let first = out.schedule.tasks[0].proc;
        assert!(
            out.schedule.tasks.iter().all(|t| t.proc == first),
            "all tasks on one side of the cut"
        );
        assert!(out
            .schedule
            .comms
            .iter()
            .all(|c| matches!(c, CommPlacement::Local)));
    }
}
