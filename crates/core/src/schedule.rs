//! Schedule representation and the [`Scheduler`] trait.

use es_dag::TaskGraph;
use es_linksched::Flow;
use es_net::{Hop, ProcId, Topology};
use std::fmt;

/// Where and when one task executes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskPlacement {
    /// Processor executing the task.
    pub proc: ProcId,
    /// Start time `t_s(n, P)`.
    pub start: f64,
    /// Finish time `t_f(n, P) = t_s + w(n)/s(P)`.
    pub finish: f64,
}

/// How one DAG edge's communication is realised.
#[derive(Clone, Debug, PartialEq)]
pub enum CommPlacement {
    /// Source and destination tasks share a processor: communication is
    /// free and instantaneous (§2.1 of the paper).
    Local,
    /// Scheduled on a route of links as exclusive time slots (BA and
    /// OIHSA). `times[k]` is `(t_s, t_f)` of the transfer on
    /// `route[k]`; `t_f - t_s = c(e)/s(L_k)`.
    Slotted {
        /// The hops taken, source processor to destination processor.
        route: Vec<Hop>,
        /// Per-hop `(start, finish)` times.
        times: Vec<(f64, f64)>,
    },
    /// Scheduled as fluid bandwidth shares (BBSA). `flows[k]` is the
    /// piecewise-constant transfer on `route[k]`.
    Fluid {
        /// The hops taken.
        route: Vec<Hop>,
        /// Per-hop flows.
        flows: Vec<Flow>,
    },
    /// Contention-free idealised communication (classic model): the
    /// data simply arrives `delay` after the source task finishes.
    Ideal {
        /// Modelled transfer delay.
        delay: f64,
        /// Arrival time at the destination processor.
        arrival: f64,
    },
}

impl CommPlacement {
    /// When the communication's data is available at the destination.
    /// `None` for [`CommPlacement::Local`] (caller uses the source
    /// task's finish time).
    pub fn arrival(&self) -> Option<f64> {
        match self {
            CommPlacement::Local => None,
            CommPlacement::Slotted { times, .. } => times.last().map(|&(_, f)| f),
            CommPlacement::Fluid { flows, .. } => {
                flows.last().and_then(es_linksched::bandwidth::Flow::finish)
            }
            CommPlacement::Ideal { arrival, .. } => Some(*arrival),
        }
    }
}

/// A complete schedule of a task graph on a topology.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Name of the algorithm that produced it.
    pub algorithm: &'static str,
    /// Placement per task, indexed by `TaskId`.
    pub tasks: Vec<TaskPlacement>,
    /// Placement per edge, indexed by `EdgeId`.
    pub comms: Vec<CommPlacement>,
    /// `max_n t_f(n)` — the schedule length the paper reports.
    pub makespan: f64,
}

impl Schedule {
    /// Compute the makespan from task placements.
    pub fn compute_makespan(tasks: &[TaskPlacement]) -> f64 {
        tasks.iter().map(|t| t.finish).fold(0.0, f64::max)
    }
}

/// Errors a scheduler can report.
#[derive(Clone, Debug, PartialEq)]
pub enum SchedError {
    /// No route exists between two processors that must communicate.
    NoRoute {
        /// Source processor.
        from: ProcId,
        /// Destination processor.
        to: ProcId,
    },
    /// The topology has no processors (cannot happen with validated
    /// topologies; kept for API completeness).
    NoProcessors,
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::NoRoute { from, to } => {
                write!(f, "no route from {from} to {to}")
            }
            SchedError::NoProcessors => write!(f, "topology has no processors"),
        }
    }
}

impl std::error::Error for SchedError {}

/// A static scheduling algorithm mapping `(task graph, topology)` to a
/// [`Schedule`].
pub trait Scheduler {
    /// Short algorithm name for reports ("BA", "OIHSA", "BBSA", …).
    fn name(&self) -> &'static str;

    /// Produce a complete schedule.
    fn schedule(&self, dag: &TaskGraph, topo: &Topology) -> Result<Schedule, SchedError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_is_max_finish() {
        let tasks = vec![
            TaskPlacement {
                proc: ProcId(0),
                start: 0.0,
                finish: 4.0,
            },
            TaskPlacement {
                proc: ProcId(1),
                start: 1.0,
                finish: 9.0,
            },
        ];
        assert_eq!(Schedule::compute_makespan(&tasks), 9.0);
        assert_eq!(Schedule::compute_makespan(&[]), 0.0);
    }

    #[test]
    fn arrival_of_each_placement_kind() {
        assert_eq!(CommPlacement::Local.arrival(), None);
        let slotted = CommPlacement::Slotted {
            route: vec![],
            times: vec![(0.0, 2.0), (1.0, 3.0)],
        };
        assert_eq!(slotted.arrival(), Some(3.0));
        let ideal = CommPlacement::Ideal {
            delay: 5.0,
            arrival: 12.0,
        };
        assert_eq!(ideal.arrival(), Some(12.0));
    }

    #[test]
    fn errors_display() {
        let e = SchedError::NoRoute {
            from: ProcId(0),
            to: ProcId(3),
        };
        assert!(e.to_string().contains("P0"));
        assert!(e.to_string().contains("P3"));
    }
}
