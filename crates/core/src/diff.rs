//! Bitwise schedule/execution comparison helpers.
//!
//! These are the shared vocabulary of every differential check in the
//! workspace: the xtask determinism audit, the optimized-vs-reference
//! tuning oracle (`tests/integration_differential.rs`), and the bench
//! harness's inline identity gate. All comparisons go through
//! `f64::to_bits` — *bitwise* identity, no epsilon — because the
//! guarantee under test is "the optimization changed nothing at all",
//! not "the results are close".

use crate::exec::Execution;
use crate::schedule::{CommPlacement, Schedule};

/// Bitwise schedule diff; `None` when identical.
pub fn diff_schedules(a: &Schedule, b: &Schedule) -> Option<String> {
    if a.algorithm != b.algorithm {
        return Some(format!("algorithm {:?} vs {:?}", a.algorithm, b.algorithm));
    }
    if a.makespan.to_bits() != b.makespan.to_bits() {
        return Some(format!("makespan {} vs {}", a.makespan, b.makespan));
    }
    if a.tasks.len() != b.tasks.len() || a.comms.len() != b.comms.len() {
        return Some("placement counts differ".into());
    }
    for (i, (ta, tb)) in a.tasks.iter().zip(&b.tasks).enumerate() {
        if ta.proc != tb.proc
            || ta.start.to_bits() != tb.start.to_bits()
            || ta.finish.to_bits() != tb.finish.to_bits()
        {
            return Some(format!("task n{i}: {ta:?} vs {tb:?}"));
        }
    }
    for (i, (ca, cb)) in a.comms.iter().zip(&b.comms).enumerate() {
        if !comm_eq(ca, cb) {
            return Some(format!("comm e{i}: {ca:?} vs {cb:?}"));
        }
    }
    None
}

/// Bitwise comm-placement equality (PartialEq would use `==` on f64,
/// which both misses -0.0/0.0 flips and is banned by lint L2).
pub fn comm_eq(a: &CommPlacement, b: &CommPlacement) -> bool {
    let bits = |x: f64| x.to_bits();
    match (a, b) {
        (CommPlacement::Local, CommPlacement::Local) => true,
        (
            CommPlacement::Slotted {
                route: ra,
                times: ta,
            },
            CommPlacement::Slotted {
                route: rb,
                times: tb,
            },
        ) => {
            ra == rb
                && ta.len() == tb.len()
                && ta
                    .iter()
                    .zip(tb)
                    .all(|(x, y)| bits(x.0) == bits(y.0) && bits(x.1) == bits(y.1))
        }
        (
            CommPlacement::Fluid {
                route: ra,
                flows: fa,
            },
            CommPlacement::Fluid {
                route: rb,
                flows: fb,
            },
        ) => {
            ra == rb
                && fa.len() == fb.len()
                && fa.iter().zip(fb).all(|(x, y)| {
                    x.pieces.len() == y.pieces.len()
                        && x.pieces.iter().zip(&y.pieces).all(|(p, q)| {
                            bits(p.start) == bits(q.start)
                                && bits(p.end) == bits(q.end)
                                && bits(p.rate) == bits(q.rate)
                        })
                })
        }
        (
            CommPlacement::Ideal {
                delay: da,
                arrival: aa,
            },
            CommPlacement::Ideal {
                delay: db,
                arrival: ab,
            },
        ) => bits(*da) == bits(*db) && bits(*aa) == bits(*ab),
        _ => false,
    }
}

/// Bitwise execution diff; `None` when identical.
pub fn diff_executions(a: &Execution, b: &Execution) -> Option<String> {
    if a.makespan.to_bits() != b.makespan.to_bits() {
        return Some(format!("makespan {} vs {}", a.makespan, b.makespan));
    }
    for (i, (ta, tb)) in a.tasks.iter().zip(&b.tasks).enumerate() {
        if ta.proc != tb.proc
            || ta.start.to_bits() != tb.start.to_bits()
            || ta.finish.to_bits() != tb.finish.to_bits()
        {
            return Some(format!("derived task n{i}: {ta:?} vs {tb:?}"));
        }
    }
    for (i, (ha, hb)) in a.hop_times.iter().zip(&b.hop_times).enumerate() {
        let same = ha.len() == hb.len()
            && ha
                .iter()
                .zip(hb)
                .all(|(x, y)| x.0.to_bits() == y.0.to_bits() && x.1.to_bits() == y.1.to_bits());
        if !same {
            return Some(format!("derived hop times of e{i} differ"));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::TaskPlacement;
    use es_net::ProcId;

    fn schedule(makespan: f64) -> Schedule {
        Schedule {
            algorithm: "t",
            tasks: vec![TaskPlacement {
                proc: ProcId(0),
                start: 0.0,
                finish: makespan,
            }],
            comms: vec![CommPlacement::Local],
            makespan,
        }
    }

    #[test]
    fn identical_schedules_diff_to_none() {
        assert!(diff_schedules(&schedule(4.0), &schedule(4.0)).is_none());
    }

    #[test]
    fn bitwise_diff_catches_negative_zero() {
        // -0.0 == 0.0 under f64 PartialEq; the bitwise diff must not
        // let that slide.
        assert!(diff_schedules(&schedule(0.0), &schedule(-0.0)).is_some());
        assert!(!comm_eq(
            &CommPlacement::Ideal {
                delay: 0.0,
                arrival: 1.0
            },
            &CommPlacement::Ideal {
                delay: -0.0,
                arrival: 1.0
            }
        ));
    }

    #[test]
    fn placement_changes_are_reported() {
        let a = schedule(4.0);
        let mut b = schedule(4.0);
        b.tasks[0].proc = ProcId(1);
        let d = diff_schedules(&a, &b).expect("differs");
        assert!(d.contains("task n0"), "{d}");
    }
}
