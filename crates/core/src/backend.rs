//! Link-model backend selection at the scheduler level.
//!
//! The `es-linksched` crate exposes three [`es_linksched::LinkModel`]
//! implementations — slot queue, fluid rate profile, and the
//! packet-quantized store-and-forward link. The slotted and BBSA
//! schedulers are built directly on the first two; [`LinkBackend`]
//! makes the third available to *every* existing scheduler without
//! touching their hot paths, via an **instance transform**:
//!
//! * [`LinkBackend::prepare`] quantizes each edge's communication cost
//!   up to whole packets (`SafLink::packets` × quantum) and folds the
//!   per-link forwarding latency into the topology's per-hop delay
//!   ([`es_net::Topology::with_hop_delay`]);
//! * [`LinkBackend::adapt`] forces [`Switching::StoreAndForward`], the
//!   semantics of a store-and-forward fabric.
//!
//! A scheduler run on the transformed instance is then *exactly* a run
//! of the store-and-forward model: link occupancy is
//! `packets × quantum / speed` (bitwise equal to `SafLink::occupancy`
//! thanks to the shared multiply-before-divide form), and each hop
//! after the first pays the forwarding latency. Every validator,
//! executor, repair pass, cache, and overlay applies unchanged, and
//! the slot/fluid backends keep producing bitwise-identical schedules
//! because their transform is the identity.

use crate::config::{ListConfig, Switching};
use es_dag::{TaskGraph, TaskGraphBuilder};
use es_linksched::SafLink;
use es_net::Topology;
use std::fmt;

/// Timing parameters of the store-and-forward backend. Stored as IEEE
/// bit patterns so the type is `Eq`/`Hash` (backends key sweep tables).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SafTiming {
    quantum_bits: u64,
    latency_bits: u64,
}

impl SafTiming {
    /// Timing with the given packet quantum (volume units, `> 0`) and
    /// per-link forwarding latency (seconds, `>= 0`).
    ///
    /// # Panics
    /// Panics on a non-positive/non-finite quantum or a negative
    /// latency — same domain [`SafLink::new`] enforces.
    #[must_use]
    pub fn new(quantum: f64, latency: f64) -> Self {
        assert!(
            quantum > 0.0 && quantum.is_finite(),
            "packet quantum must be positive, got {quantum}"
        );
        assert!(
            latency >= 0.0 && latency.is_finite(),
            "forwarding latency must be non-negative, got {latency}"
        );
        Self {
            quantum_bits: quantum.to_bits(),
            latency_bits: latency.to_bits(),
        }
    }

    /// The packet quantum (volume units).
    #[must_use]
    pub fn quantum(self) -> f64 {
        f64::from_bits(self.quantum_bits)
    }

    /// The per-link forwarding latency (seconds).
    #[must_use]
    pub fn latency(self) -> f64 {
        f64::from_bits(self.latency_bits)
    }

    /// A [`SafLink`] with this timing (reference probe scan), for
    /// dropping the scheduler-level transform onto the link-level
    /// model in tests.
    #[must_use]
    pub fn link(self) -> SafLink {
        SafLink::new(self.quantum(), self.latency())
    }
}

impl Default for SafTiming {
    /// Unit packets, zero latency — the timing under which the
    /// store-and-forward backend degenerates to the slot backend on
    /// integral costs (the equivalence the integration suite pins).
    fn default() -> Self {
        Self::new(1.0, 0.0)
    }
}

/// Which link model the schedulers run against.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum LinkBackend {
    /// Non-preemptive slot queues — the paper's model and the default.
    #[default]
    SlotQueue,
    /// Fluid bandwidth sharing (BBSA's native model). Only the BBSA
    /// scheduler family runs on it; the slotted family is unaffected.
    Fluid,
    /// Packet-quantized store-and-forward with per-link latency +
    /// bandwidth, realized as an instance transform (module docs).
    StoreForward(SafTiming),
}

/// A backend string did not parse. Carries the offending input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BackendParseError(pub String);

impl fmt::Display for BackendParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown link backend {:?}; expected slot | fluid | saf | saf:QUANTUM:LATENCY",
            self.0
        )
    }
}

impl std::error::Error for BackendParseError {}

impl std::str::FromStr for LinkBackend {
    type Err = BackendParseError;

    /// `slot` | `fluid` | `saf` | `saf:QUANTUM:LATENCY`
    /// (e.g. `saf:0.5:0.1`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || BackendParseError(s.to_string());
        match s.trim() {
            "slot" => Ok(LinkBackend::SlotQueue),
            "fluid" => Ok(LinkBackend::Fluid),
            "saf" => Ok(LinkBackend::StoreForward(SafTiming::default())),
            other => {
                let rest = other.strip_prefix("saf:").ok_or_else(err)?;
                let (q, l) = rest.split_once(':').ok_or_else(err)?;
                let quantum: f64 = q.parse().map_err(|_| err())?;
                let latency: f64 = l.parse().map_err(|_| err())?;
                if !(quantum > 0.0 && quantum.is_finite() && latency >= 0.0 && latency.is_finite())
                {
                    return Err(err());
                }
                Ok(LinkBackend::StoreForward(SafTiming::new(quantum, latency)))
            }
        }
    }
}

impl fmt::Display for LinkBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkBackend::SlotQueue => write!(f, "slot"),
            LinkBackend::Fluid => write!(f, "fluid"),
            LinkBackend::StoreForward(t) => {
                write!(f, "saf:{}:{}", t.quantum(), t.latency())
            }
        }
    }
}

impl LinkBackend {
    /// Short stable name (no timing parameters) for report columns and
    /// CI matrix legs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LinkBackend::SlotQueue => "slot",
            LinkBackend::Fluid => "fluid",
            LinkBackend::StoreForward(_) => "saf",
        }
    }

    /// One representative of every backend family, for sweeps and the
    /// conformance/differential matrices. The store-and-forward member
    /// uses a non-degenerate timing so sweeps actually exercise
    /// quantization and latency.
    #[must_use]
    pub fn all() -> Vec<LinkBackend> {
        vec![
            LinkBackend::SlotQueue,
            LinkBackend::Fluid,
            LinkBackend::StoreForward(SafTiming::new(1.0, 0.5)),
        ]
    }

    /// Transform an instance into the form this backend's semantics
    /// require. Identity (plain clones — the topology keeps its
    /// signature, so route caches stay warm) for the slot and fluid
    /// backends; the store-and-forward transform quantizes edge costs
    /// up to whole packets and folds the forwarding latency into the
    /// per-hop delay.
    #[must_use]
    pub fn prepare(self, dag: &TaskGraph, topo: &Topology) -> (TaskGraph, Topology) {
        (self.prepare_dag(dag), self.prepare_topology(topo))
    }

    /// The topology half of [`LinkBackend::prepare`]. Split out for
    /// the online engine, which transforms the shared topology once
    /// and each arriving job's DAG individually.
    #[must_use]
    pub fn prepare_topology(self, topo: &Topology) -> Topology {
        let LinkBackend::StoreForward(timing) = self else {
            return topo.clone();
        };
        topo.with_hop_delay(topo.hop_delay() + timing.latency())
    }

    /// The DAG half of [`LinkBackend::prepare`] — see
    /// [`LinkBackend::prepare_topology`].
    #[must_use]
    pub fn prepare_dag(self, dag: &TaskGraph) -> TaskGraph {
        let LinkBackend::StoreForward(timing) = self else {
            return dag.clone();
        };
        let model = timing.link();
        let mut b = TaskGraphBuilder::with_capacity(dag.task_count(), dag.edge_count());
        for t in dag.task_ids() {
            let node = dag.task(t);
            match &node.label {
                Some(l) => b.add_labeled_task(node.weight, l.clone()),
                None => b.add_task(node.weight),
            };
        }
        for e in dag.edge_ids() {
            let edge = dag.edge(e);
            // Same multiply-before-divide form as `SafLink::occupancy`:
            // the scheduler's `qcost / link_speed` carries the bits the
            // link-level model would produce.
            let qcost = (model.packets(edge.cost) as f64) * timing.quantum();
            b.add_edge(edge.src, edge.dst, qcost)
                .expect("quantizing a valid graph");
        }
        b.build().expect("quantizing a valid graph")
    }

    /// Adapt a slotted-scheduler configuration to this backend's
    /// switching semantics. Identity except under store-and-forward,
    /// where a link may transmit only after the whole message arrived
    /// over the previous link.
    #[must_use]
    pub fn adapt(self, cfg: ListConfig) -> ListConfig {
        match self {
            LinkBackend::StoreForward(_) => ListConfig {
                switching: Switching::StoreAndForward,
                ..cfg
            },
            _ => cfg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use es_dag::gen::structured::fork_join;
    use es_net::gen::{star, SpeedDist};
    use rand::{rngs::StdRng, SeedableRng};

    fn paper_instance() -> (TaskGraph, Topology) {
        let dag = fork_join(4, 10.0, 7.3);
        let mut rng = StdRng::seed_from_u64(11);
        let topo = star(3, SpeedDist::Fixed(1.0), SpeedDist::Fixed(2.0), &mut rng);
        (dag, topo)
    }

    #[test]
    fn parse_round_trips() {
        for s in ["slot", "fluid", "saf", "saf:0.5:0.25"] {
            let b: LinkBackend = s.parse().unwrap();
            assert_eq!(b.to_string().parse::<LinkBackend>().unwrap(), b);
        }
        assert_eq!("slot".parse::<LinkBackend>(), Ok(LinkBackend::SlotQueue));
        assert_eq!(
            " saf ".parse::<LinkBackend>(),
            Ok(LinkBackend::StoreForward(SafTiming::default()))
        );
        assert_eq!(
            "saf:2:1.5".parse::<LinkBackend>(),
            Ok(LinkBackend::StoreForward(SafTiming::new(2.0, 1.5)))
        );
        for bad in [
            "",
            "slots",
            "saf:",
            "saf:0:1",
            "saf:-1:0",
            "saf:1:-1",
            "saf:1:x",
            "saf:inf:0",
        ] {
            assert!(
                bad.parse::<LinkBackend>().is_err(),
                "{bad:?} must not parse"
            );
        }
    }

    #[test]
    fn identity_backends_preserve_instance_and_signature() {
        let (dag, topo) = paper_instance();
        for b in [LinkBackend::SlotQueue, LinkBackend::Fluid] {
            let (d2, t2) = b.prepare(&dag, &topo);
            assert_eq!(d2.edge_count(), dag.edge_count());
            for e in dag.edge_ids() {
                assert_eq!(d2.cost(e).to_bits(), dag.cost(e).to_bits());
            }
            // Clones keep the signature: route caches built against the
            // original stay valid, keeping the refactor bitwise-neutral.
            assert_eq!(t2.signature(), topo.signature());
            assert_eq!(t2.hop_delay().to_bits(), topo.hop_delay().to_bits());
            assert_eq!(b.adapt(ListConfig::oihsa()), ListConfig::oihsa());
        }
    }

    #[test]
    fn saf_prepare_quantizes_and_adds_latency() {
        let (dag, topo) = paper_instance();
        let timing = SafTiming::new(4.0, 0.5);
        let (d2, t2) = LinkBackend::StoreForward(timing).prepare(&dag, &topo);
        for e in dag.edge_ids() {
            // 7.3 volume → 2 packets × 4.0 = 8.0.
            assert_eq!(d2.cost(e), 8.0);
            assert_eq!(d2.edge(e).src, dag.edge(e).src);
            assert_eq!(d2.edge(e).dst, dag.edge(e).dst);
        }
        for t in dag.task_ids() {
            assert_eq!(d2.weight(t).to_bits(), dag.weight(t).to_bits());
        }
        assert_eq!(t2.hop_delay(), 0.5);
        assert_ne!(
            t2.signature(),
            topo.signature(),
            "timed view is a new identity"
        );
        assert_eq!(
            LinkBackend::StoreForward(timing)
                .adapt(ListConfig::ba())
                .switching,
            Switching::StoreAndForward
        );
    }

    #[test]
    fn default_timing_is_identity_on_integral_costs() {
        // Integral costs + unit quantum + zero latency: prepare() is a
        // bitwise no-op on the numbers (only the signature changes),
        // which is what makes the saf↔slot reduction in the
        // integration suite exact.
        let dag = fork_join(3, 5.0, 13.0);
        let mut rng = StdRng::seed_from_u64(3);
        let topo = star(2, SpeedDist::Fixed(1.0), SpeedDist::Fixed(1.0), &mut rng);
        let (d2, t2) = LinkBackend::StoreForward(SafTiming::default()).prepare(&dag, &topo);
        for e in dag.edge_ids() {
            assert_eq!(d2.cost(e).to_bits(), dag.cost(e).to_bits());
        }
        assert_eq!(t2.hop_delay().to_bits(), topo.hop_delay().to_bits());
    }

    #[test]
    fn all_covers_every_family_once() {
        let all = LinkBackend::all();
        assert_eq!(all.len(), 3);
        let names: Vec<_> = all.iter().map(|b| b.name()).collect();
        assert_eq!(names, ["slot", "fluid", "saf"]);
    }
}
