//! Configuration axes of the slotted list schedulers.
//!
//! §4 of the paper decomposes OIHSA into four independent design
//! choices; exposing each as an enum lets the ablation benches measure
//! every choice's individual contribution, and recovers BA as one
//! particular configuration.

use es_dag::Priority;

/// In what order a ready task's incoming edges are routed and placed on
/// links (§4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeOrder {
    /// Predecessor enumeration order — what BA effectively does (the
    /// paper assigns BA no edge priority).
    Arrival,
    /// Descending communication cost — OIHSA/BBSA's choice: "the edge
    /// with a larger cost dominates the start time of the ready task".
    CostDesc,
    /// Ascending cost — the anti-heuristic, for ablation only.
    CostAsc,
}

impl EdgeOrder {
    /// Sort edge indices `0..n` of equal-priority in-edges.
    pub fn order(self, costs: &[f64]) -> Vec<usize> {
        let mut idx = Vec::new();
        self.order_into(costs, &mut idx);
        idx
    }

    /// [`EdgeOrder::order`] into a caller-owned buffer (the probe loop
    /// orders the same in-edges once per processor candidate; reusing
    /// the buffer removes the per-candidate allocations).
    pub fn order_into(self, costs: &[f64], idx: &mut Vec<usize>) {
        idx.clear();
        idx.extend(0..costs.len());
        match self {
            EdgeOrder::Arrival => {}
            EdgeOrder::CostDesc => idx.sort_by(|&a, &b| {
                costs[b]
                    .partial_cmp(&costs[a])
                    .expect("finite costs")
                    .then_with(|| a.cmp(&b))
            }),
            EdgeOrder::CostAsc => idx.sort_by(|&a, &b| {
                costs[a]
                    .partial_cmp(&costs[b])
                    .expect("finite costs")
                    .then_with(|| a.cmp(&b))
            }),
        }
    }
}

/// How the earliest-finish processor probe fans candidate processors
/// out over worker lanes (DESIGN.md §11). Purely a performance knob:
/// every variant is bitwise-identical to the sequential
/// mutate-and-rollback probe — workers probe copy-on-write overlays of
/// the same base link state and the reducer applies the exact
/// sequential tie-break order, so only wall-clock time changes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProbeParallelism {
    /// The pre-overlay mutate-and-rollback probe on the real link
    /// queues (the differential reference twin).
    Sequential,
    /// Resolve the lane count from the environment once per scheduler
    /// run ([`es_runner::Threads::resolve`]: `ES_THREADS` override,
    /// else the CPU count). Resolving to 1 lane keeps the sequential
    /// path — on a single-core host `Auto` is exactly `Sequential`.
    Auto,
    /// Exactly `n` lanes (clamped to ≥ 1). Unlike `Auto`, one lane
    /// still takes the overlay path (inline, no worker threads) — the
    /// differential oracle uses this to pin overlay semantics without
    /// scheduling nondeterminism in the mix.
    Workers(usize),
}

impl ProbeParallelism {
    /// Lane count this variant resolves to right now (≥ 1).
    /// `Sequential` reports 1; only [`ProbeParallelism::Workers`]
    /// forces the overlay path at 1 lane.
    #[must_use]
    pub fn lanes(self) -> usize {
        match self {
            ProbeParallelism::Sequential => 1,
            ProbeParallelism::Auto => es_runner::Threads::resolve().get(),
            ProbeParallelism::Workers(n) => n.max(1),
        }
    }

    /// Whether this variant takes the overlay probing path at all
    /// (given its resolved lane count).
    #[must_use]
    pub fn uses_overlay(self) -> bool {
        match self {
            ProbeParallelism::Sequential => false,
            ProbeParallelism::Auto => self.lanes() > 1,
            ProbeParallelism::Workers(_) => true,
        }
    }
}

/// Hot-path performance toggles (independent of the algorithmic axes
/// above). Every combination must produce bitwise-identical schedules;
/// the differential oracle in `tests/integration_differential.rs` and
/// the proptests under `crates/core/tests/` enforce this, so these
/// knobs trade only time and memory, never results.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Tuning {
    /// Memoize modified-Dijkstra search state across the processor
    /// candidates probed for one ready task. The cache is keyed by a
    /// link-state epoch and the topology's identity signature, so it is
    /// invalidated precisely when any link queue mutates or a different
    /// (e.g. [`es_net::Topology::masked`]) adjacency view is used.
    pub route_cache: bool,
    /// Use the indexed free-gap search in each link's `SlotQueue`
    /// ([`es_linksched::SlotQueue::indexed`]) instead of the linear
    /// first-fit rescan.
    pub indexed_gaps: bool,
    /// Fan the earliest-finish processor probe out over copy-on-write
    /// link-state overlays (see [`ProbeParallelism`]).
    pub parallel_probe: ProbeParallelism,
    /// Restore checkpointed link state by memcpying saved slot columns
    /// back into the touched queues instead of replaying per-hop
    /// `unschedule` calls (DESIGN.md §16). First-touch column saves are
    /// taken during the probe cycle, so a restore is a bounded import
    /// of exactly the queues that mutated since `checkpoint()`.
    pub snapshot_restore: bool,
}

impl Tuning {
    /// All optimizations on — the production configuration.
    #[must_use]
    pub fn optimized() -> Self {
        Self {
            route_cache: true,
            indexed_gaps: true,
            parallel_probe: ProbeParallelism::Auto,
            snapshot_restore: true,
        }
    }

    /// The pre-optimization reference paths, kept permanently as the
    /// differential-testing baseline.
    #[must_use]
    pub fn reference() -> Self {
        Self {
            route_cache: false,
            indexed_gaps: false,
            parallel_probe: ProbeParallelism::Sequential,
            snapshot_restore: false,
        }
    }
}

impl Default for Tuning {
    /// Optimized, unless the `reference-default` cargo feature flips
    /// the whole workspace onto the reference paths (used by the
    /// differential oracle to double-build identical binaries).
    fn default() -> Self {
        if cfg!(feature = "reference-default") {
            Self::reference()
        } else {
            Self::optimized()
        }
    }
}

/// When a communication may start leaving its source processor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeEst {
    /// As soon as its own source task finishes — the offline model of
    /// Sinnen's TPDS'05 framework, where every edge is scheduled
    /// independently.
    SourceFinish,
    /// Only when the destination task becomes *ready*, i.e. at the
    /// latest finish time over all its predecessors. This is the
    /// dynamic/online model this paper describes: "the start time of
    /// the communication data from predecessors to the ready task is
    /// all the same, that is, the finish time of the predecessor which
    /// finishes latest at runtime" (§4.1/§4.2). All of a task's
    /// in-communications then compete for links simultaneously, which
    /// is what makes the edge priority (§4.2) meaningful.
    ReadyTime,
}

/// How a message crosses multi-hop routes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Switching {
    /// Cut-through / circuit switching — the paper's assumption (§2.2):
    /// a transfer may occupy all route links simultaneously; on each
    /// link it starts no earlier than on the previous one and finishes
    /// no earlier either (the "virtual start" rule).
    CutThrough,
    /// Store-and-forward: a link may start transmitting only after the
    /// message has fully arrived over the previous link. Strictly more
    /// conservative; provided as a model extension for ablation.
    StoreAndForward,
}

/// Route selection strategy (§4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Routing {
    /// Minimal routing: fewest hops via BFS (BA, §3).
    Bfs,
    /// The paper's modified Dijkstra: minimise the probed finish time
    /// of this communication on each link given current link schedules.
    ModifiedDijkstra,
}

/// Link insertion policy (§4.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Insertion {
    /// First-fit idle interval (BA's basic insertion).
    Basic,
    /// OIHSA's optimal insertion: defer already-scheduled slots within
    /// their causality slack to open earlier gaps.
    Optimal,
}

/// Processor selection strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProcSelection {
    /// Tentatively schedule the task's communications to every
    /// processor (with the configured routing) and keep the one with
    /// the earliest task finish time — Sinnen's BA criterion, and our
    /// default for OIHSA/BBSA too (see below). The tentative pass
    /// always uses basic insertion so that it can be rolled back
    /// exactly; the commit pass uses the configured [`Insertion`].
    EarliestFinishProbe,
    /// The paper's §4.1 static hybrid criterion, literally:
    /// `min_P [ max( max_j(t_f(n_j) + c(e_j)/MLS), t_f(P) ) + w/s(P) ]`
    /// with zero communication for predecessors already on `P`.
    ///
    /// This estimate is contention-blind: it prices every remote
    /// communication at `c/MLS` no matter how congested the links are.
    /// Against a full-probe BA it loses by 30–60% at high CCR *on
    /// small instances* (the probe discovers that clustering avoids
    /// queueing delays the static formula cannot see) — the
    /// `ablation_proc_selection` bench quantifies this — yet at 16+
    /// processors on paper-sized instances the greedy probe's lack of
    /// lookahead can flip the comparison (EXPERIMENTS.md, "secondary
    /// experiment"). The paper's §3 prose ("BA chooses the processor …
    /// while ignoring the effect of edge communication") indicates its
    /// own BA baseline selected processors with a contention-blind
    /// estimate of this same kind, so the figure reproductions compare
    /// the paper's three algorithms with this criterion across the
    /// board ([`ListConfig::ba_static`] et al.); see DESIGN.md §2.
    HybridStatic,
}

/// Full configuration of a slotted list scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ListConfig {
    /// Algorithm name used in reports.
    pub name: &'static str,
    /// Task priority for the scheduling list (§2.1: bottom level).
    pub priority: Priority,
    /// Processor choice.
    pub proc_selection: ProcSelection,
    /// Route choice.
    pub routing: Routing,
    /// Edge ordering.
    pub edge_order: EdgeOrder,
    /// Earliest communication start model.
    pub edge_est: EdgeEst,
    /// Multi-hop switching model (paper: cut-through).
    pub switching: Switching,
    /// Link insertion policy.
    pub insertion: Insertion,
    /// Hot-path performance toggles (bitwise-neutral; see [`Tuning`]).
    pub tuning: Tuning,
}

impl ListConfig {
    /// The tuning this configuration can actually profit from —
    /// [`ListConfig::tuning`] with structurally useless knobs masked
    /// off. The gap index amortizes one maintenance refold per queue
    /// mutation over the many probes a candidate sweep or an
    /// optimal-insertion scan replays against the same queue state; a
    /// [`ProcSelection::HybridStatic`] scheduler with
    /// [`Insertion::Basic`] (BA-static) probes each queue exactly once
    /// per commit — a 1:1 probe/mutation ratio where maintenance can
    /// never pay for itself — so `indexed_gaps` is dropped there.
    /// Time-only by construction: every tuning combination produces
    /// bitwise-identical schedules (the differential oracle enforces
    /// it), so masking a knob can never change a result.
    #[must_use]
    pub fn effective_tuning(&self) -> Tuning {
        let mut t = self.tuning;
        if matches!(self.proc_selection, ProcSelection::HybridStatic)
            && matches!(self.insertion, Insertion::Basic)
        {
            t.indexed_gaps = false;
        }
        t
    }

    /// Sinnen's Basic Algorithm (§3) in its strong TPDS'05 form: the
    /// processor probe tentatively schedules every communication on the
    /// real link schedules.
    pub fn ba() -> Self {
        Self {
            name: "BA",
            priority: Priority::BottomLevel,
            proc_selection: ProcSelection::EarliestFinishProbe,
            routing: Routing::Bfs,
            edge_order: EdgeOrder::Arrival,
            edge_est: EdgeEst::SourceFinish,
            switching: Switching::CutThrough,
            insertion: Insertion::Basic,
            tuning: Tuning::default(),
        }
    }

    /// BA as the ICPP'06 paper appears to have implemented it:
    /// identical link machinery (BFS, arrival order, basic insertion)
    /// but a contention-blind earliest-finish processor estimate (see
    /// [`ProcSelection::HybridStatic`]). This is the baseline of the
    /// figure reproductions.
    pub fn ba_static() -> Self {
        Self {
            name: "BA-static",
            proc_selection: ProcSelection::HybridStatic,
            edge_est: EdgeEst::ReadyTime,
            ..Self::ba()
        }
    }

    /// The paper's OIHSA (§4), literally: hybrid static processor
    /// criterion (§4.1), cost-descending edge priority (§4.2), modified
    /// Dijkstra routing (§4.3) and optimal insertion (§4.4).
    pub fn oihsa() -> Self {
        Self {
            name: "OIHSA",
            priority: Priority::BottomLevel,
            proc_selection: ProcSelection::HybridStatic,
            routing: Routing::ModifiedDijkstra,
            edge_order: EdgeOrder::CostDesc,
            edge_est: EdgeEst::ReadyTime,
            switching: Switching::CutThrough,
            insertion: Insertion::Optimal,
            tuning: Tuning::default(),
        }
    }

    /// OIHSA with the strong earliest-finish processor probe instead of
    /// the §4.1 static criterion — the variant to use when comparing
    /// against the strong [`ListConfig::ba`].
    pub fn oihsa_probing() -> Self {
        Self {
            name: "OIHSA-probe",
            proc_selection: ProcSelection::EarliestFinishProbe,
            edge_est: EdgeEst::SourceFinish,
            ..Self::oihsa()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_order_arrival_is_identity() {
        let costs = [5.0, 1.0, 3.0];
        assert_eq!(EdgeOrder::Arrival.order(&costs), vec![0, 1, 2]);
    }

    #[test]
    fn edge_order_cost_desc() {
        let costs = [5.0, 1.0, 3.0];
        assert_eq!(EdgeOrder::CostDesc.order(&costs), vec![0, 2, 1]);
    }

    #[test]
    fn edge_order_cost_asc() {
        let costs = [5.0, 1.0, 3.0];
        assert_eq!(EdgeOrder::CostAsc.order(&costs), vec![1, 2, 0]);
    }

    #[test]
    fn edge_order_ties_break_by_index() {
        let costs = [2.0, 2.0, 2.0];
        assert_eq!(EdgeOrder::CostDesc.order(&costs), vec![0, 1, 2]);
        assert_eq!(EdgeOrder::CostAsc.order(&costs), vec![0, 1, 2]);
    }

    #[test]
    fn presets_match_paper() {
        let ba = ListConfig::ba();
        assert_eq!(ba.routing, Routing::Bfs);
        assert_eq!(ba.insertion, Insertion::Basic);
        assert_eq!(ba.proc_selection, ProcSelection::EarliestFinishProbe);

        let oihsa = ListConfig::oihsa();
        assert_eq!(oihsa.routing, Routing::ModifiedDijkstra);
        assert_eq!(oihsa.insertion, Insertion::Optimal);
        assert_eq!(oihsa.edge_order, EdgeOrder::CostDesc);
        assert_eq!(oihsa.proc_selection, ProcSelection::HybridStatic);
        assert_eq!(
            ListConfig::oihsa_probing().proc_selection,
            ProcSelection::EarliestFinishProbe
        );
        assert_eq!(
            ListConfig::ba_static().proc_selection,
            ProcSelection::HybridStatic
        );
        assert_eq!(ListConfig::ba_static().routing, Routing::Bfs);
    }

    #[test]
    fn tuning_default_tracks_reference_feature() {
        let expect = if cfg!(feature = "reference-default") {
            Tuning::reference()
        } else {
            Tuning::optimized()
        };
        assert_eq!(Tuning::default(), expect);
        assert_eq!(ListConfig::ba().tuning, expect);
        assert_eq!(ListConfig::oihsa_probing().tuning, expect);
        assert_ne!(Tuning::optimized(), Tuning::reference());
    }

    #[test]
    fn probe_parallelism_lane_resolution() {
        assert_eq!(ProbeParallelism::Sequential.lanes(), 1);
        assert!(!ProbeParallelism::Sequential.uses_overlay());
        assert_eq!(ProbeParallelism::Workers(0).lanes(), 1);
        assert_eq!(ProbeParallelism::Workers(4).lanes(), 4);
        // Workers forces the overlay path even at one lane, so the
        // differential oracle can pin overlay semantics thread-free.
        assert!(ProbeParallelism::Workers(1).uses_overlay());
        assert!(ProbeParallelism::Auto.lanes() >= 1);
        assert_eq!(
            ProbeParallelism::Auto.uses_overlay(),
            ProbeParallelism::Auto.lanes() > 1
        );
    }

    #[test]
    fn effective_tuning_masks_gap_index_only_for_commit_only_configs() {
        // BA-static never amortizes index maintenance (one probe per
        // commit), so the index is masked off; everything else keeps
        // the knobs it was built with.
        let mut bs = ListConfig::ba_static();
        bs.tuning = Tuning::optimized();
        let eff = bs.effective_tuning();
        assert!(!eff.indexed_gaps);
        assert_eq!(
            Tuning {
                indexed_gaps: true,
                ..eff
            },
            Tuning::optimized()
        );
        for cfg in [
            ListConfig::ba(),
            ListConfig::oihsa(),
            ListConfig::oihsa_probing(),
        ] {
            let mut cfg = cfg;
            cfg.tuning = Tuning::optimized();
            assert_eq!(cfg.effective_tuning(), Tuning::optimized(), "{}", cfg.name);
        }
        // Masking never *adds* a knob.
        bs.tuning = Tuning::reference();
        assert_eq!(bs.effective_tuning(), Tuning::reference());
    }

    #[test]
    fn order_into_reuses_buffer() {
        let mut buf = vec![9, 9, 9, 9, 9];
        EdgeOrder::CostDesc.order_into(&[1.0, 4.0], &mut buf);
        assert_eq!(buf, vec![1, 0]);
    }
}
