//! Processor schedules.
//!
//! Tasks are placed non-preemptively with **end scheduling**: a task
//! starts at `max(data-ready, processor free)` and the processor is
//! busy until the task finishes (`§2.1`: tasks never preempt each
//! other). All three of the paper's algorithms place tasks this way;
//! only the *edge* scheduling differs between them.

use es_net::{ProcId, Topology};

/// Running state of all processors during scheduling.
#[derive(Clone, Debug)]
pub struct ProcState {
    /// `t_f(P)` — time each processor becomes free.
    finish: Vec<f64>,
}

impl ProcState {
    /// All processors idle at time 0.
    pub fn new(topo: &Topology) -> Self {
        Self {
            finish: vec![0.0; topo.proc_count()],
        }
    }

    /// Current finish time `t_f(P)` of a processor.
    #[inline]
    pub fn finish_time(&self, p: ProcId) -> f64 {
        self.finish[p.index()]
    }

    /// Earliest start of a task on `p` given its data-ready time:
    /// `t_s = max(t_dr, t_f(P))`.
    #[inline]
    pub fn earliest_start(&self, p: ProcId, data_ready: f64) -> f64 {
        data_ready.max(self.finish[p.index()])
    }

    /// Place a task of weight `w` on `p` with the given data-ready
    /// time; returns `(start, finish)` and marks the processor busy.
    pub fn place(
        &mut self,
        topo: &Topology,
        p: ProcId,
        data_ready: f64,
        weight: f64,
    ) -> (f64, f64) {
        let start = self.earliest_start(p, data_ready);
        let finish = start + weight / topo.proc_speed(p);
        self.finish[p.index()] = finish;
        (start, finish)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use es_net::Topology;

    fn two_procs() -> Topology {
        let mut b = Topology::builder();
        b.add_processor(1.0);
        b.add_processor(2.0);
        let (a, c) = (es_net::NodeId(0), es_net::NodeId(1));
        b.add_duplex_cable(a, c, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn starts_at_data_ready_when_idle() {
        let topo = two_procs();
        let mut ps = ProcState::new(&topo);
        let (s, f) = ps.place(&topo, ProcId(0), 3.0, 4.0);
        assert_eq!((s, f), (3.0, 7.0));
        assert_eq!(ps.finish_time(ProcId(0)), 7.0);
    }

    #[test]
    fn waits_for_processor_when_busy() {
        let topo = two_procs();
        let mut ps = ProcState::new(&topo);
        ps.place(&topo, ProcId(0), 0.0, 10.0);
        let (s, f) = ps.place(&topo, ProcId(0), 2.0, 5.0);
        assert_eq!((s, f), (10.0, 15.0));
    }

    #[test]
    fn speed_scales_execution_time() {
        let topo = two_procs();
        let mut ps = ProcState::new(&topo);
        let (s, f) = ps.place(&topo, ProcId(1), 0.0, 10.0);
        assert_eq!((s, f), (0.0, 5.0), "speed-2 processor halves time");
    }

    #[test]
    fn processors_are_independent() {
        let topo = two_procs();
        let mut ps = ProcState::new(&topo);
        ps.place(&topo, ProcId(0), 0.0, 10.0);
        let (s, _) = ps.place(&topo, ProcId(1), 0.0, 10.0);
        assert_eq!(s, 0.0);
    }
}
