//! Shared link-scheduling state for the slotted schedulers (BA, OIHSA
//! and every ablation in between).
//!
//! [`SlottedState`] owns one [`SlotQueue`] per link plus the
//! per-communication bookkeeping (route and per-hop times) that OIHSA's
//! deferrable-time computation (Lemma 2) needs. It implements:
//!
//! * route selection — BFS minimal (cached; the network is static) or
//!   the paper's modified Dijkstra with a basic-insertion finish-time
//!   probe per link (§4.3);
//! * hop-by-hop placement under link causality with either basic
//!   (first-fit) or optimal insertion (§4.4), keeping every
//!   communication's recorded times in sync when optimal insertion
//!   defers other slots;
//! * exact rollback of basic-insertion placements, which BA's
//!   earliest-finish processor probe requires.

use crate::config::{Insertion, Routing, Switching};
use crate::schedule::SchedError;
use es_linksched::optimal::optimal_insert;
use es_linksched::slot::SlotQueue;
use es_linksched::CommId;
use es_net::{Hop, NodeId, ProcId, Topology};
use es_route::{bfs_route, dijkstra_route, Route};
use std::collections::BTreeMap;

/// Bookkeeping for one scheduled communication.
#[derive(Clone, Debug, Default)]
struct CommRecord {
    /// The hops taken (empty when unscheduled or local).
    route: Vec<Hop>,
    /// `(start, finish)` on each hop; `None` until that hop is placed.
    times: Vec<Option<(f64, f64)>>,
}

/// All link schedules plus communication bookkeeping.
#[derive(Clone, Debug)]
pub struct SlottedState {
    queues: Vec<SlotQueue>,
    comms: Vec<CommRecord>,
    /// Cache of BFS routes between vertex pairs (the topology is
    /// static, so minimal routes never change). Ordered map: iteration
    /// order must be deterministic for the analyze/determinism audits.
    bfs_cache: BTreeMap<(NodeId, NodeId), Option<Route>>,
}

impl SlottedState {
    /// Fresh state: all links idle; capacity for `comm_count`
    /// communications (one per DAG edge).
    pub fn new(topo: &Topology, comm_count: usize) -> Self {
        Self {
            queues: (0..topo.link_count()).map(|_| SlotQueue::new()).collect(),
            comms: vec![CommRecord::default(); comm_count],
            bfs_cache: BTreeMap::new(),
        }
    }

    /// The slot queue of a link (validators and tests peek at these).
    pub fn queue(&self, link: es_net::LinkId) -> &SlotQueue {
        &self.queues[link.index()]
    }

    /// Recorded `(start, finish)` of `comm` on hop `seq`.
    pub fn hop_times(&self, comm: CommId, seq: usize) -> Option<(f64, f64)> {
        self.comms[comm.0 as usize]
            .times
            .get(seq)
            .copied()
            .flatten()
    }

    /// The committed route of `comm` (empty if unscheduled).
    pub fn route_of(&self, comm: CommId) -> &[Hop] {
        &self.comms[comm.0 as usize].route
    }

    /// Route and schedule one communication.
    ///
    /// * `est` — earliest start (source task finish time);
    /// * `cost` — communication cost `c(e)`;
    /// * returns the arrival time at the destination processor.
    ///
    /// The route is chosen per `routing`; each hop is placed under link
    /// causality using `insertion`. With [`Insertion::Optimal`],
    /// already-scheduled slots may be deferred within their Lemma-2
    /// slack; the displaced communications' recorded times are updated.
    pub fn schedule_comm(
        &mut self,
        topo: &Topology,
        comm: CommId,
        est: f64,
        cost: f64,
        from: ProcId,
        to: ProcId,
        routing: Routing,
        insertion: Insertion,
        switching: Switching,
    ) -> Result<f64, SchedError> {
        debug_assert_ne!(from, to, "local communications never reach the link layer");
        let src = topo.node_of_proc(from);
        let dst = topo.node_of_proc(to);
        let route = self
            .pick_route(topo, src, dst, est, cost, routing, switching)
            .ok_or(SchedError::NoRoute { from, to })?;
        Ok(self.place_on_route(topo, comm, est, cost, route, insertion, switching))
    }

    /// Choose a route per the configured strategy.
    fn pick_route(
        &mut self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        est: f64,
        cost: f64,
        routing: Routing,
        switching: Switching,
    ) -> Option<Route> {
        match routing {
            Routing::Bfs => self
                .bfs_cache
                .entry((src, dst))
                .or_insert_with(|| bfs_route(topo, src, dst))
                .clone(),
            Routing::ModifiedDijkstra => {
                // §4.3: relax by the finish time of this communication
                // on each link, probed with basic insertion against the
                // current schedules. The hop delay is applied uniformly
                // (including the first hop) — a conservative metric;
                // actual placement applies it precisely.
                let queues = &self.queues;
                let delay = topo.hop_delay();
                dijkstra_route(
                    topo,
                    src,
                    dst,
                    (est, est),
                    |&(s, f), hop| {
                        let int = cost / topo.link_speed(hop.link);
                        let bound = match switching {
                            Switching::CutThrough => (s + delay).max(f + delay - int),
                            Switching::StoreAndForward => f + delay,
                        };
                        let start = queues[hop.link.index()].probe(bound, int);
                        (start, (start + int).max(f))
                    },
                    |&(_, f)| f,
                )
                .map(|(route, _)| route)
            }
        }
    }

    /// Place a communication on every hop of `route` in order,
    /// maintaining the link causality condition; returns the arrival
    /// time on the last hop.
    fn place_on_route(
        &mut self,
        topo: &Topology,
        comm: CommId,
        est: f64,
        cost: f64,
        route: Route,
        insertion: Insertion,
        switching: Switching,
    ) -> f64 {
        let rec_idx = comm.0 as usize;
        self.comms[rec_idx].times = vec![None; route.len()];

        let (mut prev_start, mut prev_finish) = (est, est);
        for (seq, hop) in route.iter().enumerate() {
            let int = cost / topo.link_speed(hop.link);
            // Per-hop switch latency applies from the second hop on.
            let delay = if seq == 0 { 0.0 } else { topo.hop_delay() };
            // Link causality (§2.2): start no earlier than on the
            // previous link; finish no earlier either — the "virtual
            // start" bound max(t_s(prev), t_f(prev) - int) enforces
            // both at full bandwidth. Store-and-forward waits for the
            // whole message instead.
            let bound = match switching {
                Switching::CutThrough => (prev_start + delay).max(prev_finish + delay - int),
                Switching::StoreAndForward => prev_finish + delay,
            };
            let queue = &mut self.queues[hop.link.index()];
            let (start, finish) = match insertion {
                Insertion::Basic => {
                    let start = queue.probe(bound, int);
                    queue.commit(comm, seq as u32, start, int);
                    (start, start + int)
                }
                Insertion::Optimal => {
                    let dts = deferrable_times(queue, &self.comms);
                    let placement = optimal_insert(queue, comm, seq as u32, bound, int, &dts);
                    // Propagate deferrals into the displaced
                    // communications' recorded times.
                    for shift in &placement.shifts {
                        let rec = &mut self.comms[shift.comm.0 as usize];
                        rec.times[shift.seq as usize] = Some((shift.new_start, shift.new_end));
                    }
                    (placement.start, placement.end)
                }
            };
            self.comms[rec_idx].times[seq] = Some((start, finish));
            prev_start = start;
            prev_finish = finish;
        }
        // The route is recorded only now, which keeps Lemma-2 deferrable
        // times at the conservative 0 for this comm's own mid-placement
        // slots (their next-hop times are unset either way).
        self.comms[rec_idx].route = route;
        prev_finish
    }

    /// Remove every slot of `comm` and clear its bookkeeping.
    ///
    /// Exact only for basic-insertion placements (optimal insertion may
    /// have deferred *other* slots, which are not restored); BA's
    /// tentative probe therefore always runs with basic insertion.
    pub fn unschedule(&mut self, comm: CommId) {
        let rec = std::mem::take(&mut self.comms[comm.0 as usize]);
        for hop in &rec.route {
            self.queues[hop.link.index()].remove_comm(comm);
        }
    }

    /// Extract the per-hop times of a scheduled communication (for the
    /// final [`crate::schedule::CommPlacement`]).
    pub fn placement(&self, comm: CommId) -> (Vec<Hop>, Vec<(f64, f64)>) {
        let rec = &self.comms[comm.0 as usize];
        let times = rec
            .times
            .iter()
            .map(|t| t.expect("placement queried for fully scheduled comm"))
            .collect();
        (rec.route.clone(), times)
    }

    /// Check every queue's internal invariants (tests/validation).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, q) in self.queues.iter().enumerate() {
            q.check_invariants()
                .map_err(|e| format!("link L{i}: {e}"))?;
        }
        Ok(())
    }
}

/// Lemma 2 deferrable times for every slot of one queue.
///
/// A slot of communication `c` at route position `seq` can defer by
/// `min( t_s(c, next) - t_s(c, here), t_f(c, next) - t_f(c, here) )`
/// where `next` is `c`'s next route hop — 0 when this is the last hop
/// (the arrival may already gate the destination task), and 0 when the
/// next hop is not yet placed (conservative; happens only mid-placement
/// of `c` itself).
fn deferrable_times(queue: &SlotQueue, comms: &[CommRecord]) -> Vec<f64> {
    queue
        .slots()
        .iter()
        .map(|slot| {
            let rec = &comms[slot.comm.0 as usize];
            let seq = slot.seq as usize;
            if seq + 1 >= rec.route.len() {
                return 0.0;
            }
            match rec.times.get(seq + 1).copied().flatten() {
                None => 0.0,
                Some((next_start, next_finish)) => {
                    let dt = (next_start - slot.start).min(next_finish - slot.end);
                    dt.max(0.0)
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use es_net::Topology;

    /// p0 -sw- p1 line with unit speeds.
    fn line() -> Topology {
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        let sw = b.add_switch();
        b.add_duplex_cable(p0, sw, 1.0);
        b.add_duplex_cable(sw, p1, 1.0);
        b.build().unwrap()
    }

    fn c(n: u64) -> CommId {
        CommId(n)
    }

    #[test]
    fn single_comm_cut_through() {
        let topo = line();
        let mut st = SlottedState::new(&topo, 4);
        let arrival = st
            .schedule_comm(
                &topo,
                c(0),
                2.0,
                6.0,
                ProcId(0),
                ProcId(1),
                Routing::Bfs,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap();
        // Two unit-speed hops, cut-through: both [2, 8).
        assert_eq!(arrival, 8.0);
        let (route, times) = st.placement(c(0));
        assert_eq!(route.len(), 2);
        assert_eq!(times, vec![(2.0, 8.0), (2.0, 8.0)]);
    }

    #[test]
    fn second_comm_queues_behind_first() {
        let topo = line();
        let mut st = SlottedState::new(&topo, 4);
        st.schedule_comm(
            &topo,
            c(0),
            0.0,
            5.0,
            ProcId(0),
            ProcId(1),
            Routing::Bfs,
            Insertion::Basic,
            Switching::CutThrough,
        )
        .unwrap();
        let arrival = st
            .schedule_comm(
                &topo,
                c(1),
                0.0,
                5.0,
                ProcId(0),
                ProcId(1),
                Routing::Bfs,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap();
        // First link busy [0,5): second transfer starts at 5.
        assert_eq!(arrival, 10.0);
        st.check_invariants().unwrap();
    }

    #[test]
    fn heterogeneous_hops_respect_causality() {
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        let sw = b.add_switch();
        b.add_duplex_cable(p0, sw, 1.0); // slow: int = cost
        b.add_duplex_cable(sw, p1, 4.0); // fast: int = cost/4
        let topo = b.build().unwrap();
        let mut st = SlottedState::new(&topo, 2);
        let arrival = st
            .schedule_comm(
                &topo,
                c(0),
                0.0,
                8.0,
                ProcId(0),
                ProcId(1),
                Routing::Bfs,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap();
        let (_, times) = st.placement(c(0));
        // Slow hop [0,8); fast hop int=2 with virtual start 6: [6,8).
        assert_eq!(times[0], (0.0, 8.0));
        assert_eq!(times[1], (6.0, 8.0));
        assert_eq!(arrival, 8.0);
        // Causality: start and finish non-decreasing along the route.
        assert!(times[1].0 >= times[0].0);
        assert!(times[1].1 >= times[0].1);
    }

    #[test]
    fn unschedule_rolls_back_exactly() {
        let topo = line();
        let mut st = SlottedState::new(&topo, 4);
        st.schedule_comm(
            &topo,
            c(0),
            0.0,
            5.0,
            ProcId(0),
            ProcId(1),
            Routing::Bfs,
            Insertion::Basic,
            Switching::CutThrough,
        )
        .unwrap();
        let a1 = st
            .schedule_comm(
                &topo,
                c(1),
                0.0,
                3.0,
                ProcId(0),
                ProcId(1),
                Routing::Bfs,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap();
        st.unschedule(c(1));
        let a2 = st
            .schedule_comm(
                &topo,
                c(1),
                0.0,
                3.0,
                ProcId(0),
                ProcId(1),
                Routing::Bfs,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap();
        assert_eq!(a1, a2, "re-scheduling after rollback is deterministic");
        assert!(st.route_of(c(1)).len() == 2);
    }

    #[test]
    fn no_route_is_an_error() {
        let mut b = Topology::builder();
        b.add_processor(1.0);
        b.add_processor(1.0);
        let topo = b.build().unwrap();
        let mut st = SlottedState::new(&topo, 1);
        let err = st
            .schedule_comm(
                &topo,
                c(0),
                0.0,
                1.0,
                ProcId(0),
                ProcId(1),
                Routing::Bfs,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap_err();
        assert_eq!(
            err,
            SchedError::NoRoute {
                from: ProcId(0),
                to: ProcId(1)
            }
        );
    }

    #[test]
    fn optimal_insertion_defers_slot_with_downstream_slack() {
        let topo = line();
        let mut st = SlottedState::new(&topo, 8);
        // comm 0: cost 4 over both hops; on the first link it sits at
        // [0,4), on the second [0,4).
        st.schedule_comm(
            &topo,
            c(0),
            0.0,
            4.0,
            ProcId(0),
            ProcId(1),
            Routing::Bfs,
            Insertion::Basic,
            Switching::CutThrough,
        )
        .unwrap();
        // comm 1: queues behind comm 0 on both links: first link [4,8),
        // second [4,8). Its first-link slot has slack 0 (start/finish
        // equal on both links) — deferral impossible; comm 2 must queue.
        st.schedule_comm(
            &topo,
            c(1),
            0.0,
            4.0,
            ProcId(0),
            ProcId(1),
            Routing::Bfs,
            Insertion::Basic,
            Switching::CutThrough,
        )
        .unwrap();
        let arrival = st
            .schedule_comm(
                &topo,
                c(2),
                0.0,
                2.0,
                ProcId(0),
                ProcId(1),
                Routing::Bfs,
                Insertion::Optimal,
                Switching::CutThrough,
            )
            .unwrap();
        assert_eq!(arrival, 10.0);
        st.check_invariants().unwrap();
    }

    #[test]
    fn optimal_insertion_uses_real_slack() {
        // Build slack explicitly: a 3-link chain where the middle
        // transfer is delayed downstream, giving its first-hop slot
        // real deferrable time.
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        let (p2, _) = b.add_processor(1.0);
        let sw = b.add_switch();
        b.add_duplex_cable(p0, sw, 1.0);
        b.add_duplex_cable(sw, p1, 1.0);
        b.add_duplex_cable(sw, p2, 1.0);
        let topo = b.build().unwrap();
        let mut st = SlottedState::new(&topo, 8);

        // comm 0 congests sw->p1 with [0, 10).
        st.schedule_comm(
            &topo,
            c(0),
            0.0,
            10.0,
            ProcId(0),
            ProcId(1),
            Routing::Bfs,
            Insertion::Basic,
            Switching::CutThrough,
        )
        .unwrap();
        // comm 1 (p0 -> p1, cost 4): p0->sw is busy [0,10) from comm 0
        // too... actually comm 0 occupies p0->sw [0,10) as well, so
        // comm 1 sits at [10,14) on p0->sw and [10,14) on sw->p1.
        st.schedule_comm(
            &topo,
            c(1),
            0.0,
            4.0,
            ProcId(0),
            ProcId(1),
            Routing::Bfs,
            Insertion::Basic,
            Switching::CutThrough,
        )
        .unwrap();
        let (_, t1) = st.placement(c(1));
        assert_eq!(t1[0], (10.0, 14.0));

        // comm 2 (p0 -> p2, cost 6) with optimal insertion: comm 1's
        // slot on p0->sw has zero slack (its next-hop times equal), so
        // no deferral; comm 2 appends at 14 on p0->sw... but BFS route
        // p0->sw->p2 only shares the first link.
        let arrival = st
            .schedule_comm(
                &topo,
                c(2),
                0.0,
                6.0,
                ProcId(0),
                ProcId(2),
                Routing::Bfs,
                Insertion::Optimal,
                Switching::CutThrough,
            )
            .unwrap();
        assert_eq!(arrival, 20.0);
        st.check_invariants().unwrap();
    }

    #[test]
    fn modified_dijkstra_routes_around_congestion() {
        // Two disjoint switch paths between p0 and p1.
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        let sa = b.add_switch();
        let sb = b.add_switch();
        b.add_duplex_cable(p0, sa, 1.0);
        b.add_duplex_cable(sa, p1, 1.0);
        b.add_duplex_cable(p0, sb, 1.0);
        b.add_duplex_cable(sb, p1, 1.0);
        let topo = b.build().unwrap();
        let mut st = SlottedState::new(&topo, 8);

        // Saturate the sa path.
        st.schedule_comm(
            &topo,
            c(0),
            0.0,
            50.0,
            ProcId(0),
            ProcId(1),
            Routing::Bfs,
            Insertion::Basic,
            Switching::CutThrough,
        )
        .unwrap();
        let via_sa = st.route_of(c(0))[0].to;
        // BFS would tie-break to the same path; modified Dijkstra must
        // pick the other one.
        let arrival = st
            .schedule_comm(
                &topo,
                c(1),
                0.0,
                5.0,
                ProcId(0),
                ProcId(1),
                Routing::ModifiedDijkstra,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap();
        assert_eq!(arrival, 5.0, "took the free path");
        assert_ne!(st.route_of(c(1))[0].to, via_sa);
    }
}
