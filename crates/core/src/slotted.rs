//! Shared link-scheduling state for the slotted schedulers (BA, OIHSA
//! and every ablation in between).
//!
//! [`SlottedState`] owns one [`SlotQueue`] per link plus the
//! per-communication bookkeeping (route and per-hop times) that OIHSA's
//! deferrable-time computation (Lemma 2) needs. It implements:
//!
//! * route selection — BFS minimal (cached; the network is static) or
//!   the paper's modified Dijkstra with a basic-insertion finish-time
//!   probe per link (§4.3);
//! * hop-by-hop placement under link causality with either basic
//!   (first-fit) or optimal insertion (§4.4), keeping every
//!   communication's recorded times in sync when optimal insertion
//!   defers other slots;
//! * exact rollback of basic-insertion placements, which BA's
//!   earliest-finish processor probe requires.
//!
//! # Performance model (DESIGN.md §10)
//!
//! With [`Tuning::route_cache`] on, modified-Dijkstra search state is
//! memoized *across the processor candidates probed for one ready
//! task*: the search trajectory is destination-independent, so the P
//! per-candidate searches from the same source collapse into at most
//! one [`IncrementalDijkstra`] that each candidate merely advances.
//! The cache key includes a link-state **epoch** (bumped by every
//! placement and rollback) and the topology's identity signature, so a
//! cached search is consulted only while the link schedules it probed
//! are provably unchanged — and only between [`SlottedState::checkpoint`]
//! and matching [`SlottedState::restore`] calls, which is exactly the
//! probe loop's schedule/rollback cycle. Every answer is bitwise
//! identical to a fresh search; the differential oracle enforces this.

use crate::config::{Insertion, Routing, Switching, Tuning};
use crate::schedule::SchedError;
use es_linksched::optimal::{optimal_insert_with, InsertScratch};
use es_linksched::overlay::SlotQueueOverlay;
use es_linksched::slot::{Slot, SlotQueue};
use es_linksched::CommId;
use es_net::{Hop, NodeId, ProcId, Topology};
use es_route::{
    bfs_route_with, dijkstra_route, dijkstra_route_with, BfsScratch, DijkstraScratch,
    IncrementalDijkstra, Route,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide route-cache counters (relaxed; they feed the bench
/// report and never influence scheduling).
static ROUTE_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
// TEMP instrumentation
static ROUTE_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide route-cache hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Modified-Dijkstra searches answered by resuming a cached one.
    pub hits: u64,
    /// Searches that had to be opened fresh.
    pub misses: u64,
}

impl CacheStats {
    /// Total cacheable lookups.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from cache (0 when none happened).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// Read the process-wide route-cache counters. Counters only ever
/// increase while the process runs; tests assert on deltas.
#[must_use]
pub fn route_cache_stats() -> CacheStats {
    CacheStats {
        hits: ROUTE_CACHE_HITS.load(Ordering::Relaxed),
        misses: ROUTE_CACHE_MISSES.load(Ordering::Relaxed),
    }
}

/// Reset the process-wide route-cache counters (bench harness only;
/// racy if schedulers run concurrently).
pub fn reset_route_cache_stats() {
    ROUTE_CACHE_HITS.store(0, Ordering::Relaxed);
    ROUTE_CACHE_MISSES.store(0, Ordering::Relaxed);
}

/// Identity of one memoizable modified-Dijkstra search. Two lookups
/// with equal keys are guaranteed to probe identical link schedules
/// (same epoch, same adjacency view) with identical parameters, so
/// resuming the cached search is bitwise-equivalent to a fresh one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct SearchKey {
    /// [`Topology::signature`] of the adjacency view probed.
    topo_sig: u64,
    /// Link-state epoch the search was opened under.
    epoch: u64,
    /// Search source vertex (destination is *not* part of the key —
    /// that is the whole point of [`IncrementalDijkstra`]).
    src: NodeId,
    /// `est.to_bits()` — bitwise, no tolerance.
    est: u64,
    /// `cost.to_bits()`.
    cost: u64,
    switching: Switching,
}

/// One memoized search. Stored in a small Vec scanned linearly: entry
/// count is bounded by the distinct (src, est, cost) triples probed for
/// a single ready task, which is tiny, and Vec order is deterministic
/// (the analyze pass bans hash maps in scheduling hot paths).
#[derive(Clone, Debug)]
struct RouteCacheEntry {
    key: SearchKey,
    search: IncrementalDijkstra<(f64, f64)>,
}

/// FIFO backstop so pathological probe patterns cannot grow the cache
/// without bound; epoch-based pruning keeps it far below this in
/// practice.
const ROUTE_CACHE_CAP: usize = 32;

/// Bookkeeping for one scheduled communication.
#[derive(Clone, Debug, Default)]
struct CommRecord {
    /// The hops taken (empty when unscheduled or local).
    route: Vec<Hop>,
    /// `(start, finish)` on each hop; `None` until that hop is placed.
    times: Vec<Option<(f64, f64)>>,
}

/// Opaque token naming a link-state snapshot, returned by
/// [`SlottedState::checkpoint`]. Restoring asserts (in debug builds)
/// that the caller really rolled the content back to the checkpointed
/// state — the token does not itself restore any slots.
#[derive(Clone, Copy, Debug)]
pub struct StateEpoch {
    epoch: u64,
    #[cfg(debug_assertions)]
    checksum: u64,
}

/// All link schedules plus communication bookkeeping.
#[derive(Clone, Debug)]
pub struct SlottedState {
    queues: Vec<SlotQueue>,
    comms: Vec<CommRecord>,
    /// Cache of BFS routes between vertex pairs. Minimal routes depend
    /// only on the adjacency view, so entries are guarded by the
    /// topology signature below. Ordered map: iteration order must be
    /// deterministic for the analyze/determinism audits.
    bfs_cache: BTreeMap<(NodeId, NodeId), Option<Route>>,
    /// [`Topology::signature`] of the view the BFS cache was filled
    /// from; a different (e.g. masked) view clears it. 0 (unsigned
    /// topology) is never trusted.
    bfs_cache_sig: u64,
    tuning: Tuning,
    /// Monotonically increasing link-state version: bumped by every
    /// placement and rollback. Epoch numbers are never reissued.
    epoch: u64,
    next_epoch: u64,
    /// The epoch the current probe cycle checkpointed at, if any. The
    /// route cache is consulted only while `epoch` equals this — i.e.
    /// while the link schedules are in the exact checkpointed state.
    active_checkpoint: Option<u64>,
    route_cache: Vec<RouteCacheEntry>,
    /// Scratch buffers reused across placements (allocation hoisting;
    /// no behavioural effect).
    bfs_scratch: BfsScratch,
    insert_scratch: InsertScratch,
    dts_scratch: Vec<f64>,
    search_scratch: DijkstraScratch<(f64, f64)>,
}

impl SlottedState {
    /// Fresh state: all links idle; capacity for `comm_count`
    /// communications (one per DAG edge). Uses [`Tuning::default`].
    pub fn new(topo: &Topology, comm_count: usize) -> Self {
        Self::with_tuning(topo, comm_count, Tuning::default())
    }

    /// Fresh state with explicit performance [`Tuning`].
    pub fn with_tuning(topo: &Topology, comm_count: usize, tuning: Tuning) -> Self {
        Self {
            queues: (0..topo.link_count())
                .map(|_| SlotQueue::indexed(tuning.indexed_gaps))
                .collect(),
            comms: vec![CommRecord::default(); comm_count],
            bfs_cache: BTreeMap::new(),
            bfs_cache_sig: topo.signature(),
            tuning,
            epoch: 0,
            next_epoch: 1,
            active_checkpoint: None,
            route_cache: Vec::new(),
            bfs_scratch: BfsScratch::new(),
            insert_scratch: InsertScratch::new(),
            dts_scratch: Vec::new(),
            search_scratch: DijkstraScratch::new(),
        }
    }

    /// The performance tuning this state was built with.
    pub fn tuning(&self) -> Tuning {
        self.tuning
    }

    /// The slot queue of a link (validators and tests peek at these).
    pub fn queue(&self, link: es_net::LinkId) -> &SlotQueue {
        &self.queues[link.index()]
    }

    /// Immutable per-link slot slices, indexed by `LinkId::index()` —
    /// the shared **base** that overlay probing reads. `&[Slot]` is
    /// plain data (`Sync`), so the snapshot crosses worker lanes even
    /// though [`SlotQueue`]'s lazy gap index keeps the queues
    /// themselves `!Sync`.
    pub fn queue_slices(&self) -> Vec<&[Slot]> {
        self.queues.iter().map(SlotQueue::slots).collect()
    }

    /// Recorded `(start, finish)` of `comm` on hop `seq`.
    pub fn hop_times(&self, comm: CommId, seq: usize) -> Option<(f64, f64)> {
        self.comms[comm.0 as usize]
            .times
            .get(seq)
            .copied()
            .flatten()
    }

    /// The committed route of `comm` (empty if unscheduled).
    pub fn route_of(&self, comm: CommId) -> &[Hop] {
        &self.comms[comm.0 as usize].route
    }

    /// Bump the link-state epoch after any queue mutation. Cached
    /// searches from other epochs can only become consultable again
    /// through a [`SlottedState::restore`] to the active checkpoint, so
    /// everything else is pruned here (epochs are never reissued).
    fn touch(&mut self) {
        self.epoch = self.next_epoch;
        self.next_epoch += 1;
        let keep = self.active_checkpoint;
        self.route_cache.retain(|e| Some(e.key.epoch) == keep);
    }

    /// Open a probe cycle: name the current link state and allow the
    /// route cache to serve searches while the state matches it. The
    /// caller promises to return the queues to exactly this state (via
    /// exact rollbacks) before each [`SlottedState::restore`].
    pub fn checkpoint(&mut self) -> StateEpoch {
        self.active_checkpoint = Some(self.epoch);
        let epoch = self.epoch;
        self.route_cache.retain(|e| e.key.epoch == epoch);
        StateEpoch {
            epoch,
            #[cfg(debug_assertions)]
            checksum: self.content_checksum(),
        }
    }

    /// Declare the link state rolled back to `cp`'s snapshot; re-arms
    /// the route cache for the next candidate of the probe cycle.
    pub fn restore(&mut self, cp: StateEpoch) {
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.content_checksum(),
            cp.checksum,
            "restore() without an exact rollback to the checkpointed state"
        );
        self.epoch = cp.epoch;
        self.route_cache.retain(|e| e.key.epoch == cp.epoch);
    }

    /// Order-insensitive digest of all slot content, for the debug
    /// assertion that `restore` only follows exact rollbacks.
    #[cfg(debug_assertions)]
    fn content_checksum(&self) -> u64 {
        let mut h = 0u64;
        for q in &self.queues {
            h = h.wrapping_mul(31).wrapping_add(q.len() as u64);
            for s in q.slots() {
                h ^= s.start.to_bits().rotate_left(17) ^ s.end.to_bits() ^ s.comm.0;
            }
        }
        h
    }

    /// Route and schedule one communication.
    ///
    /// * `est` — earliest start (source task finish time);
    /// * `cost` — communication cost `c(e)`;
    /// * returns the arrival time at the destination processor.
    ///
    /// The route is chosen per `routing`; each hop is placed under link
    /// causality using `insertion`. With [`Insertion::Optimal`],
    /// already-scheduled slots may be deferred within their Lemma-2
    /// slack; the displaced communications' recorded times are updated.
    #[allow(clippy::too_many_arguments)]
    pub fn schedule_comm(
        &mut self,
        topo: &Topology,
        comm: CommId,
        est: f64,
        cost: f64,
        from: ProcId,
        to: ProcId,
        routing: Routing,
        insertion: Insertion,
        switching: Switching,
    ) -> Result<f64, SchedError> {
        debug_assert_ne!(from, to, "local communications never reach the link layer");
        let src = topo.node_of_proc(from);
        let dst = topo.node_of_proc(to);
        let route = self
            .pick_route(topo, src, dst, est, cost, routing, switching)
            .ok_or(SchedError::NoRoute { from, to })?;
        Ok(self.place_on_route(topo, comm, est, cost, route, insertion, switching))
    }

    /// Choose a route per the configured strategy.
    #[allow(clippy::too_many_arguments)]
    fn pick_route(
        &mut self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        est: f64,
        cost: f64,
        routing: Routing,
        switching: Switching,
    ) -> Option<Route> {
        match routing {
            Routing::Bfs => {
                // TWIN(bfs-cache-guard): begin
                let sig = topo.signature();
                if sig == 0 || sig != self.bfs_cache_sig {
                    // A different adjacency view (e.g. a masked repair
                    // topology) or an unsigned one: minimal routes may
                    // differ, so the memoized ones must not be served.
                    self.bfs_cache.clear();
                    self.bfs_cache_sig = sig;
                }
                let scratch = &mut self.bfs_scratch;
                self.bfs_cache
                    .entry((src, dst))
                    .or_insert_with(|| bfs_route_with(topo, src, dst, scratch))
                    .clone()
                // TWIN(bfs-cache-guard): end
            }
            Routing::ModifiedDijkstra => {
                // §4.3: relax by the finish time of this communication
                // on each link, probed with basic insertion against the
                // current schedules. The hop delay is applied uniformly
                // (including the first hop) — a conservative metric;
                // actual placement applies it precisely.
                let queues = &self.queues;
                // TWIN(dijkstra-relax): begin
                let delay = topo.hop_delay();
                let relax = |&(s, f): &(f64, f64), hop: &Hop| {
                    let int = cost / topo.link_speed(hop.link);
                    let bound = match switching {
                        Switching::CutThrough => (s + delay).max(f + delay - int),
                        Switching::StoreAndForward => f + delay,
                    };
                    let start = queues[hop.link.index()].probe(bound, int); // TWIN-OK: serial probes the committed queues directly
                    (start, (start + int).max(f))
                };
                let key = |&(_, f): &(f64, f64)| f;
                // TWIN(dijkstra-relax): end

                let sig = topo.signature();
                let cacheable = self.tuning.route_cache
                    && sig != 0
                    && self.active_checkpoint == Some(self.epoch);
                if cacheable {
                    let k = SearchKey {
                        topo_sig: sig,
                        epoch: self.epoch,
                        src,
                        est: est.to_bits(),
                        cost: cost.to_bits(),
                        switching,
                    };
                    let cache = &mut self.route_cache;
                    let entry = if let Some(i) = cache.iter().position(|e| e.key == k) {
                        ROUTE_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
                        &mut cache[i]
                    } else {
                        ROUTE_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
                        if cache.len() >= ROUTE_CACHE_CAP {
                            cache.remove(0);
                        }
                        cache.push(RouteCacheEntry {
                            key: k,
                            search: IncrementalDijkstra::new(
                                topo.node_count(),
                                src,
                                (est, est),
                                est,
                            ),
                        });
                        cache.last_mut().expect("just pushed")
                    };
                    entry
                        .search
                        .route_to(topo, dst, relax, key)
                        .map(|(route, _)| route)
                } else if self.tuning.route_cache {
                    // Not at a checkpointed state, but the buffer-reuse
                    // half of the optimization still applies: the same
                    // search over hoisted scratch allocations.
                    dijkstra_route_with(
                        topo,
                        src,
                        dst,
                        (est, est),
                        relax,
                        key,
                        &mut self.search_scratch,
                    )
                    .map(|(route, _)| route)
                } else {
                    dijkstra_route(topo, src, dst, (est, est), relax, key).map(|(route, _)| route)
                }
            }
        }
    }

    /// Place a communication on every hop of `route` in order,
    /// maintaining the link causality condition; returns the arrival
    /// time on the last hop.
    fn place_on_route(
        &mut self,
        topo: &Topology,
        comm: CommId,
        est: f64,
        cost: f64,
        route: Route,
        insertion: Insertion,
        switching: Switching,
    ) -> f64 {
        let rec_idx = comm.0 as usize;
        let times = &mut self.comms[rec_idx].times;
        times.clear();
        times.resize(route.len(), None);

        let (mut prev_start, mut prev_finish) = (est, est);
        for (seq, hop) in route.iter().enumerate() {
            // TWIN(hop-bound): begin
            let int = cost / topo.link_speed(hop.link);
            // Per-hop switch latency applies from the second hop on.
            let delay = if seq == 0 { 0.0 } else { topo.hop_delay() };
            // Link causality (§2.2): start no earlier than on the
            // previous link; finish no earlier either — the "virtual
            // start" bound max(t_s(prev), t_f(prev) - int) enforces
            // both at full bandwidth. Store-and-forward waits for the
            // whole message instead.
            let bound = match switching {
                Switching::CutThrough => (prev_start + delay).max(prev_finish + delay - int),
                Switching::StoreAndForward => prev_finish + delay,
            };
            // TWIN(hop-bound): end
            let (start, finish) = match insertion {
                Insertion::Basic => {
                    let queue = &mut self.queues[hop.link.index()];
                    let start = queue.probe(bound, int);
                    queue.commit(comm, seq as u32, start, int);
                    (start, start + int)
                }
                Insertion::Optimal => {
                    deferrable_times_into(
                        &self.queues[hop.link.index()],
                        &self.comms,
                        topo.hop_delay(),
                        &mut self.dts_scratch,
                    );
                    let placement = optimal_insert_with(
                        &mut self.queues[hop.link.index()],
                        comm,
                        seq as u32,
                        bound,
                        int,
                        &self.dts_scratch,
                        &mut self.insert_scratch,
                    );
                    // Propagate deferrals into the displaced
                    // communications' recorded times.
                    for shift in &placement.shifts {
                        let rec = &mut self.comms[shift.comm.0 as usize];
                        rec.times[shift.seq as usize] = Some((shift.new_start, shift.new_end));
                    }
                    (placement.start, placement.end)
                }
            };
            self.comms[rec_idx].times[seq] = Some((start, finish));
            prev_start = start;
            prev_finish = finish;
        }
        // The route is recorded only now, which keeps Lemma-2 deferrable
        // times at the conservative 0 for this comm's own mid-placement
        // slots (their next-hop times are unset either way).
        self.comms[rec_idx].route = route;
        self.touch();
        prev_finish
    }

    /// Remove every slot of `comm` and clear its bookkeeping.
    ///
    /// Exact only for basic-insertion placements (optimal insertion may
    /// have deferred *other* slots, which are not restored); BA's
    /// tentative probe therefore always runs with basic insertion.
    pub fn unschedule(&mut self, comm: CommId) {
        let rec = std::mem::take(&mut self.comms[comm.0 as usize]);
        if self.tuning.indexed_gaps {
            // The recorded per-hop times pin each slot exactly (optimal
            // insertion keeps them updated when it defers slots), so a
            // binary-searched single-slot removal replaces the full
            // scan. Any miss falls back to the reference path — the
            // resulting queues are identical either way.
            for (seq, hop) in rec.route.iter().enumerate() {
                let queue = &mut self.queues[hop.link.index()];
                let removed = rec.times[seq]
                    .is_some_and(|(start, _)| queue.remove_slot_at(comm, seq as u32, start));
                if !removed {
                    queue.remove_comm(comm);
                }
            }
        } else {
            for hop in &rec.route {
                self.queues[hop.link.index()].remove_comm(comm);
            }
        }
        self.touch();
    }

    /// Grow the communication table to hold ids `0..n`. The online
    /// engine assigns each arriving job a fresh contiguous id block
    /// (ids are never reissued, so reservations of live jobs can never
    /// alias a retired job's), and widens the table here before
    /// scheduling the job's edges. Committed link state is untouched —
    /// no epoch bump, caches stay valid.
    pub fn ensure_comm_capacity(&mut self, n: usize) {
        if self.comms.len() < n {
            self.comms.resize(n, CommRecord::default());
        }
    }

    /// Incremental compaction (DESIGN.md §15): release every slot of
    /// the listed *retired* communications through the
    /// [`es_linksched::LinkModel`] trait and clear their bookkeeping,
    /// returning how many slots were dropped. The caller promises the
    /// communications belong to completed jobs whose entire occupancy
    /// lies at or before every future placement's earliest start; the
    /// freed gaps then sit strictly before any future probe window, so
    /// releasing them is semantics-free (the `integration_online`
    /// differential suite pins this bitwise).
    pub fn release_comms(&mut self, comms: &[CommId]) -> usize {
        use es_linksched::LinkModel;
        let mut dropped = 0usize;
        let mut mutated = false;
        for &comm in comms {
            let rec = std::mem::take(&mut self.comms[comm.0 as usize]);
            for hop in &rec.route {
                dropped += LinkModel::release_all(&mut self.queues[hop.link.index()], &[comm]);
            }
            mutated = mutated || !rec.route.is_empty();
        }
        if mutated {
            self.touch();
        }
        dropped
    }

    /// Extract the per-hop times of a scheduled communication (for the
    /// final [`crate::schedule::CommPlacement`]).
    pub fn placement(&self, comm: CommId) -> (Vec<Hop>, Vec<(f64, f64)>) {
        let rec = &self.comms[comm.0 as usize];
        let times = rec
            .times
            .iter()
            .map(|t| t.expect("placement queried for fully scheduled comm"))
            .collect();
        (rec.route.clone(), times)
    }

    /// Check every queue's internal invariants (tests/validation).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, q) in self.queues.iter().enumerate() {
            q.check_invariants()
                .map_err(|e| format!("link L{i}: {e}"))?;
        }
        Ok(())
    }
}

/// Identity of one memoizable overlay search. Unlike [`SearchKey`]
/// there is no epoch or topology signature: a [`ProbeWorkspace`] lives
/// inside a single `pick_by_probe` call (one ready task, one immutable
/// base snapshot, one topology view) and is invalidated wholesale
/// between tasks via [`ProbeWorkspace::begin_candidate`]'s serial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct WorkerSearchKey {
    src: NodeId,
    /// `est.to_bits()` — bitwise, no tolerance.
    est: u64,
    /// `cost.to_bits()`.
    cost: u64,
    switching: Switching,
}

/// Per-lane scratch for speculative overlay probing (DESIGN.md §11).
///
/// Each worker lane owns one workspace for the whole scheduling run;
/// everything in it is clear-don't-drop so steady-state probing does
/// not allocate. It holds the private per-link deltas of the candidate
/// currently being probed plus the lane-local mirrors of the sequential
/// path's caches: a BFS route memo, hoisted Dijkstra/BFS scratch
/// buffers, and the incremental modified-Dijkstra searches that the
/// route cache resumes across candidates of the same task.
#[derive(Clone, Debug)]
pub struct ProbeWorkspace {
    /// Private copy-on-write deltas, indexed like the base snapshot
    /// (`LinkId::index()`). Kept allocated across candidates.
    deltas: Vec<Vec<Slot>>,
    /// Links whose delta is currently non-empty.
    touched: Vec<usize>,
    /// Lane-local mirror of [`SlottedState::bfs_cache`] (same
    /// signature guard); survives across tasks — minimal routes only
    /// depend on the adjacency view.
    bfs_cache: BTreeMap<(NodeId, NodeId), Option<Route>>,
    bfs_cache_sig: u64,
    bfs_scratch: BfsScratch,
    search_scratch: DijkstraScratch<(f64, f64)>,
    /// Lane-local incremental searches, valid for one probe cycle.
    incr: Vec<(WorkerSearchKey, IncrementalDijkstra<(f64, f64)>)>,
    /// The probe cycle (task) `incr` belongs to.
    probe_serial: u64,
}

impl ProbeWorkspace {
    /// Fresh workspace for a topology with `link_count` links.
    #[must_use]
    pub fn new(link_count: usize) -> Self {
        Self {
            deltas: vec![Vec::new(); link_count],
            touched: Vec::new(),
            bfs_cache: BTreeMap::new(),
            bfs_cache_sig: 0,
            bfs_scratch: BfsScratch::new(),
            search_scratch: DijkstraScratch::new(),
            incr: Vec::new(),
            probe_serial: 0,
        }
    }

    /// Reset for the next candidate: drop its deltas (keeping their
    /// buffers) and, when `probe_serial` names a new probe cycle (a new
    /// ready task), invalidate the incremental searches — they probed
    /// a snapshot that no longer exists.
    pub fn begin_candidate(&mut self, probe_serial: u64) {
        for &l in &self.touched {
            self.deltas[l].clear();
        }
        self.touched.clear();
        if self.probe_serial != probe_serial {
            self.probe_serial = probe_serial;
            self.incr.clear();
        }
    }
}

/// A probe-only view of the link state: an immutable base snapshot
/// (per-link slot slices from [`SlottedState::queue_slices`]) plus one
/// lane's private [`ProbeWorkspace`] deltas. Supports exactly what the
/// earliest-finish processor probe needs — basic-insertion
/// `schedule_comm` — and answers it bitwise identically to the
/// sequential mutate-and-rollback path by construction: overlay probes
/// equal real-queue probes ([`SlotQueueOverlay`]'s contract) and the
/// route searches run the very same relax/key closures.
pub struct OverlayState<'a> {
    base: &'a [&'a [Slot]],
    tuning: Tuning,
    ws: &'a mut ProbeWorkspace,
}

impl<'a> OverlayState<'a> {
    /// Wrap a base snapshot and one lane's workspace. The workspace
    /// must have been created for the same link count and
    /// [`ProbeWorkspace::begin_candidate`]-reset by the caller.
    pub fn new(base: &'a [&'a [Slot]], tuning: Tuning, ws: &'a mut ProbeWorkspace) -> Self {
        debug_assert_eq!(base.len(), ws.deltas.len(), "snapshot/workspace link count");
        Self { base, tuning, ws }
    }

    /// Probe-only twin of [`SlottedState::schedule_comm`] with
    /// [`Insertion::Basic`] (the only insertion probes ever use):
    /// routes the communication and places every hop into this lane's
    /// private deltas, returning the arrival time at the destination.
    #[allow(clippy::too_many_arguments)]
    pub fn schedule_comm(
        &mut self,
        topo: &Topology,
        comm: CommId,
        est: f64,
        cost: f64,
        from: ProcId,
        to: ProcId,
        routing: Routing,
        switching: Switching,
    ) -> Result<f64, SchedError> {
        debug_assert_ne!(from, to, "local communications never reach the link layer");
        let src = topo.node_of_proc(from);
        let dst = topo.node_of_proc(to);
        let route = self
            .pick_route(topo, src, dst, est, cost, routing, switching)
            .ok_or(SchedError::NoRoute { from, to })?;
        Ok(self.place_on_route(topo, comm, est, cost, &route, switching))
    }

    /// Overlay mirror of [`SlottedState::pick_route`] — statement for
    /// statement, with queue probes going through the merged view.
    #[allow(clippy::too_many_arguments)]
    fn pick_route(
        &mut self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        est: f64,
        cost: f64,
        routing: Routing,
        switching: Switching,
    ) -> Option<Route> {
        match routing {
            Routing::Bfs => {
                let ws = &mut *self.ws;
                // TWIN(bfs-cache-guard): begin map ws=self
                let sig = topo.signature();
                if sig == 0 || sig != ws.bfs_cache_sig {
                    ws.bfs_cache.clear();
                    ws.bfs_cache_sig = sig;
                }
                let scratch = &mut ws.bfs_scratch;
                ws.bfs_cache
                    .entry((src, dst))
                    .or_insert_with(|| bfs_route_with(topo, src, dst, scratch))
                    .clone()
                // TWIN(bfs-cache-guard): end
            }
            Routing::ModifiedDijkstra => {
                let base = self.base;
                let ws = &mut *self.ws;
                let deltas = &ws.deltas;
                // TWIN(dijkstra-relax): begin
                let delay = topo.hop_delay();
                let relax = |&(s, f): &(f64, f64), hop: &Hop| {
                    let int = cost / topo.link_speed(hop.link);
                    let bound = match switching {
                        Switching::CutThrough => (s + delay).max(f + delay - int),
                        Switching::StoreAndForward => f + delay,
                    };
                    let l = hop.link.index(); // TWIN-OK: overlay indexes per-link base/delta pairs
                    let start = SlotQueueOverlay::new(base[l], &deltas[l]).probe(bound, int); // TWIN-OK: overlay probes the merged base+delta view
                    (start, (start + int).max(f))
                };
                let key = |&(_, f): &(f64, f64)| f;
                // TWIN(dijkstra-relax): end

                // Mirror of the sequential cacheability window: a
                // memoized search is resumable only while the link
                // state it probed is provably unchanged. Sequentially
                // that is `epoch == checkpoint`; here it is "no private
                // delta yet" — each candidate's first searches probe
                // the pristine snapshot, exactly like each sequential
                // candidate right after `restore()`.
                let cacheable =
                    self.tuning.route_cache && topo.signature() != 0 && ws.touched.is_empty();
                if cacheable {
                    let k = WorkerSearchKey {
                        src,
                        est: est.to_bits(),
                        cost: cost.to_bits(),
                        switching,
                    };
                    let cache = &mut ws.incr;
                    let entry = if let Some(i) = cache.iter().position(|(key, _)| *key == k) {
                        ROUTE_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
                        &mut cache[i].1
                    } else {
                        ROUTE_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
                        if cache.len() >= ROUTE_CACHE_CAP {
                            cache.remove(0);
                        }
                        cache.push((
                            k,
                            IncrementalDijkstra::new(topo.node_count(), src, (est, est), est),
                        ));
                        &mut cache.last_mut().expect("just pushed").1
                    };
                    entry
                        .route_to(topo, dst, relax, key)
                        .map(|(route, _)| route)
                } else if self.tuning.route_cache {
                    dijkstra_route_with(
                        topo,
                        src,
                        dst,
                        (est, est),
                        relax,
                        key,
                        &mut ws.search_scratch,
                    )
                    .map(|(route, _)| route)
                } else {
                    dijkstra_route(topo, src, dst, (est, est), relax, key).map(|(route, _)| route)
                }
            }
        }
    }

    /// Overlay mirror of [`SlottedState::place_on_route`], basic
    /// insertion only: per-hop probe against the merged view, commit
    /// into the private delta. Returns the arrival on the last hop.
    fn place_on_route(
        &mut self,
        topo: &Topology,
        comm: CommId,
        est: f64,
        cost: f64,
        route: &Route,
        switching: Switching,
    ) -> f64 {
        let ws = &mut *self.ws;
        let (mut prev_start, mut prev_finish) = (est, est);
        for (seq, hop) in route.iter().enumerate() {
            // TWIN(hop-bound): begin
            let int = cost / topo.link_speed(hop.link);
            // Per-hop switch latency applies from the second hop on.
            let delay = if seq == 0 { 0.0 } else { topo.hop_delay() };
            let bound = match switching {
                Switching::CutThrough => (prev_start + delay).max(prev_finish + delay - int),
                Switching::StoreAndForward => prev_finish + delay,
            };
            // TWIN(hop-bound): end
            let l = hop.link.index();
            let delta = &mut ws.deltas[l];
            let start = SlotQueueOverlay::new(self.base[l], delta).probe(bound, int);
            if delta.is_empty() {
                ws.touched.push(l);
            }
            SlotQueueOverlay::commit_into(self.base[l], delta, comm, seq as u32, start, int);
            prev_start = start;
            prev_finish = start + int;
        }
        prev_finish
    }
}

/// Lemma 2 deferrable times for every slot of one queue, into a
/// caller-owned buffer (the buffer is cleared first).
///
/// A slot of communication `c` at route position `seq` can defer by
/// `min( t_s(c, next) - t_s(c, here), t_f(c, next) - t_f(c, here) )`
/// minus the per-hop switch delay (the next hop must stay at least
/// `hop_delay` behind this one — the audit's strengthened causality
/// condition), where `next` is `c`'s next route hop — 0 when this is
/// the last hop (the arrival may already gate the destination task),
/// and 0 when the next hop is not yet placed (conservative; happens
/// only mid-placement of `c` itself). With `hop_delay == 0` the
/// subtraction is exact, so delay-free topologies are bit-unchanged.
fn deferrable_times_into(
    queue: &SlotQueue,
    comms: &[CommRecord],
    hop_delay: f64,
    out: &mut Vec<f64>,
) {
    out.clear();
    out.extend(queue.slots().iter().map(|slot| {
        let rec = &comms[slot.comm.0 as usize];
        let seq = slot.seq as usize;
        if seq + 1 >= rec.route.len() {
            return 0.0;
        }
        match rec.times.get(seq + 1).copied().flatten() {
            None => 0.0,
            Some((next_start, next_finish)) => {
                let dt = (next_start - slot.start).min(next_finish - slot.end) - hop_delay;
                dt.max(0.0)
            }
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use es_net::Topology;

    /// p0 -sw- p1 line with unit speeds.
    fn line() -> Topology {
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        let sw = b.add_switch();
        b.add_duplex_cable(p0, sw, 1.0);
        b.add_duplex_cable(sw, p1, 1.0);
        b.build().unwrap()
    }

    fn c(n: u64) -> CommId {
        CommId(n)
    }

    #[test]
    fn single_comm_cut_through() {
        let topo = line();
        let mut st = SlottedState::new(&topo, 4);
        let arrival = st
            .schedule_comm(
                &topo,
                c(0),
                2.0,
                6.0,
                ProcId(0),
                ProcId(1),
                Routing::Bfs,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap();
        // Two unit-speed hops, cut-through: both [2, 8).
        assert_eq!(arrival, 8.0);
        let (route, times) = st.placement(c(0));
        assert_eq!(route.len(), 2);
        assert_eq!(times, vec![(2.0, 8.0), (2.0, 8.0)]);
    }

    #[test]
    fn second_comm_queues_behind_first() {
        let topo = line();
        let mut st = SlottedState::new(&topo, 4);
        st.schedule_comm(
            &topo,
            c(0),
            0.0,
            5.0,
            ProcId(0),
            ProcId(1),
            Routing::Bfs,
            Insertion::Basic,
            Switching::CutThrough,
        )
        .unwrap();
        let arrival = st
            .schedule_comm(
                &topo,
                c(1),
                0.0,
                5.0,
                ProcId(0),
                ProcId(1),
                Routing::Bfs,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap();
        // First link busy [0,5): second transfer starts at 5.
        assert_eq!(arrival, 10.0);
        st.check_invariants().unwrap();
    }

    #[test]
    fn heterogeneous_hops_respect_causality() {
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        let sw = b.add_switch();
        b.add_duplex_cable(p0, sw, 1.0); // slow: int = cost
        b.add_duplex_cable(sw, p1, 4.0); // fast: int = cost/4
        let topo = b.build().unwrap();
        let mut st = SlottedState::new(&topo, 2);
        let arrival = st
            .schedule_comm(
                &topo,
                c(0),
                0.0,
                8.0,
                ProcId(0),
                ProcId(1),
                Routing::Bfs,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap();
        let (_, times) = st.placement(c(0));
        // Slow hop [0,8); fast hop int=2 with virtual start 6: [6,8).
        assert_eq!(times[0], (0.0, 8.0));
        assert_eq!(times[1], (6.0, 8.0));
        assert_eq!(arrival, 8.0);
        // Causality: start and finish non-decreasing along the route.
        assert!(times[1].0 >= times[0].0);
        assert!(times[1].1 >= times[0].1);
    }

    #[test]
    fn unschedule_rolls_back_exactly() {
        let topo = line();
        let mut st = SlottedState::new(&topo, 4);
        st.schedule_comm(
            &topo,
            c(0),
            0.0,
            5.0,
            ProcId(0),
            ProcId(1),
            Routing::Bfs,
            Insertion::Basic,
            Switching::CutThrough,
        )
        .unwrap();
        let a1 = st
            .schedule_comm(
                &topo,
                c(1),
                0.0,
                3.0,
                ProcId(0),
                ProcId(1),
                Routing::Bfs,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap();
        st.unschedule(c(1));
        let a2 = st
            .schedule_comm(
                &topo,
                c(1),
                0.0,
                3.0,
                ProcId(0),
                ProcId(1),
                Routing::Bfs,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap();
        assert_eq!(a1, a2, "re-scheduling after rollback is deterministic");
        assert!(st.route_of(c(1)).len() == 2);
    }

    #[test]
    fn no_route_is_an_error() {
        let mut b = Topology::builder();
        b.add_processor(1.0);
        b.add_processor(1.0);
        let topo = b.build().unwrap();
        let mut st = SlottedState::new(&topo, 1);
        let err = st
            .schedule_comm(
                &topo,
                c(0),
                0.0,
                1.0,
                ProcId(0),
                ProcId(1),
                Routing::Bfs,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap_err();
        assert_eq!(
            err,
            SchedError::NoRoute {
                from: ProcId(0),
                to: ProcId(1)
            }
        );
    }

    #[test]
    fn optimal_insertion_defers_slot_with_downstream_slack() {
        let topo = line();
        let mut st = SlottedState::new(&topo, 8);
        // comm 0: cost 4 over both hops; on the first link it sits at
        // [0,4), on the second [0,4).
        st.schedule_comm(
            &topo,
            c(0),
            0.0,
            4.0,
            ProcId(0),
            ProcId(1),
            Routing::Bfs,
            Insertion::Basic,
            Switching::CutThrough,
        )
        .unwrap();
        // comm 1: queues behind comm 0 on both links: first link [4,8),
        // second [4,8). Its first-link slot has slack 0 (start/finish
        // equal on both links) — deferral impossible; comm 2 must queue.
        st.schedule_comm(
            &topo,
            c(1),
            0.0,
            4.0,
            ProcId(0),
            ProcId(1),
            Routing::Bfs,
            Insertion::Basic,
            Switching::CutThrough,
        )
        .unwrap();
        let arrival = st
            .schedule_comm(
                &topo,
                c(2),
                0.0,
                2.0,
                ProcId(0),
                ProcId(1),
                Routing::Bfs,
                Insertion::Optimal,
                Switching::CutThrough,
            )
            .unwrap();
        assert_eq!(arrival, 10.0);
        st.check_invariants().unwrap();
    }

    #[test]
    fn optimal_insertion_uses_real_slack() {
        // Build slack explicitly: a 3-link chain where the middle
        // transfer is delayed downstream, giving its first-hop slot
        // real deferrable time.
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        let (p2, _) = b.add_processor(1.0);
        let sw = b.add_switch();
        b.add_duplex_cable(p0, sw, 1.0);
        b.add_duplex_cable(sw, p1, 1.0);
        b.add_duplex_cable(sw, p2, 1.0);
        let topo = b.build().unwrap();
        let mut st = SlottedState::new(&topo, 8);

        // comm 0 congests sw->p1 with [0, 10).
        st.schedule_comm(
            &topo,
            c(0),
            0.0,
            10.0,
            ProcId(0),
            ProcId(1),
            Routing::Bfs,
            Insertion::Basic,
            Switching::CutThrough,
        )
        .unwrap();
        // comm 1 (p0 -> p1, cost 4): p0->sw is busy [0,10) from comm 0
        // too... actually comm 0 occupies p0->sw [0,10) as well, so
        // comm 1 sits at [10,14) on p0->sw and [10,14) on sw->p1.
        st.schedule_comm(
            &topo,
            c(1),
            0.0,
            4.0,
            ProcId(0),
            ProcId(1),
            Routing::Bfs,
            Insertion::Basic,
            Switching::CutThrough,
        )
        .unwrap();
        let (_, t1) = st.placement(c(1));
        assert_eq!(t1[0], (10.0, 14.0));

        // comm 2 (p0 -> p2, cost 6) with optimal insertion: comm 1's
        // slot on p0->sw has zero slack (its next-hop times equal), so
        // no deferral; comm 2 appends at 14 on p0->sw... but BFS route
        // p0->sw->p2 only shares the first link.
        let arrival = st
            .schedule_comm(
                &topo,
                c(2),
                0.0,
                6.0,
                ProcId(0),
                ProcId(2),
                Routing::Bfs,
                Insertion::Optimal,
                Switching::CutThrough,
            )
            .unwrap();
        assert_eq!(arrival, 20.0);
        st.check_invariants().unwrap();
    }

    /// p0 -sw- p1 line with unit speeds and a per-hop switch delay.
    fn delayed_line(delay: f64) -> Topology {
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        let sw = b.add_switch();
        b.add_duplex_cable(p0, sw, 1.0);
        b.add_duplex_cable(sw, p1, 1.0);
        b.set_hop_delay(delay);
        b.build().unwrap()
    }

    #[test]
    fn deferrable_times_subtract_the_hop_delay() {
        let topo = delayed_line(0.5);
        let mut st = SlottedState::new(&topo, 4);
        // Store-and-forward, cost 4: hop 0 at [0,4), hop 1 at
        // [4.5, 8.5) (full message + 0.5 switch delay).
        st.schedule_comm(
            &topo,
            c(0),
            0.0,
            4.0,
            ProcId(0),
            ProcId(1),
            Routing::Bfs,
            Insertion::Basic,
            Switching::StoreAndForward,
        )
        .unwrap();
        let (_, times) = st.placement(c(0));
        assert_eq!(times, vec![(0.0, 4.0), (4.5, 8.5)]);
        // Hop 0 may defer by 4.0, not 4.5: at [4,8) its next hop is
        // still the mandatory 0.5 behind on both start and finish.
        let mut dts = Vec::new();
        deferrable_times_into(&st.queues[0], &st.comms, topo.hop_delay(), &mut dts);
        assert_eq!(dts, vec![4.0]);
    }

    #[test]
    fn optimal_insertion_keeps_the_hop_delay_gap() {
        // Regression: the deferral margin must respect the per-hop
        // switch delay. With cut-through on a delayed line, comm 0's
        // first-hop slot [0,4) runs exactly 0.5 ahead of its second
        // hop [0.5,4.5); without the hop-delay subtraction, optimal
        // insertion deferred it onto its own next hop's window to
        // squeeze comm 2 in at [0,0.5), and the audit flagged the
        // collapsed gap.
        let topo = delayed_line(0.5);
        let mut st = SlottedState::new(&topo, 8);
        for id in 0..2 {
            st.schedule_comm(
                &topo,
                c(id),
                0.0,
                4.0,
                ProcId(0),
                ProcId(1),
                Routing::Bfs,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap();
        }
        let arrival = st
            .schedule_comm(
                &topo,
                c(2),
                0.0,
                0.5,
                ProcId(0),
                ProcId(1),
                Routing::Bfs,
                Insertion::Optimal,
                Switching::CutThrough,
            )
            .unwrap();
        // No slack exists once the delay is honored: comm 2 queues at
        // the tail instead of displacing comm 0.
        assert_eq!(arrival, 9.0);
        for id in 0..3 {
            let (route, times) = st.placement(c(id));
            assert_eq!(route.len(), 2);
            for k in 1..times.len() {
                assert!(
                    times[k].0 >= times[k - 1].0 + 0.5 - 1e-9
                        && times[k].1 >= times[k - 1].1 + 0.5 - 1e-9,
                    "comm {id}: hop {k} window {:?} closer than the hop delay to {:?}",
                    times[k],
                    times[k - 1]
                );
            }
        }
        st.check_invariants().unwrap();
    }

    #[test]
    fn modified_dijkstra_routes_around_congestion() {
        // Two disjoint switch paths between p0 and p1.
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        let sa = b.add_switch();
        let sb = b.add_switch();
        b.add_duplex_cable(p0, sa, 1.0);
        b.add_duplex_cable(sa, p1, 1.0);
        b.add_duplex_cable(p0, sb, 1.0);
        b.add_duplex_cable(sb, p1, 1.0);
        let topo = b.build().unwrap();
        let mut st = SlottedState::new(&topo, 8);

        // Saturate the sa path.
        st.schedule_comm(
            &topo,
            c(0),
            0.0,
            50.0,
            ProcId(0),
            ProcId(1),
            Routing::Bfs,
            Insertion::Basic,
            Switching::CutThrough,
        )
        .unwrap();
        let via_sa = st.route_of(c(0))[0].to;
        // BFS would tie-break to the same path; modified Dijkstra must
        // pick the other one.
        let arrival = st
            .schedule_comm(
                &topo,
                c(1),
                0.0,
                5.0,
                ProcId(0),
                ProcId(1),
                Routing::ModifiedDijkstra,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap();
        assert_eq!(arrival, 5.0, "took the free path");
        assert_ne!(st.route_of(c(1))[0].to, via_sa);
    }

    #[test]
    fn route_cache_reuses_search_across_probe_candidates() {
        // Probe-cycle pattern: checkpoint, then repeatedly schedule the
        // same communication, roll it back exactly, and restore. The
        // second and later searches must be served from cache and yield
        // bitwise-identical results.
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        let sa = b.add_switch();
        let sb = b.add_switch();
        b.add_duplex_cable(p0, sa, 1.0);
        b.add_duplex_cable(sa, p1, 1.0);
        b.add_duplex_cable(p0, sb, 1.0);
        b.add_duplex_cable(sb, p1, 1.0);
        let topo = b.build().unwrap();

        let before = route_cache_stats();
        let mut st = SlottedState::with_tuning(&topo, 8, Tuning::optimized());
        st.schedule_comm(
            &topo,
            c(0),
            0.0,
            20.0,
            ProcId(0),
            ProcId(1),
            Routing::ModifiedDijkstra,
            Insertion::Basic,
            Switching::CutThrough,
        )
        .unwrap();

        let cp = st.checkpoint();
        let mut arrivals = Vec::new();
        for _ in 0..3 {
            let a = st
                .schedule_comm(
                    &topo,
                    c(1),
                    1.0,
                    7.0,
                    ProcId(0),
                    ProcId(1),
                    Routing::ModifiedDijkstra,
                    Insertion::Basic,
                    Switching::CutThrough,
                )
                .unwrap();
            arrivals.push(a);
            st.unschedule(c(1));
            st.restore(cp);
        }
        assert_eq!(arrivals[0].to_bits(), arrivals[1].to_bits());
        assert_eq!(arrivals[0].to_bits(), arrivals[2].to_bits());

        let after = route_cache_stats();
        // Counters are process-global and tests run in parallel, so
        // only delta lower bounds are safe to assert.
        assert!(after.misses > before.misses, "first search misses");
        assert!(after.hits >= before.hits + 2, "repeat searches hit");
    }

    #[test]
    fn route_cache_is_inert_without_checkpoint() {
        // HybridStatic schedulers never checkpoint; searches must not
        // consult (or populate) the cache, and mutations between calls
        // must yield exactly the reference answers.
        let topo = line();
        let mut opt = SlottedState::with_tuning(&topo, 8, Tuning::optimized());
        let mut refr = SlottedState::with_tuning(&topo, 8, Tuning::reference());
        for (i, cost) in [5.0, 3.0, 9.0, 2.0].into_iter().enumerate() {
            let a = opt
                .schedule_comm(
                    &topo,
                    c(i as u64),
                    0.0,
                    cost,
                    ProcId(0),
                    ProcId(1),
                    Routing::ModifiedDijkstra,
                    Insertion::Optimal,
                    Switching::CutThrough,
                )
                .unwrap();
            let b = refr
                .schedule_comm(
                    &topo,
                    c(i as u64),
                    0.0,
                    cost,
                    ProcId(0),
                    ProcId(1),
                    Routing::ModifiedDijkstra,
                    Insertion::Optimal,
                    Switching::CutThrough,
                )
                .unwrap();
            assert_eq!(a.to_bits(), b.to_bits());
            let (ra, ta) = opt.placement(c(i as u64));
            let (rb, tb) = refr.placement(c(i as u64));
            assert_eq!(ra, rb);
            assert_eq!(ta.len(), tb.len());
            for (x, y) in ta.iter().zip(&tb) {
                assert_eq!(x.0.to_bits(), y.0.to_bits());
                assert_eq!(x.1.to_bits(), y.1.to_bits());
            }
        }
        assert!(opt.route_cache.is_empty(), "no checkpoint, no cache");
    }

    #[test]
    fn masked_view_invalidates_bfs_cache() {
        // Two disjoint paths; cache a BFS route, then mask the link it
        // used. The next lookup must not serve the stale route.
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        let sa = b.add_switch();
        let sb = b.add_switch();
        b.add_duplex_cable(p0, sa, 1.0);
        b.add_duplex_cable(sa, p1, 1.0);
        b.add_duplex_cable(p0, sb, 1.0);
        b.add_duplex_cable(sb, p1, 1.0);
        let topo = b.build().unwrap();
        let src = topo.node_of_proc(ProcId(0));
        let dst = topo.node_of_proc(ProcId(1));

        let mut st = SlottedState::with_tuning(&topo, 4, Tuning::optimized());
        let first = st
            .pick_route(
                &topo,
                src,
                dst,
                0.0,
                1.0,
                Routing::Bfs,
                Switching::CutThrough,
            )
            .unwrap();
        let used = first[0].link;
        let masked = topo.masked(|l| l == used);
        let rerouted = st
            .pick_route(
                &masked,
                src,
                dst,
                0.0,
                1.0,
                Routing::Bfs,
                Switching::CutThrough,
            )
            .unwrap();
        assert!(
            rerouted.iter().all(|h| h.link != used),
            "stale cached route served across a masked view"
        );
        // And back: the original view gets its own fresh fill again.
        let back = st
            .pick_route(
                &topo,
                src,
                dst,
                0.0,
                1.0,
                Routing::Bfs,
                Switching::CutThrough,
            )
            .unwrap();
        assert_eq!(back, first);
    }

    /// Two disjoint switch paths p0 -> p1 with some traffic preloaded,
    /// so route probes actually discriminate.
    fn congested_pair() -> (Topology, SlottedState) {
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(2.0);
        let sa = b.add_switch();
        let sb = b.add_switch();
        b.add_duplex_cable(p0, sa, 1.0);
        b.add_duplex_cable(sa, p1, 2.0);
        b.add_duplex_cable(p0, sb, 1.0);
        b.add_duplex_cable(sb, p1, 1.0);
        let topo = b.build().unwrap();
        let mut st = SlottedState::with_tuning(&topo, 32, Tuning::optimized());
        for (i, cost) in [20.0, 7.0].into_iter().enumerate() {
            st.schedule_comm(
                &topo,
                c(i as u64),
                0.0,
                cost,
                ProcId(0),
                ProcId(1),
                Routing::ModifiedDijkstra,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap();
        }
        (topo, st)
    }

    /// The overlay probe must answer exactly what the sequential
    /// schedule-then-rollback cycle answers, for every routing and
    /// switching mode, across repeated candidates of one probe cycle.
    #[test]
    fn overlay_probe_matches_sequential_probe() {
        let (topo, mut st) = congested_pair();
        let mut ws = ProbeWorkspace::new(topo.link_count());
        for (serial, (est, cost)) in [(1.0, 5.0), (0.0, 9.0), (2.5, 1.5)].into_iter().enumerate() {
            for routing in [Routing::Bfs, Routing::ModifiedDijkstra] {
                for switching in [Switching::CutThrough, Switching::StoreAndForward] {
                    // Sequential twin: schedule, record, roll back.
                    let cp = st.checkpoint();
                    let mut expected = Vec::new();
                    for _candidate in 0..3 {
                        let a = st
                            .schedule_comm(
                                &topo,
                                c(9),
                                est,
                                cost,
                                ProcId(0),
                                ProcId(1),
                                routing,
                                Insertion::Basic,
                                switching,
                            )
                            .unwrap();
                        expected.push(a);
                        st.unschedule(c(9));
                        st.restore(cp);
                    }
                    // Overlay probes of the same snapshot.
                    let snap = st.queue_slices();
                    for &e in &expected {
                        ws.begin_candidate(serial as u64 + 1);
                        let mut ov = OverlayState::new(&snap, st.tuning(), &mut ws);
                        let a = ov
                            .schedule_comm(
                                &topo,
                                c(9),
                                est,
                                cost,
                                ProcId(0),
                                ProcId(1),
                                routing,
                                switching,
                            )
                            .unwrap();
                        assert_eq!(
                            a.to_bits(),
                            e.to_bits(),
                            "overlay vs sequential ({routing:?}/{switching:?})"
                        );
                    }
                }
            }
        }
    }

    /// Within one candidate, consecutive probed communications must see
    /// each other (delta accumulation), exactly like the sequential
    /// path's committed-then-rolled-back placements.
    #[test]
    fn overlay_accumulates_deltas_like_sequential_commits() {
        let (topo, mut st) = congested_pair();
        let probes = [(c(8), 0.0, 6.0), (c(9), 1.0, 6.0), (c(10), 2.0, 4.0)];

        let cp = st.checkpoint();
        let mut expected = Vec::new();
        for &(comm, est, cost) in &probes {
            let a = st
                .schedule_comm(
                    &topo,
                    comm,
                    est,
                    cost,
                    ProcId(0),
                    ProcId(1),
                    Routing::ModifiedDijkstra,
                    Insertion::Basic,
                    Switching::CutThrough,
                )
                .unwrap();
            expected.push(a);
        }
        for &(comm, _, _) in probes.iter().rev() {
            st.unschedule(comm);
        }
        st.restore(cp);

        let snap = st.queue_slices();
        let mut ws = ProbeWorkspace::new(topo.link_count());
        ws.begin_candidate(1);
        let mut ov = OverlayState::new(&snap, st.tuning(), &mut ws);
        for (&(comm, est, cost), &e) in probes.iter().zip(&expected) {
            let a = ov
                .schedule_comm(
                    &topo,
                    comm,
                    est,
                    cost,
                    ProcId(0),
                    ProcId(1),
                    Routing::ModifiedDijkstra,
                    Switching::CutThrough,
                )
                .unwrap();
            assert_eq!(a.to_bits(), e.to_bits(), "delta accumulation diverged");
        }
        // A fresh candidate starts from the pristine snapshot again.
        ws.begin_candidate(1);
        let mut ov = OverlayState::new(&snap, st.tuning(), &mut ws);
        let a = ov
            .schedule_comm(
                &topo,
                c(8),
                0.0,
                6.0,
                ProcId(0),
                ProcId(1),
                Routing::ModifiedDijkstra,
                Switching::CutThrough,
            )
            .unwrap();
        assert_eq!(a.to_bits(), expected[0].to_bits());
    }
}
