//! Shared link-scheduling state for the slotted schedulers (BA, OIHSA
//! and every ablation in between).
//!
//! [`SlottedState`] owns one [`SlotQueue`] per link plus the
//! per-communication bookkeeping (route and per-hop times) that OIHSA's
//! deferrable-time computation (Lemma 2) needs. It implements:
//!
//! * route selection — BFS minimal (cached; the network is static) or
//!   the paper's modified Dijkstra with a basic-insertion finish-time
//!   probe per link (§4.3);
//! * hop-by-hop placement under link causality with either basic
//!   (first-fit) or optimal insertion (§4.4), keeping every
//!   communication's recorded times in sync when optimal insertion
//!   defers other slots;
//! * exact rollback of basic-insertion placements, which BA's
//!   earliest-finish processor probe requires.
//!
//! # Performance model (DESIGN.md §10)
//!
//! With [`Tuning::route_cache`] on, modified-Dijkstra search state is
//! memoized *across the processor candidates probed for one ready
//! task*: the search trajectory is destination-independent, so the P
//! per-candidate searches from the same source collapse into at most
//! one [`IncrementalDijkstra`] that each candidate merely advances.
//! The cache key includes a link-state **epoch** (bumped by every
//! placement and rollback) and the topology's identity signature, so a
//! cached search is consulted only while the link schedules it probed
//! are provably unchanged — and only between [`SlottedState::checkpoint`]
//! and matching [`SlottedState::restore`] calls, which is exactly the
//! probe loop's schedule/rollback cycle. Every answer is bitwise
//! identical to a fresh search; the differential oracle enforces this.

use crate::config::{Insertion, Routing, Switching, Tuning};
use crate::schedule::SchedError;
use es_linksched::optimal::{optimal_insert_with, InsertScratch};
use es_linksched::overlay::SlotQueueOverlay;
use es_linksched::slot::{QueueSnapArena, Slot, SlotQueue, SnapWindow};
use es_linksched::CommId;
use es_net::{Hop, NodeId, ProcId, Topology};
use es_route::{
    bfs_route_with, dijkstra_route, dijkstra_route_into_with, BfsScratch, DijkstraScratch,
    IncrementalDijkstra, Route,
};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide route-cache counters (relaxed; they feed the bench
/// report and never influence scheduling).
static ROUTE_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static ROUTE_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide route-cache hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Modified-Dijkstra searches answered by resuming a cached one.
    pub hits: u64,
    /// Searches that had to be opened fresh.
    pub misses: u64,
}

impl CacheStats {
    /// Total cacheable lookups.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from cache (0 when none happened).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// Read the process-wide route-cache counters. Counters only ever
/// increase while the process runs; tests assert on deltas.
#[must_use]
pub fn route_cache_stats() -> CacheStats {
    CacheStats {
        hits: ROUTE_CACHE_HITS.load(Ordering::Relaxed),
        misses: ROUTE_CACHE_MISSES.load(Ordering::Relaxed),
    }
}

/// Reset the process-wide route-cache counters (bench harness only;
/// racy if schedulers run concurrently).
pub fn reset_route_cache_stats() {
    ROUTE_CACHE_HITS.store(0, Ordering::Relaxed);
    ROUTE_CACHE_MISSES.store(0, Ordering::Relaxed);
}

/// Identity of one memoizable modified-Dijkstra search. Two lookups
/// with equal keys are guaranteed to probe identical link schedules
/// (same epoch, same adjacency view) with identical parameters, so
/// resuming the cached search is bitwise-equivalent to a fresh one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct SearchKey {
    /// [`Topology::signature`] of the adjacency view probed.
    topo_sig: u64,
    /// Link-state epoch the search was opened under.
    epoch: u64,
    /// Search source vertex (destination is *not* part of the key —
    /// that is the whole point of [`IncrementalDijkstra`]).
    src: NodeId,
    /// `est.to_bits()` — bitwise, no tolerance.
    est: u64,
    /// `cost.to_bits()`.
    cost: u64,
    switching: Switching,
}

/// One memoized search. Stored in a small Vec scanned linearly: entry
/// count is bounded by the distinct (src, est, cost) triples probed for
/// a single ready task, which is tiny, and Vec order is deterministic
/// (the analyze pass bans hash maps in scheduling hot paths).
#[derive(Clone, Debug)]
struct RouteCacheEntry {
    key: SearchKey,
    search: IncrementalDijkstra<(f64, f64)>,
}

/// FIFO backstop so pathological probe patterns cannot grow the cache
/// without bound; epoch-based pruning keeps it far below this in
/// practice.
const ROUTE_CACHE_CAP: usize = 32;

/// Relative cost of rewriting one saved slot on an Import-mode restore
/// (several linear column passes per queue) versus touching one slot
/// of a queue during a targeted removal (one memmove over, on average,
/// half the queue). Used only by [`SlottedState::pick_restore_mode`] —
/// the two mechanisms are bitwise-identical, so this weight trades
/// time, never output.
const IMPORT_PASS_WEIGHT: usize = 3;

/// One memoized minimal route in the flat BFS arena.
#[derive(Clone, Debug, Default)]
enum BfsEntry {
    /// Never computed for the current adjacency view.
    #[default]
    Unknown,
    /// Computed: the destination is unreachable.
    NoRoute,
    /// Computed: the minimal route.
    Route(Route),
}

/// Flat arena of memoized BFS routes, indexed `src * stride + dst`
/// (DESIGN.md §16). Replaces the former `BTreeMap<(NodeId, NodeId),
/// Option<Route>>`: a lookup is one multiply-add into a dense `Vec`
/// instead of an ordered-map walk, and a cached hit hands back a
/// borrowed `&[Hop]` so the probe hot path never clones a route.
/// Entries are guarded by the topology signature exactly like the map
/// was; an unsigned view (signature 0) is never trusted and re-resets
/// the arena on every call.
#[derive(Clone, Debug)]
struct BfsRouteArena {
    /// [`Topology::signature`] of the view the arena was filled from.
    sig: u64,
    /// Node count of that view (row stride).
    stride: usize,
    slots: Vec<BfsEntry>,
}

impl BfsRouteArena {
    fn new() -> Self {
        Self {
            sig: 0,
            stride: 0,
            slots: Vec::new(),
        }
    }

    /// The memoized minimal route `src -> dst` under the adjacency
    /// view that `sig` names, computing and caching it on first use.
    /// A different view (e.g. a masked repair topology) or an unsigned
    /// one resets the arena: minimal routes may differ, so the
    /// memoized ones must not be served.
    fn route_for(
        &mut self,
        topo: &Topology,
        sig: u64,
        src: NodeId,
        dst: NodeId,
        scratch: &mut BfsScratch,
    ) -> Option<&[Hop]> {
        let n = topo.node_count();
        if sig == 0 || sig != self.sig || n != self.stride {
            self.sig = sig;
            self.stride = n;
            self.slots.clear();
            self.slots.resize(n * n, BfsEntry::Unknown);
        }
        let i = src.index() * self.stride + dst.index();
        if matches!(self.slots[i], BfsEntry::Unknown) {
            self.slots[i] = match bfs_route_with(topo, src, dst, scratch) {
                Some(r) => BfsEntry::Route(r),
                None => BfsEntry::NoRoute,
            };
        }
        match &self.slots[i] {
            BfsEntry::Route(r) => Some(r),
            _ => None,
        }
    }
}

/// How an open snapshot cycle rolls the queues back on each
/// [`SlottedState::restore`]. Decided once per cycle, at the first
/// restore, by comparing the measured cost of the two mechanisms —
/// both produce bitwise-identical post-restore state, so the choice is
/// a pure time heuristic (DESIGN.md §16).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum SnapMode {
    /// No restore has happened yet this cycle.
    #[default]
    Undecided,
    /// Memcpy the first-touch column snapshots back into every queue
    /// whose epoch moved. Wins when candidates stack many placements
    /// onto the same queues (high fan-in probe cycles).
    Import,
    /// Replay a targeted [`SlottedState::unschedule`] per placed
    /// communication. Wins when candidates place only a slot or two
    /// per queue — one binary-searched memmove beats rewriting whole
    /// queues. First-touch saves stop for the rest of the cycle.
    Removal,
}

/// Column snapshot of every queue touched since the last
/// [`SlottedState::checkpoint`] (DESIGN.md §16). The first mutation of
/// a link in a probe cycle appends that queue's verbatim columns here
/// (its content still equals the checkpointed content at that moment —
/// either nothing touched it yet or a restore already put it back), so
/// an Import-mode [`SlottedState::restore`] is a bounded column memcpy
/// per touched queue instead of a replayed per-hop rollback.
#[derive(Clone, Debug, Default)]
struct SnapArena {
    /// A checkpoint cycle is open (only under
    /// [`Tuning::snapshot_restore`]).
    active: bool,
    /// The rollback mechanism this cycle settled on.
    mode: SnapMode,
    /// One record per first-touched queue: link index, the queue's
    /// mutation epoch at save time, and its window in `cols`.
    entries: Vec<(u32, u64, SnapWindow)>,
    /// Shared verbatim column buffers (es_linksched's snapshot arena).
    cols: QueueSnapArena,
    /// Per-link generation stamp: `saved[l] == gen` means link `l`'s
    /// first-touch columns are already in `entries` this cycle.
    saved: Vec<u32>,
    gen: u32,
    /// Communications placed since the checkpoint; restore either
    /// clears their records in place (Import) or replays their
    /// unschedules (Removal).
    placed: Vec<CommId>,
}

impl SnapArena {
    /// Open a cycle: forget the previous cycle's saves (stamp bump)
    /// and start with empty columns and an undecided mode.
    fn begin(&mut self, link_count: usize) {
        self.active = true;
        self.mode = SnapMode::Undecided;
        self.entries.clear();
        self.cols.clear();
        self.placed.clear();
        if self.saved.len() < link_count {
            self.saved.resize(link_count, 0);
        }
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Stamp wrap: invalidate all stale stamps the slow way.
            self.saved.fill(0);
            self.gen = 1;
        }
    }
}

/// Bookkeeping for one scheduled communication.
#[derive(Clone, Debug, Default)]
struct CommRecord {
    /// The hops taken (empty when unscheduled or local).
    route: Vec<Hop>,
    /// `(start, finish)` on each hop; `None` until that hop is placed.
    times: Vec<Option<(f64, f64)>>,
}

/// Opaque token naming a link-state snapshot, returned by
/// [`SlottedState::checkpoint`]. Restoring asserts (in debug builds)
/// that the caller really rolled the content back to the checkpointed
/// state — the token does not itself restore any slots.
#[derive(Clone, Copy, Debug)]
pub struct StateEpoch {
    epoch: u64,
    #[cfg(debug_assertions)]
    checksum: u64,
}

/// All link schedules plus communication bookkeeping.
#[derive(Clone, Debug)]
pub struct SlottedState {
    queues: Vec<SlotQueue>,
    comms: Vec<CommRecord>,
    /// Memoized BFS routes, signature-guarded (see [`BfsRouteArena`]).
    /// Dense arena: lookups are deterministic by construction, which
    /// satisfies the analyze/determinism audits without an ordered map.
    bfs_cache: BfsRouteArena,
    tuning: Tuning,
    /// Monotonically increasing link-state version: bumped by every
    /// placement and rollback. Epoch numbers are never reissued.
    epoch: u64,
    next_epoch: u64,
    /// The epoch the current probe cycle checkpointed at, if any. The
    /// route cache is consulted only while `epoch` equals this — i.e.
    /// while the link schedules are in the exact checkpointed state.
    active_checkpoint: Option<u64>,
    route_cache: Vec<RouteCacheEntry>,
    /// Column snapshot backing [`Tuning::snapshot_restore`] restores.
    snap: SnapArena,
    /// Scratch buffers reused across placements (allocation hoisting;
    /// no behavioural effect).
    bfs_scratch: BfsScratch,
    insert_scratch: InsertScratch,
    dts_scratch: Vec<f64>,
    search_scratch: DijkstraScratch<(f64, f64)>,
    route_scratch: Vec<Hop>,
}

impl SlottedState {
    /// Fresh state: all links idle; capacity for `comm_count`
    /// communications (one per DAG edge). Uses [`Tuning::default`].
    pub fn new(topo: &Topology, comm_count: usize) -> Self {
        Self::with_tuning(topo, comm_count, Tuning::default())
    }

    /// Fresh state with explicit performance [`Tuning`].
    pub fn with_tuning(topo: &Topology, comm_count: usize, tuning: Tuning) -> Self {
        Self {
            queues: (0..topo.link_count())
                .map(|_| SlotQueue::indexed(tuning.indexed_gaps))
                .collect(),
            comms: vec![CommRecord::default(); comm_count],
            bfs_cache: BfsRouteArena::new(),
            tuning,
            epoch: 0,
            next_epoch: 1,
            active_checkpoint: None,
            route_cache: Vec::new(),
            snap: SnapArena::default(),
            bfs_scratch: BfsScratch::new(),
            insert_scratch: InsertScratch::new(),
            dts_scratch: Vec::new(),
            search_scratch: DijkstraScratch::new(),
            route_scratch: Vec::new(),
        }
    }

    /// The performance tuning this state was built with.
    pub fn tuning(&self) -> Tuning {
        self.tuning
    }

    /// The slot queue of a link (validators and tests peek at these).
    pub fn queue(&self, link: es_net::LinkId) -> &SlotQueue {
        &self.queues[link.index()]
    }

    /// Immutable per-link slot slices, indexed by `LinkId::index()` —
    /// the shared **base** that overlay probing reads. `&[Slot]` is
    /// plain data (`Sync`), so the snapshot crosses worker lanes even
    /// though [`SlotQueue`]'s lazy gap index keeps the queues
    /// themselves `!Sync`.
    pub fn queue_slices(&self) -> Vec<&[Slot]> {
        self.queues.iter().map(SlotQueue::slots).collect()
    }

    /// Recorded `(start, finish)` of `comm` on hop `seq`.
    pub fn hop_times(&self, comm: CommId, seq: usize) -> Option<(f64, f64)> {
        self.comms[comm.0 as usize]
            .times
            .get(seq)
            .copied()
            .flatten()
    }

    /// The committed route of `comm` (empty if unscheduled).
    pub fn route_of(&self, comm: CommId) -> &[Hop] {
        &self.comms[comm.0 as usize].route
    }

    /// Bump the link-state epoch after any queue mutation. Cached
    /// searches from other epochs can only become consultable again
    /// through a [`SlottedState::restore`] to the active checkpoint, so
    /// everything else is pruned here (epochs are never reissued).
    fn touch(&mut self) {
        self.epoch = self.next_epoch;
        self.next_epoch += 1;
        // Cache-cold runs (e.g. BFS-routed BA never fills the route
        // cache) pay one branch here, not a retain walk per mutation.
        if !self.route_cache.is_empty() {
            let keep = self.active_checkpoint;
            self.route_cache.retain(|e| Some(e.key.epoch) == keep);
        }
    }

    /// Open a probe cycle: name the current link state and allow the
    /// route cache to serve searches while the state matches it. The
    /// caller promises to return the queues to exactly this state (via
    /// exact rollbacks) before each [`SlottedState::restore`].
    pub fn checkpoint(&mut self) -> StateEpoch {
        self.active_checkpoint = Some(self.epoch);
        let epoch = self.epoch;
        if !self.route_cache.is_empty() {
            self.route_cache.retain(|e| e.key.epoch == epoch);
        }
        if self.tuning.snapshot_restore {
            self.snap.begin(self.queues.len());
        }
        StateEpoch {
            epoch,
            #[cfg(debug_assertions)]
            checksum: self.content_checksum(),
        }
    }

    /// Declare the link state rolled back to `cp`'s snapshot; re-arms
    /// the route cache for the next candidate of the probe cycle.
    ///
    /// Under [`Tuning::snapshot_restore`] the rollback itself happens
    /// here, by whichever mechanism the cycle's first restore measured
    /// as cheaper ([`SnapMode`]): *Import* memcpys the first-touch
    /// column snapshots back into every queue whose mutation epoch
    /// moved and clears the placed records in place; *Removal* replays
    /// a targeted [`SlottedState::unschedule`] per placed
    /// communication. Both land on bitwise-identical state (the debug
    /// checksum proves it), so the pick is a pure time heuristic.
    /// Without the tuning the caller must have rolled the content back
    /// (exact `unschedule`s) before calling. Like the manual rollback,
    /// the cycle is exact only for basic-insertion placements: optimal
    /// insertion rewrites *other* communications' recorded times,
    /// which no restore path resurrects.
    pub fn restore(&mut self, cp: StateEpoch) {
        if self.tuning.snapshot_restore && self.snap.active {
            if self.snap.mode == SnapMode::Undecided {
                self.snap.mode = self.pick_restore_mode();
            }
            if self.snap.mode == SnapMode::Removal {
                let placed = std::mem::take(&mut self.snap.placed);
                for &comm in &placed {
                    self.unschedule(comm);
                }
                let mut placed = placed;
                placed.clear();
                self.snap.placed = placed;
            } else {
                let snap = &mut self.snap;
                for &(l, qepoch, w) in &snap.entries {
                    let q = &mut self.queues[l as usize];
                    if q.epoch() != qepoch {
                        q.restore_from(&snap.cols, w, qepoch);
                    }
                }
                for &comm in &snap.placed {
                    let rec = &mut self.comms[comm.0 as usize];
                    rec.route.clear();
                    rec.times.clear();
                }
                snap.placed.clear();
            }
        }
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.content_checksum(),
            cp.checksum,
            "restore() without an exact rollback to the checkpointed state"
        );
        self.epoch = cp.epoch;
        if !self.route_cache.is_empty() {
            self.route_cache.retain(|e| e.key.epoch == cp.epoch);
        }
    }

    /// Measure which rollback mechanism this cycle should use, from
    /// the first candidate's actual footprint. Import rewrites every
    /// saved slot of every touched queue (several linear column passes
    /// each); removal pays one binary-searched memmove — on average
    /// half the queue — per placed slot. Comparing `saved slots ×
    /// IMPORT_PASS_WEIGHT` against `Σ len(queue) per placed hop`
    /// captures both: a candidate placing one slot on each of a few
    /// long queues picks Removal (BFS-routed BA probes), while
    /// candidates stacking many slots per queue pick Import (high
    /// fan-in cycles).
    fn pick_restore_mode(&self) -> SnapMode {
        let import_slots: usize = self
            .snap
            .entries
            .iter()
            .map(|&(_, _, w)| w.n as usize)
            .sum();
        let mut removal_slots = 0usize;
        for &comm in &self.snap.placed {
            for hop in &self.comms[comm.0 as usize].route {
                removal_slots += self.queues[hop.link.index()].len();
            }
        }
        if import_slots * IMPORT_PASS_WEIGHT <= removal_slots {
            SnapMode::Import
        } else {
            SnapMode::Removal
        }
    }

    /// First-touch column save of link `l` for the open snapshot
    /// cycle; every committed-state mutator calls this before its
    /// first write to the queue. O(1) when the link is already saved,
    /// no cycle is open, or the cycle settled on Removal-mode restores
    /// (which never read the saves).
    fn snap_save(&mut self, l: usize) {
        if !self.snap.active
            || self.snap.mode == SnapMode::Removal
            || self.snap.saved[l] == self.snap.gen
        {
            return;
        }
        self.snap.saved[l] = self.snap.gen;
        let q = &self.queues[l];
        let w = q.snapshot_into(&mut self.snap.cols);
        self.snap.entries.push((l as u32, q.epoch(), w));
    }

    /// Order-insensitive digest of all slot content, for the debug
    /// assertion that `restore` only follows exact rollbacks.
    #[cfg(debug_assertions)]
    fn content_checksum(&self) -> u64 {
        let mut h = 0u64;
        for q in &self.queues {
            h = h.wrapping_mul(31).wrapping_add(q.len() as u64);
            for s in q.slots() {
                h ^= s.start.to_bits().rotate_left(17) ^ s.end.to_bits() ^ s.comm.0;
            }
        }
        h
    }

    /// Route and schedule one communication.
    ///
    /// * `est` — earliest start (source task finish time);
    /// * `cost` — communication cost `c(e)`;
    /// * returns the arrival time at the destination processor.
    ///
    /// The route is chosen per `routing`; each hop is placed under link
    /// causality using `insertion`. With [`Insertion::Optimal`],
    /// already-scheduled slots may be deferred within their Lemma-2
    /// slack; the displaced communications' recorded times are updated.
    #[allow(clippy::too_many_arguments)]
    pub fn schedule_comm(
        &mut self,
        topo: &Topology,
        comm: CommId,
        est: f64,
        cost: f64,
        from: ProcId,
        to: ProcId,
        routing: Routing,
        insertion: Insertion,
        switching: Switching,
    ) -> Result<f64, SchedError> {
        debug_assert_ne!(from, to, "local communications never reach the link layer");
        let src = topo.node_of_proc(from);
        let dst = topo.node_of_proc(to);
        let mut route = std::mem::take(&mut self.route_scratch);
        let found = self.pick_route_into(topo, src, dst, est, cost, routing, switching, &mut route);
        if !found {
            self.route_scratch = route;
            return Err(SchedError::NoRoute { from, to });
        }
        let arrival = self.place_on_route(topo, comm, est, cost, &route, insertion, switching);
        self.route_scratch = route;
        Ok(arrival)
    }

    /// Batch pre-advance of the memoized modified-Dijkstra search for
    /// one probe edge (DESIGN.md §16): settle **every** candidate
    /// destination in a single wavefront pass instead of growing the
    /// frontier candidate by candidate. Answer-neutral because the
    /// settle trajectory is destination-independent
    /// ([`IncrementalDijkstra::settle_many`]): each later
    /// [`SlottedState::schedule_comm`] resume reconstructs exactly the
    /// route a fresh search would have found, pinned bitwise in
    /// `es_route` and by the differential oracle. A no-op unless the
    /// route cache is consultable (modified-Dijkstra routing, signed
    /// view, at a checkpointed state) — so reference tunings and BFS
    /// routing pay one branch.
    #[allow(clippy::too_many_arguments)]
    pub fn warm_route_searches(
        &mut self,
        topo: &Topology,
        from: ProcId,
        est: f64,
        cost: f64,
        dsts: &[NodeId],
        routing: Routing,
        switching: Switching,
    ) {
        if !matches!(routing, Routing::ModifiedDijkstra) {
            return;
        }
        let sig = topo.signature();
        let consultable =
            self.tuning.route_cache && sig != 0 && self.active_checkpoint == Some(self.epoch);
        if !consultable || dsts.is_empty() {
            return;
        }
        let src = topo.node_of_proc(from);
        let (relax, key) = seq_probe_metric(&self.queues, topo, cost, switching);
        let k = SearchKey {
            topo_sig: sig,
            epoch: self.epoch,
            src,
            est: est.to_bits(),
            cost: cost.to_bits(),
            switching,
        };
        let cache = &mut self.route_cache;
        let entry = if let Some(i) = cache.iter().position(|e| e.key == k) {
            &mut cache[i]
        } else {
            // The warm pass is the probe cycle's one expected miss;
            // every per-candidate lookup after it resumes this entry.
            ROUTE_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
            if cache.len() >= ROUTE_CACHE_CAP {
                cache.remove(0);
            }
            cache.push(RouteCacheEntry {
                key: k,
                search: IncrementalDijkstra::new(topo.node_count(), src, (est, est), est),
            });
            cache.last_mut().expect("just pushed")
        };
        entry.search.settle_many(topo, dsts, relax, key);
    }

    /// Choose a route per the configured strategy into a caller-owned
    /// buffer; returns whether a route exists (`out` is meaningful
    /// only then). The buffer-filling shape keeps the steady-state
    /// probe loop free of per-candidate route allocations.
    #[allow(clippy::too_many_arguments)]
    fn pick_route_into(
        &mut self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        est: f64,
        cost: f64,
        routing: Routing,
        switching: Switching,
        out: &mut Vec<Hop>,
    ) -> bool {
        match routing {
            Routing::Bfs => {
                // TWIN(bfs-cache-guard): begin
                let sig = topo.signature();
                let scratch = &mut self.bfs_scratch;
                match self.bfs_cache.route_for(topo, sig, src, dst, scratch) {
                    Some(hops) => {
                        out.clear();
                        out.extend_from_slice(hops);
                        true
                    }
                    None => false,
                }
                // TWIN(bfs-cache-guard): end
            }
            Routing::ModifiedDijkstra => {
                // §4.3: relax by the finish time of this communication
                // on each link, probed with basic insertion against the
                // current schedules. The hop delay is applied uniformly
                // (including the first hop) — a conservative metric;
                // actual placement applies it precisely.
                let (relax, key) = seq_probe_metric(&self.queues, topo, cost, switching);

                let sig = topo.signature();
                let cacheable = self.tuning.route_cache
                    && sig != 0
                    && self.active_checkpoint == Some(self.epoch);
                if cacheable {
                    let k = SearchKey {
                        topo_sig: sig,
                        epoch: self.epoch,
                        src,
                        est: est.to_bits(),
                        cost: cost.to_bits(),
                        switching,
                    };
                    let cache = &mut self.route_cache;
                    let entry = if let Some(i) = cache.iter().position(|e| e.key == k) {
                        ROUTE_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
                        &mut cache[i]
                    } else {
                        ROUTE_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
                        if cache.len() >= ROUTE_CACHE_CAP {
                            cache.remove(0);
                        }
                        cache.push(RouteCacheEntry {
                            key: k,
                            search: IncrementalDijkstra::new(
                                topo.node_count(),
                                src,
                                (est, est),
                                est,
                            ),
                        });
                        cache.last_mut().expect("just pushed")
                    };
                    entry
                        .search
                        .route_to_into(topo, dst, relax, key, out)
                        .is_some()
                } else if self.tuning.route_cache {
                    // Not at a checkpointed state, but the buffer-reuse
                    // half of the optimization still applies: the same
                    // search over hoisted scratch allocations.
                    dijkstra_route_into_with(
                        topo,
                        src,
                        dst,
                        (est, est),
                        relax,
                        key,
                        &mut self.search_scratch,
                        out,
                    )
                    .is_some()
                } else {
                    match dijkstra_route(topo, src, dst, (est, est), relax, key) {
                        Some((route, _)) => {
                            *out = route;
                            true
                        }
                        None => false,
                    }
                }
            }
        }
    }

    /// Place a communication on every hop of `route` in order,
    /// maintaining the link causality condition; returns the arrival
    /// time on the last hop.
    fn place_on_route(
        &mut self,
        topo: &Topology,
        comm: CommId,
        est: f64,
        cost: f64,
        route: &[Hop],
        insertion: Insertion,
        switching: Switching,
    ) -> f64 {
        let rec_idx = comm.0 as usize;
        let times = &mut self.comms[rec_idx].times;
        times.clear();
        times.resize(route.len(), None);
        if self.snap.active {
            for hop in route {
                self.snap_save(hop.link.index());
            }
            self.snap.placed.push(comm);
        }

        let (mut prev_start, mut prev_finish) = (est, est);
        for (seq, hop) in route.iter().enumerate() {
            // TWIN(hop-bound): begin
            let int = cost / topo.link_speed(hop.link);
            // Per-hop switch latency applies from the second hop on.
            let delay = if seq == 0 { 0.0 } else { topo.hop_delay() };
            // Link causality (§2.2): start no earlier than on the
            // previous link; finish no earlier either — the "virtual
            // start" bound max(t_s(prev), t_f(prev) - int) enforces
            // both at full bandwidth. Store-and-forward waits for the
            // whole message instead.
            let bound = match switching {
                Switching::CutThrough => (prev_start + delay).max(prev_finish + delay - int),
                Switching::StoreAndForward => prev_finish + delay,
            };
            // TWIN(hop-bound): end
            let (start, finish) = match insertion {
                Insertion::Basic => {
                    let queue = &mut self.queues[hop.link.index()];
                    let start = queue.probe(bound, int);
                    queue.commit(comm, seq as u32, start, int);
                    (start, start + int)
                }
                Insertion::Optimal => {
                    deferrable_times_into(
                        &self.queues[hop.link.index()],
                        &self.comms,
                        topo.hop_delay(),
                        &mut self.dts_scratch,
                    );
                    let placement = optimal_insert_with(
                        &mut self.queues[hop.link.index()],
                        comm,
                        seq as u32,
                        bound,
                        int,
                        &self.dts_scratch,
                        &mut self.insert_scratch,
                    );
                    // Propagate deferrals into the displaced
                    // communications' recorded times.
                    for shift in &placement.shifts {
                        let rec = &mut self.comms[shift.comm.0 as usize];
                        rec.times[shift.seq as usize] = Some((shift.new_start, shift.new_end));
                    }
                    (placement.start, placement.end)
                }
            };
            self.comms[rec_idx].times[seq] = Some((start, finish));
            prev_start = start;
            prev_finish = finish;
        }
        // The route is recorded only now, which keeps Lemma-2 deferrable
        // times at the conservative 0 for this comm's own mid-placement
        // slots (their next-hop times are unset either way).
        let rec_route = &mut self.comms[rec_idx].route;
        rec_route.clear();
        rec_route.extend_from_slice(route);
        self.touch();
        prev_finish
    }

    /// Remove every slot of `comm` and clear its bookkeeping.
    ///
    /// Exact only for basic-insertion placements (optimal insertion may
    /// have deferred *other* slots, which are not restored); BA's
    /// tentative probe therefore always runs with basic insertion.
    pub fn unschedule(&mut self, comm: CommId) {
        let mut rec = std::mem::take(&mut self.comms[comm.0 as usize]);
        if self.snap.active {
            for hop in &rec.route {
                self.snap_save(hop.link.index());
            }
        }
        if self.tuning.indexed_gaps {
            // The recorded per-hop times pin each slot exactly (optimal
            // insertion keeps them updated when it defers slots), so a
            // binary-searched single-slot removal replaces the full
            // scan. Any miss falls back to the reference path — the
            // resulting queues are identical either way.
            for (seq, hop) in rec.route.iter().enumerate() {
                let queue = &mut self.queues[hop.link.index()];
                let removed = rec.times[seq]
                    .is_some_and(|(start, _)| queue.remove_slot_at(comm, seq as u32, start));
                if !removed {
                    queue.remove_comm(comm);
                }
            }
        } else {
            for hop in &rec.route {
                self.queues[hop.link.index()].remove_comm(comm);
            }
        }
        // Clear-don't-drop: hand the record's buffers back for the
        // next placement of this id instead of deallocating them —
        // rollback-heavy probe cycles otherwise free and reallocate
        // two Vecs per candidate edge.
        rec.route.clear();
        rec.times.clear();
        self.comms[comm.0 as usize] = rec;
        self.touch();
    }

    /// Grow the communication table to hold ids `0..n`. The online
    /// engine assigns each arriving job a fresh contiguous id block
    /// (ids are never reissued, so reservations of live jobs can never
    /// alias a retired job's), and widens the table here before
    /// scheduling the job's edges. Committed link state is untouched —
    /// no epoch bump, caches stay valid.
    pub fn ensure_comm_capacity(&mut self, n: usize) {
        if self.comms.len() < n {
            self.comms.resize(n, CommRecord::default());
        }
    }

    /// Incremental compaction (DESIGN.md §15): release every slot of
    /// the listed *retired* communications through the
    /// [`es_linksched::LinkModel`] trait and clear their bookkeeping,
    /// returning how many slots were dropped. The caller promises the
    /// communications belong to completed jobs whose entire occupancy
    /// lies at or before every future placement's earliest start; the
    /// freed gaps then sit strictly before any future probe window, so
    /// releasing them is semantics-free (the `integration_online`
    /// differential suite pins this bitwise).
    pub fn release_comms(&mut self, comms: &[CommId]) -> usize {
        use es_linksched::LinkModel;
        let mut dropped = 0usize;
        let mut mutated = false;
        for &comm in comms {
            let rec = std::mem::take(&mut self.comms[comm.0 as usize]);
            if self.snap.active {
                for hop in &rec.route {
                    self.snap_save(hop.link.index());
                }
            }
            for hop in &rec.route {
                dropped += LinkModel::release_all(&mut self.queues[hop.link.index()], &[comm]);
            }
            mutated = mutated || !rec.route.is_empty();
        }
        if mutated {
            self.touch();
        }
        dropped
    }

    /// Extract the per-hop times of a scheduled communication (for the
    /// final [`crate::schedule::CommPlacement`]).
    pub fn placement(&self, comm: CommId) -> (Vec<Hop>, Vec<(f64, f64)>) {
        let rec = &self.comms[comm.0 as usize];
        let times = rec
            .times
            .iter()
            .map(|t| t.expect("placement queried for fully scheduled comm"))
            .collect();
        (rec.route.clone(), times)
    }

    /// Check every queue's internal invariants (tests/validation).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, q) in self.queues.iter().enumerate() {
            q.check_invariants()
                .map_err(|e| format!("link L{i}: {e}"))?;
        }
        Ok(())
    }
}

/// Identity of one memoizable overlay search. Unlike [`SearchKey`]
/// there is no epoch or topology signature: a [`ProbeWorkspace`] lives
/// inside a single `pick_by_probe` call (one ready task, one immutable
/// base snapshot, one topology view) and is invalidated wholesale
/// between tasks via [`ProbeWorkspace::begin_candidate`]'s serial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct WorkerSearchKey {
    src: NodeId,
    /// `est.to_bits()` — bitwise, no tolerance.
    est: u64,
    /// `cost.to_bits()`.
    cost: u64,
    switching: Switching,
}

/// Per-lane scratch for speculative overlay probing (DESIGN.md §11).
///
/// Each worker lane owns one workspace for the whole scheduling run;
/// everything in it is clear-don't-drop so steady-state probing does
/// not allocate. It holds the private per-link deltas of the candidate
/// currently being probed plus the lane-local mirrors of the sequential
/// path's caches: a BFS route memo, hoisted Dijkstra/BFS scratch
/// buffers, and the incremental modified-Dijkstra searches that the
/// route cache resumes across candidates of the same task.
#[derive(Clone, Debug)]
pub struct ProbeWorkspace {
    /// Private copy-on-write deltas, indexed like the base snapshot
    /// (`LinkId::index()`). Kept allocated across candidates.
    deltas: Vec<Vec<Slot>>,
    /// Links whose delta is currently non-empty.
    touched: Vec<usize>,
    /// Lane-local mirror of [`SlottedState::bfs_cache`] (same
    /// signature guard); survives across tasks — minimal routes only
    /// depend on the adjacency view.
    bfs_cache: BfsRouteArena,
    bfs_scratch: BfsScratch,
    search_scratch: DijkstraScratch<(f64, f64)>,
    route_scratch: Vec<Hop>,
    /// Lane-local incremental searches, valid for one probe cycle.
    incr: Vec<(WorkerSearchKey, IncrementalDijkstra<(f64, f64)>)>,
    /// The probe cycle (task) `incr` belongs to.
    probe_serial: u64,
}

impl ProbeWorkspace {
    /// Fresh workspace for a topology with `link_count` links.
    #[must_use]
    pub fn new(link_count: usize) -> Self {
        Self {
            deltas: vec![Vec::new(); link_count],
            touched: Vec::new(),
            bfs_cache: BfsRouteArena::new(),
            bfs_scratch: BfsScratch::new(),
            search_scratch: DijkstraScratch::new(),
            route_scratch: Vec::new(),
            incr: Vec::new(),
            probe_serial: 0,
        }
    }

    /// Reset for the next candidate: drop its deltas (keeping their
    /// buffers) and, when `probe_serial` names a new probe cycle (a new
    /// ready task), invalidate the incremental searches — they probed
    /// a snapshot that no longer exists.
    pub fn begin_candidate(&mut self, probe_serial: u64) {
        for &l in &self.touched {
            self.deltas[l].clear();
        }
        self.touched.clear();
        if self.probe_serial != probe_serial {
            self.probe_serial = probe_serial;
            self.incr.clear();
        }
    }
}

/// A probe-only view of the link state: an immutable base snapshot
/// (per-link slot slices from [`SlottedState::queue_slices`]) plus one
/// lane's private [`ProbeWorkspace`] deltas. Supports exactly what the
/// earliest-finish processor probe needs — basic-insertion
/// `schedule_comm` — and answers it bitwise identically to the
/// sequential mutate-and-rollback path by construction: overlay probes
/// equal real-queue probes ([`SlotQueueOverlay`]'s contract) and the
/// route searches run the very same relax/key closures.
pub struct OverlayState<'a> {
    base: &'a [&'a [Slot]],
    tuning: Tuning,
    ws: &'a mut ProbeWorkspace,
}

impl<'a> OverlayState<'a> {
    /// Wrap a base snapshot and one lane's workspace. The workspace
    /// must have been created for the same link count and
    /// [`ProbeWorkspace::begin_candidate`]-reset by the caller.
    pub fn new(base: &'a [&'a [Slot]], tuning: Tuning, ws: &'a mut ProbeWorkspace) -> Self {
        debug_assert_eq!(base.len(), ws.deltas.len(), "snapshot/workspace link count");
        Self { base, tuning, ws }
    }

    /// Probe-only twin of [`SlottedState::schedule_comm`] with
    /// [`Insertion::Basic`] (the only insertion probes ever use):
    /// routes the communication and places every hop into this lane's
    /// private deltas, returning the arrival time at the destination.
    #[allow(clippy::too_many_arguments)]
    pub fn schedule_comm(
        &mut self,
        topo: &Topology,
        comm: CommId,
        est: f64,
        cost: f64,
        from: ProcId,
        to: ProcId,
        routing: Routing,
        switching: Switching,
    ) -> Result<f64, SchedError> {
        debug_assert_ne!(from, to, "local communications never reach the link layer");
        let src = topo.node_of_proc(from);
        let dst = topo.node_of_proc(to);
        let mut route = std::mem::take(&mut self.ws.route_scratch);
        let found = self.pick_route_into(topo, src, dst, est, cost, routing, switching, &mut route);
        if !found {
            self.ws.route_scratch = route;
            return Err(SchedError::NoRoute { from, to });
        }
        let arrival = self.place_on_route(topo, comm, est, cost, &route, switching);
        self.ws.route_scratch = route;
        Ok(arrival)
    }

    /// Overlay mirror of [`SlottedState::pick_route_into`] — statement
    /// for statement, with queue probes going through the merged view.
    #[allow(clippy::too_many_arguments)]
    fn pick_route_into(
        &mut self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        est: f64,
        cost: f64,
        routing: Routing,
        switching: Switching,
        out: &mut Vec<Hop>,
    ) -> bool {
        match routing {
            Routing::Bfs => {
                let ws = &mut *self.ws;
                // TWIN(bfs-cache-guard): begin map ws=self
                let sig = topo.signature();
                let scratch = &mut ws.bfs_scratch;
                match ws.bfs_cache.route_for(topo, sig, src, dst, scratch) {
                    Some(hops) => {
                        out.clear();
                        out.extend_from_slice(hops);
                        true
                    }
                    None => false,
                }
                // TWIN(bfs-cache-guard): end
            }
            Routing::ModifiedDijkstra => {
                let base = self.base;
                let ws = &mut *self.ws;
                let deltas = &ws.deltas;
                // TWIN(dijkstra-relax): begin
                let delay = topo.hop_delay();
                let relax = move |&(s, f): &(f64, f64), hop: &Hop| {
                    let int = cost / topo.link_speed(hop.link);
                    let bound = match switching {
                        Switching::CutThrough => (s + delay).max(f + delay - int),
                        Switching::StoreAndForward => f + delay,
                    };
                    let l = hop.link.index(); // TWIN-OK: overlay indexes per-link base/delta pairs
                    let start = SlotQueueOverlay::new(base[l], &deltas[l]).probe(bound, int); // TWIN-OK: overlay probes the merged base+delta view
                    (start, (start + int).max(f))
                };
                let key = |&(_, f): &(f64, f64)| f;
                // TWIN(dijkstra-relax): end

                // Mirror of the sequential cacheability window: a
                // memoized search is resumable only while the link
                // state it probed is provably unchanged. Sequentially
                // that is `epoch == checkpoint`; here it is "no private
                // delta yet" — each candidate's first searches probe
                // the pristine snapshot, exactly like each sequential
                // candidate right after `restore()`.
                let cacheable =
                    self.tuning.route_cache && topo.signature() != 0 && ws.touched.is_empty();
                if cacheable {
                    let k = WorkerSearchKey {
                        src,
                        est: est.to_bits(),
                        cost: cost.to_bits(),
                        switching,
                    };
                    let cache = &mut ws.incr;
                    let entry = if let Some(i) = cache.iter().position(|(key, _)| *key == k) {
                        ROUTE_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
                        &mut cache[i].1
                    } else {
                        ROUTE_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
                        if cache.len() >= ROUTE_CACHE_CAP {
                            cache.remove(0);
                        }
                        cache.push((
                            k,
                            IncrementalDijkstra::new(topo.node_count(), src, (est, est), est),
                        ));
                        &mut cache.last_mut().expect("just pushed").1
                    };
                    entry.route_to_into(topo, dst, relax, key, out).is_some()
                } else if self.tuning.route_cache {
                    dijkstra_route_into_with(
                        topo,
                        src,
                        dst,
                        (est, est),
                        relax,
                        key,
                        &mut ws.search_scratch,
                        out,
                    )
                    .is_some()
                } else {
                    match dijkstra_route(topo, src, dst, (est, est), relax, key) {
                        Some((route, _)) => {
                            *out = route;
                            true
                        }
                        None => false,
                    }
                }
            }
        }
    }

    /// Overlay mirror of [`SlottedState::place_on_route`], basic
    /// insertion only: per-hop probe against the merged view, commit
    /// into the private delta. Returns the arrival on the last hop.
    fn place_on_route(
        &mut self,
        topo: &Topology,
        comm: CommId,
        est: f64,
        cost: f64,
        route: &[Hop],
        switching: Switching,
    ) -> f64 {
        let ws = &mut *self.ws;
        let (mut prev_start, mut prev_finish) = (est, est);
        for (seq, hop) in route.iter().enumerate() {
            // TWIN(hop-bound): begin
            let int = cost / topo.link_speed(hop.link);
            // Per-hop switch latency applies from the second hop on.
            let delay = if seq == 0 { 0.0 } else { topo.hop_delay() };
            let bound = match switching {
                Switching::CutThrough => (prev_start + delay).max(prev_finish + delay - int),
                Switching::StoreAndForward => prev_finish + delay,
            };
            // TWIN(hop-bound): end
            let l = hop.link.index();
            let delta = &mut ws.deltas[l];
            let start = SlotQueueOverlay::new(self.base[l], delta).probe(bound, int);
            if delta.is_empty() {
                ws.touched.push(l);
            }
            SlotQueueOverlay::commit_into(self.base[l], delta, comm, seq as u32, start, int);
            prev_start = start;
            prev_finish = start + int;
        }
        prev_finish
    }
}

/// Lemma 2 deferrable times for every slot of one queue, into a
/// caller-owned buffer (the buffer is cleared first).
///
/// A slot of communication `c` at route position `seq` can defer by
/// `min( t_s(c, next) - t_s(c, here), t_f(c, next) - t_f(c, here) )`
/// minus the per-hop switch delay (the next hop must stay at least
/// `hop_delay` behind this one — the audit's strengthened causality
/// condition), where `next` is `c`'s next route hop — 0 when this is
/// the last hop (the arrival may already gate the destination task),
/// and 0 when the next hop is not yet placed (conservative; happens
/// only mid-placement of `c` itself). With `hop_delay == 0` the
/// subtraction is exact, so delay-free topologies are bit-unchanged.
/// The §4.3 relax metric and tie-break key over the **committed**
/// queues, shared by [`SlottedState::pick_route_into`] and the batch
/// warm pass ([`SlottedState::warm_route_searches`]) so the twinned
/// hot closure has exactly one sequential copy (the overlay twin in
/// [`OverlayState::pick_route_into`] is the other).
#[allow(clippy::type_complexity)] // impl-Trait pairs can't be type-aliased on stable
fn seq_probe_metric<'q>(
    queues: &'q [SlotQueue],
    topo: &'q Topology,
    cost: f64,
    switching: Switching,
) -> (
    impl Fn(&(f64, f64), &Hop) -> (f64, f64) + 'q,
    impl Fn(&(f64, f64)) -> f64,
) {
    // TWIN(dijkstra-relax): begin
    let delay = topo.hop_delay();
    let relax = move |&(s, f): &(f64, f64), hop: &Hop| {
        let int = cost / topo.link_speed(hop.link);
        let bound = match switching {
            Switching::CutThrough => (s + delay).max(f + delay - int),
            Switching::StoreAndForward => f + delay,
        };
        let start = queues[hop.link.index()].probe(bound, int); // TWIN-OK: serial probes the committed queues directly
        (start, (start + int).max(f))
    };
    let key = |&(_, f): &(f64, f64)| f;
    // TWIN(dijkstra-relax): end
    (relax, key)
}

fn deferrable_times_into(
    queue: &SlotQueue,
    comms: &[CommRecord],
    hop_delay: f64,
    out: &mut Vec<f64>,
) {
    out.clear();
    out.extend(queue.slots().iter().map(|slot| {
        let rec = &comms[slot.comm.0 as usize];
        let seq = slot.seq as usize;
        if seq + 1 >= rec.route.len() {
            return 0.0;
        }
        match rec.times.get(seq + 1).copied().flatten() {
            None => 0.0,
            Some((next_start, next_finish)) => {
                let dt = (next_start - slot.start).min(next_finish - slot.end) - hop_delay;
                dt.max(0.0)
            }
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use es_net::Topology;

    /// p0 -sw- p1 line with unit speeds.
    fn line() -> Topology {
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        let sw = b.add_switch();
        b.add_duplex_cable(p0, sw, 1.0);
        b.add_duplex_cable(sw, p1, 1.0);
        b.build().unwrap()
    }

    fn c(n: u64) -> CommId {
        CommId(n)
    }

    #[test]
    fn single_comm_cut_through() {
        let topo = line();
        let mut st = SlottedState::new(&topo, 4);
        let arrival = st
            .schedule_comm(
                &topo,
                c(0),
                2.0,
                6.0,
                ProcId(0),
                ProcId(1),
                Routing::Bfs,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap();
        // Two unit-speed hops, cut-through: both [2, 8).
        assert_eq!(arrival, 8.0);
        let (route, times) = st.placement(c(0));
        assert_eq!(route.len(), 2);
        assert_eq!(times, vec![(2.0, 8.0), (2.0, 8.0)]);
    }

    #[test]
    fn second_comm_queues_behind_first() {
        let topo = line();
        let mut st = SlottedState::new(&topo, 4);
        st.schedule_comm(
            &topo,
            c(0),
            0.0,
            5.0,
            ProcId(0),
            ProcId(1),
            Routing::Bfs,
            Insertion::Basic,
            Switching::CutThrough,
        )
        .unwrap();
        let arrival = st
            .schedule_comm(
                &topo,
                c(1),
                0.0,
                5.0,
                ProcId(0),
                ProcId(1),
                Routing::Bfs,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap();
        // First link busy [0,5): second transfer starts at 5.
        assert_eq!(arrival, 10.0);
        st.check_invariants().unwrap();
    }

    #[test]
    fn heterogeneous_hops_respect_causality() {
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        let sw = b.add_switch();
        b.add_duplex_cable(p0, sw, 1.0); // slow: int = cost
        b.add_duplex_cable(sw, p1, 4.0); // fast: int = cost/4
        let topo = b.build().unwrap();
        let mut st = SlottedState::new(&topo, 2);
        let arrival = st
            .schedule_comm(
                &topo,
                c(0),
                0.0,
                8.0,
                ProcId(0),
                ProcId(1),
                Routing::Bfs,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap();
        let (_, times) = st.placement(c(0));
        // Slow hop [0,8); fast hop int=2 with virtual start 6: [6,8).
        assert_eq!(times[0], (0.0, 8.0));
        assert_eq!(times[1], (6.0, 8.0));
        assert_eq!(arrival, 8.0);
        // Causality: start and finish non-decreasing along the route.
        assert!(times[1].0 >= times[0].0);
        assert!(times[1].1 >= times[0].1);
    }

    #[test]
    fn unschedule_rolls_back_exactly() {
        let topo = line();
        let mut st = SlottedState::new(&topo, 4);
        st.schedule_comm(
            &topo,
            c(0),
            0.0,
            5.0,
            ProcId(0),
            ProcId(1),
            Routing::Bfs,
            Insertion::Basic,
            Switching::CutThrough,
        )
        .unwrap();
        let a1 = st
            .schedule_comm(
                &topo,
                c(1),
                0.0,
                3.0,
                ProcId(0),
                ProcId(1),
                Routing::Bfs,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap();
        st.unschedule(c(1));
        let a2 = st
            .schedule_comm(
                &topo,
                c(1),
                0.0,
                3.0,
                ProcId(0),
                ProcId(1),
                Routing::Bfs,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap();
        assert_eq!(a1, a2, "re-scheduling after rollback is deterministic");
        assert!(st.route_of(c(1)).len() == 2);
    }

    #[test]
    fn no_route_is_an_error() {
        let mut b = Topology::builder();
        b.add_processor(1.0);
        b.add_processor(1.0);
        let topo = b.build().unwrap();
        let mut st = SlottedState::new(&topo, 1);
        let err = st
            .schedule_comm(
                &topo,
                c(0),
                0.0,
                1.0,
                ProcId(0),
                ProcId(1),
                Routing::Bfs,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap_err();
        assert_eq!(
            err,
            SchedError::NoRoute {
                from: ProcId(0),
                to: ProcId(1)
            }
        );
    }

    #[test]
    fn optimal_insertion_defers_slot_with_downstream_slack() {
        let topo = line();
        let mut st = SlottedState::new(&topo, 8);
        // comm 0: cost 4 over both hops; on the first link it sits at
        // [0,4), on the second [0,4).
        st.schedule_comm(
            &topo,
            c(0),
            0.0,
            4.0,
            ProcId(0),
            ProcId(1),
            Routing::Bfs,
            Insertion::Basic,
            Switching::CutThrough,
        )
        .unwrap();
        // comm 1: queues behind comm 0 on both links: first link [4,8),
        // second [4,8). Its first-link slot has slack 0 (start/finish
        // equal on both links) — deferral impossible; comm 2 must queue.
        st.schedule_comm(
            &topo,
            c(1),
            0.0,
            4.0,
            ProcId(0),
            ProcId(1),
            Routing::Bfs,
            Insertion::Basic,
            Switching::CutThrough,
        )
        .unwrap();
        let arrival = st
            .schedule_comm(
                &topo,
                c(2),
                0.0,
                2.0,
                ProcId(0),
                ProcId(1),
                Routing::Bfs,
                Insertion::Optimal,
                Switching::CutThrough,
            )
            .unwrap();
        assert_eq!(arrival, 10.0);
        st.check_invariants().unwrap();
    }

    #[test]
    fn optimal_insertion_uses_real_slack() {
        // Build slack explicitly: a 3-link chain where the middle
        // transfer is delayed downstream, giving its first-hop slot
        // real deferrable time.
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        let (p2, _) = b.add_processor(1.0);
        let sw = b.add_switch();
        b.add_duplex_cable(p0, sw, 1.0);
        b.add_duplex_cable(sw, p1, 1.0);
        b.add_duplex_cable(sw, p2, 1.0);
        let topo = b.build().unwrap();
        let mut st = SlottedState::new(&topo, 8);

        // comm 0 congests sw->p1 with [0, 10).
        st.schedule_comm(
            &topo,
            c(0),
            0.0,
            10.0,
            ProcId(0),
            ProcId(1),
            Routing::Bfs,
            Insertion::Basic,
            Switching::CutThrough,
        )
        .unwrap();
        // comm 1 (p0 -> p1, cost 4): p0->sw is busy [0,10) from comm 0
        // too... actually comm 0 occupies p0->sw [0,10) as well, so
        // comm 1 sits at [10,14) on p0->sw and [10,14) on sw->p1.
        st.schedule_comm(
            &topo,
            c(1),
            0.0,
            4.0,
            ProcId(0),
            ProcId(1),
            Routing::Bfs,
            Insertion::Basic,
            Switching::CutThrough,
        )
        .unwrap();
        let (_, t1) = st.placement(c(1));
        assert_eq!(t1[0], (10.0, 14.0));

        // comm 2 (p0 -> p2, cost 6) with optimal insertion: comm 1's
        // slot on p0->sw has zero slack (its next-hop times equal), so
        // no deferral; comm 2 appends at 14 on p0->sw... but BFS route
        // p0->sw->p2 only shares the first link.
        let arrival = st
            .schedule_comm(
                &topo,
                c(2),
                0.0,
                6.0,
                ProcId(0),
                ProcId(2),
                Routing::Bfs,
                Insertion::Optimal,
                Switching::CutThrough,
            )
            .unwrap();
        assert_eq!(arrival, 20.0);
        st.check_invariants().unwrap();
    }

    /// p0 -sw- p1 line with unit speeds and a per-hop switch delay.
    fn delayed_line(delay: f64) -> Topology {
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        let sw = b.add_switch();
        b.add_duplex_cable(p0, sw, 1.0);
        b.add_duplex_cable(sw, p1, 1.0);
        b.set_hop_delay(delay);
        b.build().unwrap()
    }

    #[test]
    fn deferrable_times_subtract_the_hop_delay() {
        let topo = delayed_line(0.5);
        let mut st = SlottedState::new(&topo, 4);
        // Store-and-forward, cost 4: hop 0 at [0,4), hop 1 at
        // [4.5, 8.5) (full message + 0.5 switch delay).
        st.schedule_comm(
            &topo,
            c(0),
            0.0,
            4.0,
            ProcId(0),
            ProcId(1),
            Routing::Bfs,
            Insertion::Basic,
            Switching::StoreAndForward,
        )
        .unwrap();
        let (_, times) = st.placement(c(0));
        assert_eq!(times, vec![(0.0, 4.0), (4.5, 8.5)]);
        // Hop 0 may defer by 4.0, not 4.5: at [4,8) its next hop is
        // still the mandatory 0.5 behind on both start and finish.
        let mut dts = Vec::new();
        deferrable_times_into(&st.queues[0], &st.comms, topo.hop_delay(), &mut dts);
        assert_eq!(dts, vec![4.0]);
    }

    #[test]
    fn optimal_insertion_keeps_the_hop_delay_gap() {
        // Regression: the deferral margin must respect the per-hop
        // switch delay. With cut-through on a delayed line, comm 0's
        // first-hop slot [0,4) runs exactly 0.5 ahead of its second
        // hop [0.5,4.5); without the hop-delay subtraction, optimal
        // insertion deferred it onto its own next hop's window to
        // squeeze comm 2 in at [0,0.5), and the audit flagged the
        // collapsed gap.
        let topo = delayed_line(0.5);
        let mut st = SlottedState::new(&topo, 8);
        for id in 0..2 {
            st.schedule_comm(
                &topo,
                c(id),
                0.0,
                4.0,
                ProcId(0),
                ProcId(1),
                Routing::Bfs,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap();
        }
        let arrival = st
            .schedule_comm(
                &topo,
                c(2),
                0.0,
                0.5,
                ProcId(0),
                ProcId(1),
                Routing::Bfs,
                Insertion::Optimal,
                Switching::CutThrough,
            )
            .unwrap();
        // No slack exists once the delay is honored: comm 2 queues at
        // the tail instead of displacing comm 0.
        assert_eq!(arrival, 9.0);
        for id in 0..3 {
            let (route, times) = st.placement(c(id));
            assert_eq!(route.len(), 2);
            for k in 1..times.len() {
                assert!(
                    times[k].0 >= times[k - 1].0 + 0.5 - 1e-9
                        && times[k].1 >= times[k - 1].1 + 0.5 - 1e-9,
                    "comm {id}: hop {k} window {:?} closer than the hop delay to {:?}",
                    times[k],
                    times[k - 1]
                );
            }
        }
        st.check_invariants().unwrap();
    }

    #[test]
    fn modified_dijkstra_routes_around_congestion() {
        // Two disjoint switch paths between p0 and p1.
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        let sa = b.add_switch();
        let sb = b.add_switch();
        b.add_duplex_cable(p0, sa, 1.0);
        b.add_duplex_cable(sa, p1, 1.0);
        b.add_duplex_cable(p0, sb, 1.0);
        b.add_duplex_cable(sb, p1, 1.0);
        let topo = b.build().unwrap();
        let mut st = SlottedState::new(&topo, 8);

        // Saturate the sa path.
        st.schedule_comm(
            &topo,
            c(0),
            0.0,
            50.0,
            ProcId(0),
            ProcId(1),
            Routing::Bfs,
            Insertion::Basic,
            Switching::CutThrough,
        )
        .unwrap();
        let via_sa = st.route_of(c(0))[0].to;
        // BFS would tie-break to the same path; modified Dijkstra must
        // pick the other one.
        let arrival = st
            .schedule_comm(
                &topo,
                c(1),
                0.0,
                5.0,
                ProcId(0),
                ProcId(1),
                Routing::ModifiedDijkstra,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap();
        assert_eq!(arrival, 5.0, "took the free path");
        assert_ne!(st.route_of(c(1))[0].to, via_sa);
    }

    #[test]
    fn route_cache_reuses_search_across_probe_candidates() {
        // Probe-cycle pattern: checkpoint, then repeatedly schedule the
        // same communication, roll it back exactly, and restore. The
        // second and later searches must be served from cache and yield
        // bitwise-identical results.
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        let sa = b.add_switch();
        let sb = b.add_switch();
        b.add_duplex_cable(p0, sa, 1.0);
        b.add_duplex_cable(sa, p1, 1.0);
        b.add_duplex_cable(p0, sb, 1.0);
        b.add_duplex_cable(sb, p1, 1.0);
        let topo = b.build().unwrap();

        let before = route_cache_stats();
        let mut st = SlottedState::with_tuning(&topo, 8, Tuning::optimized());
        st.schedule_comm(
            &topo,
            c(0),
            0.0,
            20.0,
            ProcId(0),
            ProcId(1),
            Routing::ModifiedDijkstra,
            Insertion::Basic,
            Switching::CutThrough,
        )
        .unwrap();

        let cp = st.checkpoint();
        let mut arrivals = Vec::new();
        for _ in 0..3 {
            let a = st
                .schedule_comm(
                    &topo,
                    c(1),
                    1.0,
                    7.0,
                    ProcId(0),
                    ProcId(1),
                    Routing::ModifiedDijkstra,
                    Insertion::Basic,
                    Switching::CutThrough,
                )
                .unwrap();
            arrivals.push(a);
            st.unschedule(c(1));
            st.restore(cp);
        }
        assert_eq!(arrivals[0].to_bits(), arrivals[1].to_bits());
        assert_eq!(arrivals[0].to_bits(), arrivals[2].to_bits());

        let after = route_cache_stats();
        // Counters are process-global and tests run in parallel, so
        // only delta lower bounds are safe to assert.
        assert!(after.misses > before.misses, "first search misses");
        assert!(after.hits >= before.hits + 2, "repeat searches hit");
    }

    #[test]
    fn route_cache_is_inert_without_checkpoint() {
        // HybridStatic schedulers never checkpoint; searches must not
        // consult (or populate) the cache, and mutations between calls
        // must yield exactly the reference answers.
        let topo = line();
        let mut opt = SlottedState::with_tuning(&topo, 8, Tuning::optimized());
        let mut refr = SlottedState::with_tuning(&topo, 8, Tuning::reference());
        for (i, cost) in [5.0, 3.0, 9.0, 2.0].into_iter().enumerate() {
            let a = opt
                .schedule_comm(
                    &topo,
                    c(i as u64),
                    0.0,
                    cost,
                    ProcId(0),
                    ProcId(1),
                    Routing::ModifiedDijkstra,
                    Insertion::Optimal,
                    Switching::CutThrough,
                )
                .unwrap();
            let b = refr
                .schedule_comm(
                    &topo,
                    c(i as u64),
                    0.0,
                    cost,
                    ProcId(0),
                    ProcId(1),
                    Routing::ModifiedDijkstra,
                    Insertion::Optimal,
                    Switching::CutThrough,
                )
                .unwrap();
            assert_eq!(a.to_bits(), b.to_bits());
            let (ra, ta) = opt.placement(c(i as u64));
            let (rb, tb) = refr.placement(c(i as u64));
            assert_eq!(ra, rb);
            assert_eq!(ta.len(), tb.len());
            for (x, y) in ta.iter().zip(&tb) {
                assert_eq!(x.0.to_bits(), y.0.to_bits());
                assert_eq!(x.1.to_bits(), y.1.to_bits());
            }
        }
        assert!(opt.route_cache.is_empty(), "no checkpoint, no cache");
    }

    #[test]
    fn masked_view_invalidates_bfs_cache() {
        // Two disjoint paths; cache a BFS route, then mask the link it
        // used. The next lookup must not serve the stale route.
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        let sa = b.add_switch();
        let sb = b.add_switch();
        b.add_duplex_cable(p0, sa, 1.0);
        b.add_duplex_cable(sa, p1, 1.0);
        b.add_duplex_cable(p0, sb, 1.0);
        b.add_duplex_cable(sb, p1, 1.0);
        let topo = b.build().unwrap();
        let src = topo.node_of_proc(ProcId(0));
        let dst = topo.node_of_proc(ProcId(1));

        let mut st = SlottedState::with_tuning(&topo, 4, Tuning::optimized());
        let mut first = Vec::new();
        assert!(st.pick_route_into(
            &topo,
            src,
            dst,
            0.0,
            1.0,
            Routing::Bfs,
            Switching::CutThrough,
            &mut first,
        ));
        let used = first[0].link;
        let masked = topo.masked(|l| l == used);
        let mut rerouted = Vec::new();
        assert!(st.pick_route_into(
            &masked,
            src,
            dst,
            0.0,
            1.0,
            Routing::Bfs,
            Switching::CutThrough,
            &mut rerouted,
        ));
        assert!(
            rerouted.iter().all(|h| h.link != used),
            "stale cached route served across a masked view"
        );
        // And back: the original view gets its own fresh fill again.
        let mut back = Vec::new();
        assert!(st.pick_route_into(
            &topo,
            src,
            dst,
            0.0,
            1.0,
            Routing::Bfs,
            Switching::CutThrough,
            &mut back,
        ));
        assert_eq!(back, first);
    }

    /// Two disjoint switch paths p0 -> p1 with some traffic preloaded,
    /// so route probes actually discriminate.
    fn congested_pair() -> (Topology, SlottedState) {
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(2.0);
        let sa = b.add_switch();
        let sb = b.add_switch();
        b.add_duplex_cable(p0, sa, 1.0);
        b.add_duplex_cable(sa, p1, 2.0);
        b.add_duplex_cable(p0, sb, 1.0);
        b.add_duplex_cable(sb, p1, 1.0);
        let topo = b.build().unwrap();
        let mut st = SlottedState::with_tuning(&topo, 32, Tuning::optimized());
        for (i, cost) in [20.0, 7.0].into_iter().enumerate() {
            st.schedule_comm(
                &topo,
                c(i as u64),
                0.0,
                cost,
                ProcId(0),
                ProcId(1),
                Routing::ModifiedDijkstra,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap();
        }
        (topo, st)
    }

    #[test]
    fn snapshot_restore_rolls_back_without_manual_unschedule() {
        // Under `snapshot_restore`, restore() itself is the rollback:
        // schedule candidates, never unschedule, and every restore
        // must land on exactly the checkpointed content.
        let (topo, mut st) = congested_pair();
        assert!(st.tuning().snapshot_restore);
        let cp = st.checkpoint();
        let mut arrivals = Vec::new();
        for k in 0..3 {
            let a = st
                .schedule_comm(
                    &topo,
                    c(9),
                    0.5,
                    6.0,
                    ProcId(0),
                    ProcId(1),
                    Routing::ModifiedDijkstra,
                    Insertion::Basic,
                    Switching::CutThrough,
                )
                .unwrap();
            arrivals.push(a);
            if k == 1 {
                // A second placement in the same candidate exercises
                // multi-comm restore bookkeeping.
                st.schedule_comm(
                    &topo,
                    c(10),
                    1.0,
                    2.0,
                    ProcId(0),
                    ProcId(1),
                    Routing::ModifiedDijkstra,
                    Insertion::Basic,
                    Switching::CutThrough,
                )
                .unwrap();
            }
            st.restore(cp);
            st.check_invariants().unwrap();
            assert!(st.route_of(c(9)).is_empty(), "record cleared by restore");
            assert!(st.route_of(c(10)).is_empty());
        }
        assert_eq!(arrivals[0].to_bits(), arrivals[1].to_bits());
        assert_eq!(arrivals[0].to_bits(), arrivals[2].to_bits());
        // And the queues really are back: a reference twin that never
        // probed at all schedules the next comm identically.
        let (topo2, mut fresh) = congested_pair();
        let a = st
            .schedule_comm(
                &topo,
                c(11),
                0.0,
                3.0,
                ProcId(0),
                ProcId(1),
                Routing::ModifiedDijkstra,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap();
        let b = fresh
            .schedule_comm(
                &topo2,
                c(11),
                0.0,
                3.0,
                ProcId(0),
                ProcId(1),
                Routing::ModifiedDijkstra,
                Insertion::Basic,
                Switching::CutThrough,
            )
            .unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    /// The overlay probe must answer exactly what the sequential
    /// schedule-then-rollback cycle answers, for every routing and
    /// switching mode, across repeated candidates of one probe cycle.
    #[test]
    fn overlay_probe_matches_sequential_probe() {
        let (topo, mut st) = congested_pair();
        let mut ws = ProbeWorkspace::new(topo.link_count());
        for (serial, (est, cost)) in [(1.0, 5.0), (0.0, 9.0), (2.5, 1.5)].into_iter().enumerate() {
            for routing in [Routing::Bfs, Routing::ModifiedDijkstra] {
                for switching in [Switching::CutThrough, Switching::StoreAndForward] {
                    // Sequential twin: schedule, record, roll back.
                    let cp = st.checkpoint();
                    let mut expected = Vec::new();
                    for _candidate in 0..3 {
                        let a = st
                            .schedule_comm(
                                &topo,
                                c(9),
                                est,
                                cost,
                                ProcId(0),
                                ProcId(1),
                                routing,
                                Insertion::Basic,
                                switching,
                            )
                            .unwrap();
                        expected.push(a);
                        st.unschedule(c(9));
                        st.restore(cp);
                    }
                    // Overlay probes of the same snapshot.
                    let snap = st.queue_slices();
                    for &e in &expected {
                        ws.begin_candidate(serial as u64 + 1);
                        let mut ov = OverlayState::new(&snap, st.tuning(), &mut ws);
                        let a = ov
                            .schedule_comm(
                                &topo,
                                c(9),
                                est,
                                cost,
                                ProcId(0),
                                ProcId(1),
                                routing,
                                switching,
                            )
                            .unwrap();
                        assert_eq!(
                            a.to_bits(),
                            e.to_bits(),
                            "overlay vs sequential ({routing:?}/{switching:?})"
                        );
                    }
                }
            }
        }
    }

    /// Within one candidate, consecutive probed communications must see
    /// each other (delta accumulation), exactly like the sequential
    /// path's committed-then-rolled-back placements.
    #[test]
    fn overlay_accumulates_deltas_like_sequential_commits() {
        let (topo, mut st) = congested_pair();
        let probes = [(c(8), 0.0, 6.0), (c(9), 1.0, 6.0), (c(10), 2.0, 4.0)];

        let cp = st.checkpoint();
        let mut expected = Vec::new();
        for &(comm, est, cost) in &probes {
            let a = st
                .schedule_comm(
                    &topo,
                    comm,
                    est,
                    cost,
                    ProcId(0),
                    ProcId(1),
                    Routing::ModifiedDijkstra,
                    Insertion::Basic,
                    Switching::CutThrough,
                )
                .unwrap();
            expected.push(a);
        }
        for &(comm, _, _) in probes.iter().rev() {
            st.unschedule(comm);
        }
        st.restore(cp);

        let snap = st.queue_slices();
        let mut ws = ProbeWorkspace::new(topo.link_count());
        ws.begin_candidate(1);
        let mut ov = OverlayState::new(&snap, st.tuning(), &mut ws);
        for (&(comm, est, cost), &e) in probes.iter().zip(&expected) {
            let a = ov
                .schedule_comm(
                    &topo,
                    comm,
                    est,
                    cost,
                    ProcId(0),
                    ProcId(1),
                    Routing::ModifiedDijkstra,
                    Switching::CutThrough,
                )
                .unwrap();
            assert_eq!(a.to_bits(), e.to_bits(), "delta accumulation diverged");
        }
        // A fresh candidate starts from the pristine snapshot again.
        ws.begin_candidate(1);
        let mut ov = OverlayState::new(&snap, st.tuning(), &mut ws);
        let a = ov
            .schedule_comm(
                &topo,
                c(8),
                0.0,
                6.0,
                ProcId(0),
                ProcId(1),
                Routing::ModifiedDijkstra,
                Switching::CutThrough,
            )
            .unwrap();
        assert_eq!(a.to_bits(), expected[0].to_bits());
    }
}
