//! BBSA — Bandwidth Based Scheduling Algorithm (§5 of the paper).
//!
//! BBSA keeps the list-scheduling skeleton (bottom-level priorities,
//! hybrid static processor choice, cost-descending edge order, modified
//! Dijkstra routing) but replaces the exclusive slot queues with
//! **fluid bandwidth sharing**: a link may carry several transfers at
//! once, each at a fraction of the bandwidth, and a transfer grabs all
//! remaining bandwidth as early as possible. Forwarding along the route
//! is capped by the arrival rate (formula (4)); see
//! [`es_linksched::bandwidth`] for the link-level machinery.
//!
//! The paper only specifies BBSA's link layer (§5); following §1 —
//! "*both* the proposed algorithms … select route paths with relatively
//! low network workload … by modified routing algorithm" — we give it
//! OIHSA's processor criterion (§4.1) and edge priority (§4.2), with
//! the routing metric probed against the bandwidth profiles. This
//! interpretation is recorded in DESIGN.md.

use crate::procsched::ProcState;
use crate::schedule::{CommPlacement, SchedError, Schedule, Scheduler, TaskPlacement};
use es_dag::{priority_list, EdgeId, Priority, TaskGraph, TaskId};
use es_linksched::bandwidth::{ArrivalCurve, Flow, RateProfile};
use es_linksched::time::EPS;
use es_linksched::CommId;
use es_net::{Hop, ProcId, Topology};
use es_route::{bfs_route, dijkstra_route, Route};

use crate::config::{EdgeEst, EdgeOrder, ProcSelection, Routing};

/// Configuration of [`BbsaScheduler`] (ablation knobs; the defaults are
/// the paper's BBSA).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BbsaConfig {
    /// Algorithm name for reports.
    pub name: &'static str,
    /// Task priority (paper: bottom level).
    pub priority: Priority,
    /// Route choice (paper: modified Dijkstra, probed on bandwidth
    /// profiles).
    pub routing: Routing,
    /// Edge ordering (paper: cost-descending).
    pub edge_order: EdgeOrder,
    /// Processor choice. Default: the paper's §4.1 hybrid static
    /// criterion; [`ProcSelection::EarliestFinishProbe`] (with exact
    /// fluid rollback) is the strong variant for comparisons against
    /// the probing BA.
    pub proc_selection: ProcSelection,
    /// Earliest communication start model (paper: ready time — the
    /// dynamic model, see [`EdgeEst::ReadyTime`]).
    pub edge_est: EdgeEst,
}

impl Default for BbsaConfig {
    fn default() -> Self {
        Self {
            name: "BBSA",
            priority: Priority::BottomLevel,
            routing: Routing::ModifiedDijkstra,
            edge_order: EdgeOrder::CostDesc,
            proc_selection: ProcSelection::HybridStatic,
            edge_est: EdgeEst::ReadyTime,
        }
    }
}

impl BbsaConfig {
    /// BBSA with the strong earliest-finish processor probe.
    pub fn probing() -> Self {
        Self {
            name: "BBSA-probe",
            proc_selection: ProcSelection::EarliestFinishProbe,
            edge_est: EdgeEst::SourceFinish,
            ..Self::default()
        }
    }
}

/// The paper's Bandwidth Based Scheduling Algorithm.
#[derive(Clone, Debug, Default)]
pub struct BbsaScheduler {
    cfg: BbsaConfig,
}

impl BbsaScheduler {
    /// BBSA with the paper's configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// BBSA with ablation knobs.
    pub fn with_config(cfg: BbsaConfig) -> Self {
        Self { cfg }
    }
}

impl Scheduler for BbsaScheduler {
    fn name(&self) -> &'static str {
        self.cfg.name
    }

    fn schedule(&self, dag: &TaskGraph, topo: &Topology) -> Result<Schedule, SchedError> {
        if topo.proc_count() == 0 {
            return Err(SchedError::NoProcessors);
        }
        let mut run = BbsaRun {
            cfg: &self.cfg,
            dag,
            topo,
            procs: ProcState::new(topo),
            profiles: (0..topo.link_count()).map(|_| RateProfile::new()).collect(),
            placed: vec![None; dag.task_count()],
            comm_routes: vec![Vec::new(); dag.edge_count()],
            comm_flows: vec![Vec::new(); dag.edge_count()],
            mls: topo.mean_link_speed(),
        };
        run.run()
    }
}

struct BbsaRun<'a> {
    cfg: &'a BbsaConfig,
    dag: &'a TaskGraph,
    topo: &'a Topology,
    procs: ProcState,
    profiles: Vec<RateProfile>,
    placed: Vec<Option<TaskPlacement>>,
    comm_routes: Vec<Route>,
    comm_flows: Vec<Vec<Flow>>,
    mls: f64,
}

/// Dijkstra state while routing a fluid transfer: either still at the
/// source processor, or carried to a vertex by the flow planned so far.
#[derive(Clone)]
enum FlowState {
    AtSource { at: f64 },
    Carried { flow: Flow, speed: f64, finish: f64 },
}

impl FlowState {
    fn key(&self) -> f64 {
        match self {
            FlowState::AtSource { at } => *at,
            FlowState::Carried { finish, .. } => *finish,
        }
    }
}

impl BbsaRun<'_> {
    fn run(&mut self) -> Result<Schedule, SchedError> {
        let order = priority_list(self.dag, self.cfg.priority);
        for &task in &order {
            let proc = match self.cfg.proc_selection {
                ProcSelection::EarliestFinishProbe => self.pick_by_probe(task)?,
                ProcSelection::HybridStatic => self.pick_by_hybrid_criterion(task),
            };
            let data_ready = self.schedule_in_edges(task, proc)?;
            let (start, finish) =
                self.procs
                    .place(self.topo, proc, data_ready, self.dag.weight(task));
            self.placed[task.index()] = Some(TaskPlacement {
                proc,
                start,
                finish,
            });
        }
        self.finish()
    }

    /// Earliest-finish probe: fluidly schedule the in-edges to every
    /// candidate processor, measure the task finish, roll the
    /// bandwidth reservations back exactly, keep the best processor.
    fn pick_by_probe(&mut self, task: TaskId) -> Result<ProcId, SchedError> {
        let weight = self.dag.weight(task);
        let mut best: Option<(ProcId, f64)> = None;
        for p in self.topo.proc_ids() {
            let data_ready = self.schedule_in_edges(task, p)?;
            let start = self.procs.earliest_start(p, data_ready);
            let finish = start + weight / self.topo.proc_speed(p);
            self.rollback_in_edges(task, p);
            if best.is_none_or(|(_, bf)| finish < bf - EPS) {
                best = Some((p, finish));
            }
        }
        Ok(best.expect("at least one processor").0)
    }

    /// Remove the fluid reservations made while probing `task` on `p`.
    fn rollback_in_edges(&mut self, task: TaskId, p: ProcId) {
        for &e in self.dag.in_edges(task) {
            let edge = self.dag.edge(e);
            let src = self.placed[edge.src.index()].expect("placed");
            if src.proc != p {
                for hop in std::mem::take(&mut self.comm_routes[e.index()]) {
                    self.profiles[hop.link.index()].remove_comm(CommId(u64::from(e.0)));
                }
                self.comm_flows[e.index()].clear();
            }
        }
    }

    /// OIHSA §4.1 criterion, shared verbatim with the slotted path.
    // TWIN(hybrid-criterion): begin
    fn pick_by_hybrid_criterion(&self, task: TaskId) -> ProcId {
        let weight = self.dag.weight(task);
        let mut best: Option<(ProcId, f64)> = None;
        for p in self.topo.proc_ids() {
            let mut comm_part = 0.0_f64; // TWIN-OK: fluid path is offline-only, floor is always zero
            for &e in self.dag.in_edges(task) {
                let edge = self.dag.edge(e);
                let src = self.placed[edge.src.index()].expect("placed");
                let est = if src.proc == p {
                    src.finish
                } else {
                    src.finish + edge.cost / self.mls
                };
                comm_part = comm_part.max(est);
            }
            let start = comm_part.max(self.procs.finish_time(p));
            let value = start + weight / self.topo.proc_speed(p);
            if best.is_none_or(|(_, bv)| value < bv - EPS) {
                best = Some((p, value));
            }
        }
        best.expect("at least one processor").0
    }
    // TWIN(hybrid-criterion): end

    fn schedule_in_edges(&mut self, task: TaskId, p: ProcId) -> Result<f64, SchedError> {
        let in_edges = self.dag.in_edges(task);
        let costs: Vec<f64> = in_edges.iter().map(|&e| self.dag.cost(e)).collect();
        let ready_time = match self.cfg.edge_est {
            EdgeEst::SourceFinish => None,
            EdgeEst::ReadyTime => Some(
                self.dag
                    .predecessors(task)
                    .map(|s| self.placed[s.index()].expect("placed").finish)
                    .fold(0.0_f64, f64::max),
            ),
        };
        let mut data_ready = 0.0_f64;
        for i in self.cfg.edge_order.order(&costs) {
            let e = in_edges[i];
            let edge = self.dag.edge(e);
            let src = self.placed[edge.src.index()].expect("placed");
            let arrival = if src.proc == p {
                src.finish
            } else {
                let est = ready_time.unwrap_or(src.finish);
                self.schedule_comm(e, est, edge.cost, src.proc, p)?
            };
            data_ready = data_ready.max(arrival);
        }
        Ok(data_ready)
    }

    /// Route (per config) and commit one fluid communication; returns
    /// the arrival time at the destination.
    fn schedule_comm(
        &mut self,
        e: EdgeId,
        est: f64,
        cost: f64,
        from: ProcId,
        to: ProcId,
    ) -> Result<f64, SchedError> {
        let src = self.topo.node_of_proc(from);
        let dst = self.topo.node_of_proc(to);
        let route = match self.cfg.routing {
            Routing::Bfs => bfs_route(self.topo, src, dst),
            Routing::ModifiedDijkstra => {
                let profiles = &self.profiles;
                let topo = self.topo;
                dijkstra_route(
                    topo,
                    src,
                    dst,
                    FlowState::AtSource { at: est },
                    |state, hop| {
                        let speed = topo.link_speed(hop.link);
                        let profile = &profiles[hop.link.index()];
                        let flow = match state {
                            FlowState::AtSource { at } => {
                                profile.allocate(speed, ArrivalCurve::Instant { at: *at }, cost)
                            }
                            FlowState::Carried {
                                flow, speed: prev, ..
                            } => profile.allocate(
                                speed,
                                ArrivalCurve::Upstream {
                                    flow,
                                    speed: *prev,
                                    delay: topo.hop_delay(),
                                },
                                cost,
                            ),
                        };
                        let finish = flow.finish().unwrap_or(state.key());
                        FlowState::Carried {
                            flow,
                            speed,
                            finish,
                        }
                    },
                    FlowState::key,
                )
                .map(|(route, _)| route)
            }
        }
        .ok_or(SchedError::NoRoute { from, to })?;

        // Commit hop by hop.
        let mut flows: Vec<Flow> = Vec::with_capacity(route.len());
        let mut arrival = est;
        for hop in &route {
            let speed = self.topo.link_speed(hop.link);
            let profile = &self.profiles[hop.link.index()];
            let flow = match flows.last() {
                None => profile.allocate(speed, ArrivalCurve::Instant { at: est }, cost),
                Some(prev) => {
                    let prev_speed = self.topo.link_speed(prev_hop_link(&route, flows.len()));
                    profile.allocate(
                        speed,
                        ArrivalCurve::Upstream {
                            flow: prev,
                            speed: prev_speed,
                            delay: self.topo.hop_delay(),
                        },
                        cost,
                    )
                }
            };
            self.profiles[hop.link.index()].commit(CommId(u64::from(e.0)), &flow);
            arrival = flow.finish().unwrap_or(arrival);
            flows.push(flow);
        }
        self.comm_routes[e.index()] = route;
        self.comm_flows[e.index()] = flows;
        Ok(arrival)
    }

    fn finish(&mut self) -> Result<Schedule, SchedError> {
        let tasks: Vec<TaskPlacement> = self
            .placed
            .iter()
            .map(|p| p.expect("all tasks placed"))
            .collect();
        let comms: Vec<CommPlacement> = self
            .dag
            .edge_ids()
            .map(|e| {
                let edge = self.dag.edge(e);
                if tasks[edge.src.index()].proc == tasks[edge.dst.index()].proc {
                    CommPlacement::Local
                } else {
                    CommPlacement::Fluid {
                        route: std::mem::take(&mut self.comm_routes[e.index()]),
                        flows: std::mem::take(&mut self.comm_flows[e.index()]),
                    }
                }
            })
            .collect();
        let makespan = Schedule::compute_makespan(&tasks);
        Ok(Schedule {
            algorithm: self.cfg.name,
            tasks,
            comms,
            makespan,
        })
    }
}

/// Link of the hop before position `pos` in `route`.
fn prev_hop_link(route: &[Hop], pos: usize) -> es_net::LinkId {
    route[pos - 1].link
}

#[cfg(test)]
mod tests {
    use super::*;
    use es_dag::gen::structured::{chain, fork_join};
    use es_dag::TaskGraphBuilder;
    use es_net::gen::{self, SpeedDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star(n: usize) -> Topology {
        gen::star(
            n,
            SpeedDist::Fixed(1.0),
            SpeedDist::Fixed(1.0),
            &mut StdRng::seed_from_u64(1),
        )
    }

    #[test]
    fn single_task() {
        let mut b = TaskGraphBuilder::new();
        b.add_task(5.0);
        let dag = b.build().unwrap();
        let s = BbsaScheduler::new().schedule(&dag, &star(2)).unwrap();
        assert_eq!(s.makespan, 5.0);
    }

    #[test]
    fn chain_stays_local() {
        let dag = chain(4, 2.0, 100.0);
        let s = BbsaScheduler::new().schedule(&dag, &star(3)).unwrap();
        assert_eq!(s.makespan, 8.0);
        assert!(s.comms.iter().all(|c| matches!(c, CommPlacement::Local)));
    }

    #[test]
    fn remote_comms_are_fluid_and_volume_conserving() {
        let mut g = TaskGraphBuilder::new();
        let a = g.add_task(10.0);
        let b_ = g.add_task(10.0);
        let j = g.add_task(1.0);
        g.add_edge(a, j, 8.0).unwrap();
        g.add_edge(b_, j, 8.0).unwrap();
        let dag = g.build().unwrap();
        let topo = star(2);
        let s = BbsaScheduler::new().schedule(&dag, &topo).unwrap();
        let mut saw_fluid = false;
        for c in &s.comms {
            if let CommPlacement::Fluid { route, flows } = c {
                saw_fluid = true;
                assert_eq!(route.len(), flows.len());
                for (hop, flow) in route.iter().zip(flows) {
                    let v = flow.volume(topo.link_speed(hop.link));
                    assert!((v - 8.0).abs() < 1e-6, "volume {v}");
                    flow.check_invariants().unwrap();
                }
            }
        }
        assert!(saw_fluid);
    }

    #[test]
    fn two_transfers_share_bandwidth_not_serialise() {
        // Two sources on one processor send to the same destination at
        // the same time. A slot queue serialises them; BBSA should let
        // the second share leftover bandwidth no later than BA would.
        let mut g = TaskGraphBuilder::new();
        let s1 = g.add_task(10.0);
        let s2 = g.add_task(10.0);
        let j = g.add_task(1.0);
        g.add_edge(s1, j, 10.0).unwrap();
        g.add_edge(s2, j, 10.0).unwrap();
        let dag = g.build().unwrap();
        let topo = star(2);

        let bbsa = BbsaScheduler::new().schedule(&dag, &topo).unwrap();
        let ba = crate::list::ListScheduler::ba()
            .schedule(&dag, &topo)
            .unwrap();
        assert!(
            bbsa.makespan <= ba.makespan + EPS,
            "BBSA {} vs BA {}",
            bbsa.makespan,
            ba.makespan
        );
    }

    #[test]
    fn deterministic() {
        let dag = fork_join(5, 3.0, 20.0);
        let topo = star(3);
        let a = BbsaScheduler::new().schedule(&dag, &topo).unwrap();
        let b = BbsaScheduler::new().schedule(&dag, &topo).unwrap();
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn bfs_routing_variant_works() {
        let cfg = BbsaConfig {
            name: "BBSA+bfs",
            routing: Routing::Bfs,
            ..BbsaConfig::default()
        };
        let dag = fork_join(4, 3.0, 15.0);
        let s = BbsaScheduler::with_config(cfg)
            .schedule(&dag, &star(3))
            .unwrap();
        assert!(s.makespan.is_finite());
    }

    #[test]
    fn no_route_error() {
        let mut b = Topology::builder();
        b.add_processor(1.0);
        b.add_processor(1.0);
        let topo = b.build().unwrap();
        let mut g = TaskGraphBuilder::new();
        let a = g.add_task(10.0);
        let b_ = g.add_task(10.0);
        let j = g.add_task(1.0);
        g.add_edge(a, j, 5.0).unwrap();
        g.add_edge(b_, j, 5.0).unwrap();
        let dag = g.build().unwrap();
        assert!(matches!(
            BbsaScheduler::new().schedule(&dag, &topo),
            Err(SchedError::NoRoute { .. })
        ));
    }
}
