//! Independent schedule validation.
//!
//! Every invariant of the scheduling model (§2 of the paper) is
//! re-checked here from the final [`Schedule`] alone — the validator
//! shares no state with the schedulers, so a bookkeeping bug in a
//! scheduler cannot hide itself:
//!
//! 1. task timing: `t_f = t_s + w/s(P)`, starts non-negative;
//! 2. processor non-preemption: tasks on one processor never overlap;
//! 3. precedence + data-ready: a task starts only after every incoming
//!    communication has arrived (same-processor edges after the source
//!    task finishes);
//! 4. route validity: every communication's hops chain from the source
//!    processor's vertex to the destination's, and each hop is
//!    permitted by its link (direction, bus membership);
//! 5. link causality along routes: start and finish times
//!    non-decreasing hop to hop (both slotted and fluid);
//! 6. slotted exclusivity: transfers on one link never overlap, and
//!    each occupies exactly `c(e)/s(L)`;
//! 7. fluid capacity & conservation: total bandwidth on a link never
//!    exceeds 100%, each hop carries the full volume `c(e)`, and
//!    forwarding never outpaces arrival (cumulative causality);
//! 8. the reported makespan equals the latest task finish.
//!
//! Findings are reported as structured [`Diagnostic`]s: family *n*
//! above maps to code `ES-E00n` (plus `ES-E000` for structural shape
//! mismatches that prevent deeper checks). [`audit`] returns the full
//! [`Report`]; [`validate`] is the legacy string-based shim over it.

use crate::diag::{Code, Diagnostic, Report, Span};
use crate::schedule::{CommPlacement, Schedule};
use es_dag::TaskGraph;
use es_linksched::bandwidth::Flow;
use es_linksched::time::EPS;
use es_net::{Hop, Topology};
use std::collections::BTreeMap;

/// Tolerance for accumulated arithmetic (volumes, capacities).
const VOL_EPS: f64 = 1e-3;

/// Audit `schedule` against the model and report every finding.
///
/// Error-severity diagnostics are model violations; warnings are
/// advisory (e.g. idealised communications that weaken what the audit
/// can check). A structurally malformed schedule (ES-E000 on the
/// placement counts) short-circuits the deeper checks.
pub fn audit(dag: &TaskGraph, topo: &Topology, schedule: &Schedule) -> Report {
    let mut report = Report::new(schedule.algorithm);

    if schedule.tasks.len() != dag.task_count() {
        report.push(
            Diagnostic::error(
                Code::Structure,
                Span::Schedule,
                format!(
                    "schedule has {} task placements for {} tasks",
                    schedule.tasks.len(),
                    dag.task_count()
                ),
            )
            .with("placements", schedule.tasks.len())
            .with("tasks", dag.task_count()),
        );
        return report;
    }
    if schedule.comms.len() != dag.edge_count() {
        report.push(
            Diagnostic::error(
                Code::Structure,
                Span::Schedule,
                format!(
                    "schedule has {} comm placements for {} edges",
                    schedule.comms.len(),
                    dag.edge_count()
                ),
            )
            .with("placements", schedule.comms.len())
            .with("edges", dag.edge_count()),
        );
        return report;
    }

    check_task_timing(dag, topo, schedule, &mut report);
    check_processor_exclusivity(schedule, &mut report);
    check_comms(dag, topo, schedule, &mut report);
    check_link_capacity(topo, schedule, &mut report);

    let max_finish = schedule.tasks.iter().map(|t| t.finish).fold(0.0, f64::max);
    if (schedule.makespan - max_finish).abs() > EPS {
        report.push(
            Diagnostic::error(
                Code::Makespan,
                Span::Schedule,
                format!(
                    "makespan {} != max task finish {max_finish}",
                    schedule.makespan
                ),
            )
            .with("reported", schedule.makespan)
            .with("actual", max_finish),
        );
    }

    report
}

/// Legacy validation interface: `Ok(())` when no error-severity
/// finding exists, otherwise every error message (warnings are
/// advisory and never fail validation). Thin shim over [`audit`].
pub fn validate(dag: &TaskGraph, topo: &Topology, schedule: &Schedule) -> Result<(), Vec<String>> {
    let report = audit(dag, topo, schedule);
    if report.is_clean() {
        Ok(())
    } else {
        Err(report
            .diagnostics
            .iter()
            .filter(|d| d.severity == crate::diag::Severity::Error)
            .map(|d| d.message.clone())
            .collect())
    }
}

fn check_task_timing(dag: &TaskGraph, topo: &Topology, schedule: &Schedule, report: &mut Report) {
    for t in dag.task_ids() {
        let p = &schedule.tasks[t.index()];
        if p.start < -EPS {
            report.push(
                Diagnostic::error(
                    Code::TaskTiming,
                    Span::Task(t.0),
                    format!("{t} starts at negative time {}", p.start),
                )
                .with("start", p.start),
            );
        }
        let expect = p.start + dag.weight(t) / topo.proc_speed(p.proc);
        if (p.finish - expect).abs() > 1e-6 {
            report.push(
                Diagnostic::error(
                    Code::TaskTiming,
                    Span::Task(t.0),
                    format!("{t} finish {} != start + w/s = {expect}", p.finish),
                )
                .with("finish", p.finish)
                .with("expected", expect),
            );
        }
    }
}

fn check_processor_exclusivity(schedule: &Schedule, report: &mut Report) {
    // BTreeMap: deterministic processor order in reports (and lint L1
    // bans hash-ordered iteration in this crate).
    let mut by_proc: BTreeMap<u32, Vec<(f64, f64)>> = BTreeMap::new();
    for t in &schedule.tasks {
        by_proc
            .entry(t.proc.0)
            .or_default()
            .push((t.start, t.finish));
    }
    for (p, mut spans) in by_proc {
        spans.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        for w in spans.windows(2) {
            if w[0].1 > w[1].0 + EPS {
                report.push(
                    Diagnostic::error(
                        Code::ProcOverlap,
                        Span::Proc(p),
                        format!(
                            "processor P{p}: tasks overlap ([{}, {}) then [{}, {}))",
                            w[0].0, w[0].1, w[1].0, w[1].1
                        ),
                    )
                    .with("first", format!("[{}, {})", w[0].0, w[0].1))
                    .with("second", format!("[{}, {})", w[1].0, w[1].1)),
                );
            }
        }
    }
}

fn check_comms(dag: &TaskGraph, topo: &Topology, schedule: &Schedule, report: &mut Report) {
    let mut ideal_comms = 0usize;
    for e in dag.edge_ids() {
        let edge = dag.edge(e);
        let src = &schedule.tasks[edge.src.index()];
        let dst = &schedule.tasks[edge.dst.index()];
        let comm = &schedule.comms[e.index()];

        match comm {
            CommPlacement::Local => {
                if src.proc != dst.proc {
                    report.push(
                        Diagnostic::error(
                            Code::Route,
                            Span::Edge(e.0),
                            format!("{e} marked Local but crosses {} -> {}", src.proc, dst.proc),
                        )
                        .with("src", src.proc)
                        .with("dst", dst.proc),
                    );
                }
                if dst.start < src.finish - EPS {
                    report.push(
                        Diagnostic::error(
                            Code::Precedence,
                            Span::Edge(e.0),
                            format!(
                                "{e}: destination starts {} before source finishes {}",
                                dst.start, src.finish
                            ),
                        )
                        .with("dst_start", dst.start)
                        .with("src_finish", src.finish),
                    );
                }
            }
            CommPlacement::Ideal { arrival, .. } => {
                ideal_comms += 1;
                if dst.start < arrival - EPS {
                    report.push(
                        Diagnostic::error(
                            Code::Precedence,
                            Span::Edge(e.0),
                            format!(
                                "{e}: destination starts {} before ideal arrival {arrival}",
                                dst.start
                            ),
                        )
                        .with("dst_start", dst.start)
                        .with("arrival", *arrival),
                    );
                }
            }
            CommPlacement::Slotted { route, times } => {
                if src.proc == dst.proc {
                    report.push(Diagnostic::error(
                        Code::Route,
                        Span::Edge(e.0),
                        format!("{e} is Slotted but both tasks on {}", src.proc),
                    ));
                    continue;
                }
                check_route_shape(topo, e, route, src.proc, dst.proc, report);
                if times.len() != route.len() {
                    report.push(
                        Diagnostic::error(
                            Code::Structure,
                            Span::Edge(e.0),
                            format!("{e}: {} hop times for {} hops", times.len(), route.len()),
                        )
                        .with("times", times.len())
                        .with("hops", route.len()),
                    );
                    continue;
                }
                // Durations, causality, source availability, arrival.
                for (k, (hop, &(s, f))) in route.iter().zip(times).enumerate() {
                    let int = edge.cost / topo.link_speed(hop.link);
                    if (f - s - int).abs() > 1e-6 {
                        report.push(
                            Diagnostic::error(
                                Code::SlotExclusivity,
                                Span::Hop {
                                    edge: e.0,
                                    hop: k as u32,
                                },
                                format!("{e} hop {k}: duration {} != c/s = {int}", f - s),
                            )
                            .with("duration", f - s)
                            .with("expected", int),
                        );
                    }
                    if k > 0 {
                        // Link causality, strengthened by the per-hop
                        // switch delay when configured.
                        let d = topo.hop_delay();
                        let (ps, pf) = times[k - 1];
                        if s < ps + d - EPS || f < pf + d - EPS {
                            report.push(
                                Diagnostic::error(
                                    Code::LinkCausality,
                                    Span::Hop {
                                        edge: e.0,
                                        hop: k as u32,
                                    },
                                    format!(
                                        "{e} hop {k}: causality violated ([{ps},{pf}) then [{s},{f}), hop delay {d})"
                                    ),
                                )
                                .with("prev", format!("[{ps}, {pf})"))
                                .with("cur", format!("[{s}, {f})"))
                                .with("hop_delay", d),
                            );
                        }
                    }
                }
                if let Some(&(first_start, _)) = times.first() {
                    if first_start < src.finish - EPS {
                        report.push(
                            Diagnostic::error(
                                Code::Precedence,
                                Span::Edge(e.0),
                                format!(
                                    "{e}: transfer starts {first_start} before source finishes {}",
                                    src.finish
                                ),
                            )
                            .with("transfer_start", first_start)
                            .with("src_finish", src.finish),
                        );
                    }
                }
                if let Some(&(_, last_finish)) = times.last() {
                    if dst.start < last_finish - EPS {
                        report.push(
                            Diagnostic::error(
                                Code::Precedence,
                                Span::Edge(e.0),
                                format!(
                                    "{e}: destination starts {} before arrival {last_finish}",
                                    dst.start
                                ),
                            )
                            .with("dst_start", dst.start)
                            .with("arrival", last_finish),
                        );
                    }
                }
            }
            CommPlacement::Fluid { route, flows } => {
                if src.proc == dst.proc {
                    report.push(Diagnostic::error(
                        Code::Route,
                        Span::Edge(e.0),
                        format!("{e} is Fluid but both tasks on {}", src.proc),
                    ));
                    continue;
                }
                check_route_shape(topo, e, route, src.proc, dst.proc, report);
                if flows.len() != route.len() {
                    report.push(
                        Diagnostic::error(
                            Code::Structure,
                            Span::Edge(e.0),
                            format!("{e}: {} flows for {} hops", flows.len(), route.len()),
                        )
                        .with("flows", flows.len())
                        .with("hops", route.len()),
                    );
                    continue;
                }
                for (k, (hop, flow)) in route.iter().zip(flows).enumerate() {
                    let span = Span::Hop {
                        edge: e.0,
                        hop: k as u32,
                    };
                    if let Err(why) = flow.check_invariants() {
                        report.push(Diagnostic::error(
                            Code::FluidCapacity,
                            span,
                            format!("{e} hop {k}: {why}"),
                        ));
                    }
                    let vol = flow.volume(topo.link_speed(hop.link));
                    if (vol - edge.cost).abs() > VOL_EPS * edge.cost.max(1.0) {
                        report.push(
                            Diagnostic::error(
                                Code::FluidCapacity,
                                span,
                                format!("{e} hop {k}: volume {vol} != c(e) = {}", edge.cost),
                            )
                            .with("volume", vol)
                            .with("expected", edge.cost),
                        );
                    }
                    if k > 0 {
                        let prev_speed = topo.link_speed(route[k - 1].link);
                        check_cumulative_causality(
                            e.0,
                            k,
                            &flows[k - 1],
                            prev_speed,
                            flow,
                            topo.link_speed(hop.link),
                            topo.hop_delay(),
                            report,
                        );
                    }
                }
                if let Some(first) = flows.first().and_then(Flow::start) {
                    if first < src.finish - EPS {
                        report.push(
                            Diagnostic::error(
                                Code::Precedence,
                                Span::Edge(e.0),
                                format!(
                                    "{e}: flow starts {first} before source finishes {}",
                                    src.finish
                                ),
                            )
                            .with("flow_start", first)
                            .with("src_finish", src.finish),
                        );
                    }
                }
                if let Some(last) = flows.last().and_then(Flow::finish) {
                    if dst.start < last - EPS {
                        report.push(
                            Diagnostic::error(
                                Code::Precedence,
                                Span::Edge(e.0),
                                format!(
                                    "{e}: destination starts {} before fluid arrival {last}",
                                    dst.start
                                ),
                            )
                            .with("dst_start", dst.start)
                            .with("arrival", last),
                        );
                    }
                }
            }
        }
    }
    if ideal_comms > 0 {
        report.push(
            Diagnostic::warning(
                Code::Route,
                Span::Schedule,
                format!(
                    "{ideal_comms} communication(s) use the idealised contention-free \
                     model; link exclusivity and capacity checks do not apply to them"
                ),
            )
            .with("ideal_comms", ideal_comms),
        );
    }
}

/// Hops must chain from the source processor's vertex to the
/// destination's, each permitted by its link.
fn check_route_shape(
    topo: &Topology,
    e: es_dag::EdgeId,
    route: &[Hop],
    from: es_net::ProcId,
    to: es_net::ProcId,
    report: &mut Report,
) {
    if route.is_empty() {
        report.push(Diagnostic::error(
            Code::Route,
            Span::Edge(e.0),
            format!("{e}: empty route for a remote communication"),
        ));
        return;
    }
    if route[0].from != topo.node_of_proc(from) {
        report.push(
            Diagnostic::error(
                Code::Route,
                Span::Edge(e.0),
                format!("{e}: route starts at {} not {}", route[0].from, from),
            )
            .with("starts_at", route[0].from)
            .with("expected", from),
        );
    }
    if route.last().unwrap().to != topo.node_of_proc(to) {
        report.push(
            Diagnostic::error(
                Code::Route,
                Span::Edge(e.0),
                format!("{e}: route ends at {} not {to}", route.last().unwrap().to),
            )
            .with("ends_at", route.last().unwrap().to)
            .with("expected", to),
        );
    }
    for (k, w) in route.windows(2).enumerate() {
        if w[0].to != w[1].from {
            report.push(Diagnostic::error(
                Code::Route,
                Span::Hop {
                    edge: e.0,
                    hop: k as u32 + 1,
                },
                format!("{e}: hops do not chain ({} then {})", w[0].to, w[1].from),
            ));
        }
    }
    for (k, hop) in route.iter().enumerate() {
        if !topo.link(hop.link).permits(hop.from, hop.to) {
            report.push(Diagnostic::error(
                Code::Route,
                Span::Hop {
                    edge: e.0,
                    hop: k as u32,
                },
                format!(
                    "{e}: link {} does not permit {} -> {}",
                    hop.link, hop.from, hop.to
                ),
            ));
        }
    }
}

/// Fluid causality: by any time `t`, the volume forwarded on the next
/// link may not exceed the volume that has arrived on the previous one
/// `hop_delay` earlier.
#[allow(clippy::too_many_arguments)]
fn check_cumulative_causality(
    edge_idx: u32,
    hop: usize,
    prev: &Flow,
    prev_speed: f64,
    cur: &Flow,
    cur_speed: f64,
    hop_delay: f64,
    report: &mut Report,
) {
    let cum = |flow: &Flow, speed: f64, t: f64| -> f64 {
        flow.pieces
            .iter()
            .map(|p| {
                let overlap = (t.min(p.end) - p.start).max(0.0);
                p.rate * speed * overlap
            })
            .sum()
    };
    let mut checkpoints: Vec<f64> = cur
        .pieces
        .iter()
        .flat_map(|p| [p.start, p.end])
        .chain(prev.pieces.iter().flat_map(|p| [p.start, p.end]))
        .collect();
    checkpoints.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    for &t in &checkpoints {
        let out = cum(cur, cur_speed, t);
        let inn = cum(prev, prev_speed, t - hop_delay);
        if out > inn + VOL_EPS * inn.max(1.0) {
            report.push(
                Diagnostic::error(
                    Code::FluidCapacity,
                    Span::Hop {
                        edge: edge_idx,
                        hop: hop as u32,
                    },
                    format!("e{edge_idx} hop {hop}: forwarded {out} > arrived {inn} at t={t}"),
                )
                .with("forwarded", out)
                .with("arrived", inn)
                .with("t", t),
            );
            return;
        }
    }
}

/// Links never carry more than 100% bandwidth: slotted transfers count
/// as rate-1 pieces, fluid ones at their allocated rates. Slotted-only
/// overcommitment is an exclusivity violation (ES-E006); once fluid
/// pieces are involved it is a capacity violation (ES-E007).
fn check_link_capacity(topo: &Topology, schedule: &Schedule, report: &mut Report) {
    let mut per_link: Vec<Vec<(f64, f64, f64)>> = vec![Vec::new(); topo.link_count()];
    let mut has_fluid: Vec<bool> = vec![false; topo.link_count()];
    for comm in &schedule.comms {
        match comm {
            CommPlacement::Slotted { route, times } => {
                for (hop, &(s, f)) in route.iter().zip(times) {
                    per_link[hop.link.index()].push((s, f, 1.0));
                }
            }
            CommPlacement::Fluid { route, flows } => {
                for (hop, flow) in route.iter().zip(flows) {
                    has_fluid[hop.link.index()] = true;
                    for p in &flow.pieces {
                        per_link[hop.link.index()].push((p.start, p.end, p.rate));
                    }
                }
            }
            _ => {}
        }
    }
    for (li, pieces) in per_link.iter().enumerate() {
        if pieces.is_empty() {
            continue;
        }
        let code = if has_fluid[li] {
            Code::FluidCapacity
        } else {
            Code::SlotExclusivity
        };
        // Sweep: +rate at start, -rate at end.
        let mut events: Vec<(f64, f64)> = Vec::with_capacity(pieces.len() * 2);
        for &(s, f, r) in pieces {
            if f - s > EPS {
                events.push((s, r));
                events.push((f, -r));
            }
        }
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite")
                // Process departures before arrivals at the same time.
                .then(a.1.partial_cmp(&b.1).expect("finite"))
        });
        // The whole model is EPS-tolerant (slots may "touch" within
        // EPS of each other), so an apparent overcommitment is only
        // real if it persists for longer than EPS.
        let mut active = 0.0;
        let mut over_since: Option<(f64, f64)> = None;
        let mut reported = false;
        for &(t, dr) in &events {
            active += dr;
            if active > 1.0 + 1e-4 {
                if over_since.is_none() {
                    over_since = Some((t, active));
                }
            } else if let Some((t0, peak)) = over_since.take() {
                if t - t0 > EPS && !reported {
                    report.push(
                        Diagnostic::error(
                            code,
                            Span::Link(li as u32),
                            format!("L{li}: bandwidth overcommitted ({peak:.6}) on [{t0}, {t})"),
                        )
                        .with("peak", peak)
                        .with("window", format!("[{t0}, {t})")),
                    );
                    reported = true;
                }
            }
        }
        if let Some((t0, peak)) = over_since {
            if !reported {
                report.push(
                    Diagnostic::error(
                        code,
                        Span::Link(li as u32),
                        format!("L{li}: bandwidth overcommitted ({peak:.6}) from t={t0} onwards"),
                    )
                    .with("peak", peak)
                    .with("from", t0),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbsa::BbsaScheduler;
    use crate::ideal::IdealScheduler;
    use crate::list::ListScheduler;
    use crate::schedule::Scheduler;
    use es_dag::gen::structured::{fork_join, gauss_elim, stencil_1d};
    use es_net::gen::{self, SpeedDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star(n: usize) -> Topology {
        gen::star(
            n,
            SpeedDist::Fixed(1.0),
            SpeedDist::Fixed(1.0),
            &mut StdRng::seed_from_u64(1),
        )
    }

    #[test]
    fn valid_schedules_pass_for_all_algorithms() {
        let dags = [
            fork_join(5, 4.0, 25.0),
            gauss_elim(4, 3.0, 12.0),
            stencil_1d(3, 3, 2.0, 9.0),
        ];
        let topo = star(3);
        for dag in &dags {
            for sched in [
                Box::new(ListScheduler::ba()) as Box<dyn Scheduler>,
                Box::new(ListScheduler::oihsa()),
                Box::new(BbsaScheduler::new()),
                Box::new(IdealScheduler::new()),
            ] {
                let s = sched.schedule(dag, &topo).unwrap();
                if let Err(errs) = validate(dag, &topo, &s) {
                    panic!("{} invalid: {errs:#?}", sched.name());
                }
                assert!(audit(dag, &topo, &s).is_clean());
            }
        }
    }

    #[test]
    fn ideal_schedules_carry_an_advisory_warning() {
        // Heavy tasks, near-free communication: the ideal scheduler
        // spreads tasks across processors, so remote Ideal placements
        // must exist.
        let dag = fork_join(3, 50.0, 0.1);
        let topo = star(3);
        let s = IdealScheduler::new().schedule(&dag, &topo).unwrap();
        let report = audit(&dag, &topo, &s);
        assert!(report.is_clean());
        assert!(report.warning_count() >= 1);
        // Warnings never leak into the legacy interface.
        assert!(validate(&dag, &topo, &s).is_ok());
    }

    #[test]
    fn detects_wrong_makespan() {
        let dag = fork_join(3, 2.0, 5.0);
        let topo = star(2);
        let mut s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        s.makespan += 1.0;
        let errs = validate(&dag, &topo, &s).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("makespan")));
        let report = audit(&dag, &topo, &s);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::Makespan && d.span == Span::Schedule));
    }

    #[test]
    fn detects_processor_overlap() {
        let dag = fork_join(3, 2.0, 5.0);
        let topo = star(2);
        let mut s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        // Move every task to processor 0 at time 0 — guaranteed overlap
        // (and broken comm bookkeeping, which is fine: we just need the
        // overlap message to appear).
        for t in &mut s.tasks {
            t.proc = es_net::ProcId(0);
            t.start = 0.0;
            t.finish = 2.0;
        }
        let errs = validate(&dag, &topo, &s).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("overlap")), "{errs:?}");
        assert!(audit(&dag, &topo, &s)
            .diagnostics
            .iter()
            .any(|d| d.code == Code::ProcOverlap));
    }

    #[test]
    fn detects_precedence_violation() {
        let dag = fork_join(3, 2.0, 5.0);
        let topo = star(2);
        let mut s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        // Pull the join task to time 0.
        let last = s.tasks.len() - 1;
        s.tasks[last].start = 0.0;
        s.tasks[last].finish = 2.0;
        assert!(validate(&dag, &topo, &s).is_err());
    }

    #[test]
    fn detects_truncated_comm_times() {
        let dag = fork_join(3, 50.0, 2.0);
        let topo = star(3);
        let mut s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        let mut corrupted = false;
        for c in &mut s.comms {
            if let CommPlacement::Slotted { times, .. } = c {
                times.pop();
                corrupted = true;
                break;
            }
        }
        assert!(corrupted, "fixture needs a remote comm");
        assert!(validate(&dag, &topo, &s).is_err());
    }

    #[test]
    fn detects_overcommitted_link() {
        let dag = fork_join(3, 50.0, 2.0);
        let topo = star(3);
        let mut s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        // Duplicate the first slotted comm's times onto time 0 overlap:
        // shift all its hop times to [0, int) to collide with whatever
        // else uses the link... simplest reliable corruption: set two
        // slotted comms to identical times on identical routes.
        type SlottedParts = (Vec<es_net::Hop>, Vec<(f64, f64)>);
        let mut first: Option<SlottedParts> = None;
        let mut broke = false;
        for c in &mut s.comms {
            if let CommPlacement::Slotted { route, times } = c {
                match &first {
                    None => first = Some((route.clone(), times.clone())),
                    Some((r0, t0)) => {
                        *route = r0.clone();
                        *times = t0.clone();
                        broke = true;
                        break;
                    }
                }
            }
        }
        if broke {
            let errs = validate(&dag, &topo, &s).unwrap_err();
            assert!(
                errs.iter()
                    .any(|e| e.contains("overcommitted") || e.contains("route")),
                "{errs:?}"
            );
        }
    }

    #[test]
    fn structural_mismatch_short_circuits() {
        let dag = fork_join(3, 2.0, 5.0);
        let topo = star(2);
        let mut s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        s.tasks.pop();
        let report = audit(&dag, &topo, &s);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].code, Code::Structure);
    }
}
