//! Independent schedule validation.
//!
//! Every invariant of the scheduling model (§2 of the paper) is
//! re-checked here from the final [`Schedule`] alone — the validator
//! shares no state with the schedulers, so a bookkeeping bug in a
//! scheduler cannot hide itself:
//!
//! 1. task timing: `t_f = t_s + w/s(P)`, starts non-negative;
//! 2. processor non-preemption: tasks on one processor never overlap;
//! 3. precedence + data-ready: a task starts only after every incoming
//!    communication has arrived (same-processor edges after the source
//!    task finishes);
//! 4. route validity: every communication's hops chain from the source
//!    processor's vertex to the destination's, and each hop is
//!    permitted by its link (direction, bus membership);
//! 5. link causality along routes: start and finish times
//!    non-decreasing hop to hop (both slotted and fluid);
//! 6. slotted exclusivity: transfers on one link never overlap, and
//!    each occupies exactly `c(e)/s(L)`;
//! 7. fluid capacity & conservation: total bandwidth on a link never
//!    exceeds 100%, each hop carries the full volume `c(e)`, and
//!    forwarding never outpaces arrival (cumulative causality);
//! 8. the reported makespan equals the latest task finish.

use crate::schedule::{CommPlacement, Schedule};
use es_dag::TaskGraph;
use es_linksched::bandwidth::Flow;
use es_linksched::time::EPS;
use es_net::{Hop, LinkId, Topology};

/// Tolerance for accumulated arithmetic (volumes, capacities).
const VOL_EPS: f64 = 1e-3;

/// Validate `schedule` against the model; returns every violation found
/// (empty error list never occurs — `Ok(())` means fully valid).
pub fn validate(dag: &TaskGraph, topo: &Topology, schedule: &Schedule) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();

    if schedule.tasks.len() != dag.task_count() {
        errs.push(format!(
            "schedule has {} task placements for {} tasks",
            schedule.tasks.len(),
            dag.task_count()
        ));
        return Err(errs);
    }
    if schedule.comms.len() != dag.edge_count() {
        errs.push(format!(
            "schedule has {} comm placements for {} edges",
            schedule.comms.len(),
            dag.edge_count()
        ));
        return Err(errs);
    }

    check_task_timing(dag, topo, schedule, &mut errs);
    check_processor_exclusivity(schedule, &mut errs);
    check_comms(dag, topo, schedule, &mut errs);
    check_link_capacity(topo, schedule, &mut errs);

    let max_finish = schedule
        .tasks
        .iter()
        .map(|t| t.finish)
        .fold(0.0, f64::max);
    if (schedule.makespan - max_finish).abs() > EPS {
        errs.push(format!(
            "makespan {} != max task finish {max_finish}",
            schedule.makespan
        ));
    }

    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

fn check_task_timing(
    dag: &TaskGraph,
    topo: &Topology,
    schedule: &Schedule,
    errs: &mut Vec<String>,
) {
    for t in dag.task_ids() {
        let p = &schedule.tasks[t.index()];
        if p.start < -EPS {
            errs.push(format!("{t} starts at negative time {}", p.start));
        }
        let expect = p.start + dag.weight(t) / topo.proc_speed(p.proc);
        if (p.finish - expect).abs() > 1e-6 {
            errs.push(format!(
                "{t} finish {} != start + w/s = {expect}",
                p.finish
            ));
        }
    }
}

fn check_processor_exclusivity(schedule: &Schedule, errs: &mut Vec<String>) {
    let mut by_proc: std::collections::HashMap<u32, Vec<(f64, f64)>> =
        std::collections::HashMap::new();
    for t in &schedule.tasks {
        by_proc.entry(t.proc.0).or_default().push((t.start, t.finish));
    }
    for (p, mut spans) in by_proc {
        spans.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        for w in spans.windows(2) {
            if w[0].1 > w[1].0 + EPS {
                errs.push(format!(
                    "processor P{p}: tasks overlap ([{}, {}) then [{}, {}))",
                    w[0].0, w[0].1, w[1].0, w[1].1
                ));
            }
        }
    }
}

fn check_comms(dag: &TaskGraph, topo: &Topology, schedule: &Schedule, errs: &mut Vec<String>) {
    for e in dag.edge_ids() {
        let edge = dag.edge(e);
        let src = &schedule.tasks[edge.src.index()];
        let dst = &schedule.tasks[edge.dst.index()];
        let comm = &schedule.comms[e.index()];

        match comm {
            CommPlacement::Local => {
                if src.proc != dst.proc {
                    errs.push(format!("{e} marked Local but crosses {} -> {}", src.proc, dst.proc));
                }
                if dst.start < src.finish - EPS {
                    errs.push(format!(
                        "{e}: destination starts {} before source finishes {}",
                        dst.start, src.finish
                    ));
                }
            }
            CommPlacement::Ideal { arrival, .. } => {
                if dst.start < arrival - EPS {
                    errs.push(format!(
                        "{e}: destination starts {} before ideal arrival {arrival}",
                        dst.start
                    ));
                }
            }
            CommPlacement::Slotted { route, times } => {
                if src.proc == dst.proc {
                    errs.push(format!("{e} is Slotted but both tasks on {}", src.proc));
                    continue;
                }
                check_route_shape(topo, e, route, src.proc, dst.proc, errs);
                if times.len() != route.len() {
                    errs.push(format!(
                        "{e}: {} hop times for {} hops",
                        times.len(),
                        route.len()
                    ));
                    continue;
                }
                // Durations, causality, source availability, arrival.
                for (k, (hop, &(s, f))) in route.iter().zip(times).enumerate() {
                    let int = edge.cost / topo.link_speed(hop.link);
                    if (f - s - int).abs() > 1e-6 {
                        errs.push(format!(
                            "{e} hop {k}: duration {} != c/s = {int}",
                            f - s
                        ));
                    }
                    if k > 0 {
                        // Link causality, strengthened by the per-hop
                        // switch delay when configured.
                        let d = topo.hop_delay();
                        let (ps, pf) = times[k - 1];
                        if s < ps + d - EPS || f < pf + d - EPS {
                            errs.push(format!(
                                "{e} hop {k}: causality violated ([{ps},{pf}) then [{s},{f}), hop delay {d})"
                            ));
                        }
                    }
                }
                if let Some(&(first_start, _)) = times.first() {
                    if first_start < src.finish - EPS {
                        errs.push(format!(
                            "{e}: transfer starts {first_start} before source finishes {}",
                            src.finish
                        ));
                    }
                }
                if let Some(&(_, last_finish)) = times.last() {
                    if dst.start < last_finish - EPS {
                        errs.push(format!(
                            "{e}: destination starts {} before arrival {last_finish}",
                            dst.start
                        ));
                    }
                }
            }
            CommPlacement::Fluid { route, flows } => {
                if src.proc == dst.proc {
                    errs.push(format!("{e} is Fluid but both tasks on {}", src.proc));
                    continue;
                }
                check_route_shape(topo, e, route, src.proc, dst.proc, errs);
                if flows.len() != route.len() {
                    errs.push(format!(
                        "{e}: {} flows for {} hops",
                        flows.len(),
                        route.len()
                    ));
                    continue;
                }
                for (k, (hop, flow)) in route.iter().zip(flows).enumerate() {
                    if let Err(why) = flow.check_invariants() {
                        errs.push(format!("{e} hop {k}: {why}"));
                    }
                    let vol = flow.volume(topo.link_speed(hop.link));
                    if (vol - edge.cost).abs() > VOL_EPS * edge.cost.max(1.0) {
                        errs.push(format!(
                            "{e} hop {k}: volume {vol} != c(e) = {}",
                            edge.cost
                        ));
                    }
                    if k > 0 {
                        let prev_speed = topo.link_speed(route[k - 1].link);
                        check_cumulative_causality(
                            e.index(),
                            k,
                            &flows[k - 1],
                            prev_speed,
                            flow,
                            topo.link_speed(hop.link),
                            topo.hop_delay(),
                            errs,
                        );
                    }
                }
                if let Some(first) = flows.first().and_then(Flow::start) {
                    if first < src.finish - EPS {
                        errs.push(format!(
                            "{e}: flow starts {first} before source finishes {}",
                            src.finish
                        ));
                    }
                }
                if let Some(last) = flows.last().and_then(Flow::finish) {
                    if dst.start < last - EPS {
                        errs.push(format!(
                            "{e}: destination starts {} before fluid arrival {last}",
                            dst.start
                        ));
                    }
                }
            }
        }
    }
}

/// Hops must chain from the source processor's vertex to the
/// destination's, each permitted by its link.
fn check_route_shape(
    topo: &Topology,
    e: es_dag::EdgeId,
    route: &[Hop],
    from: es_net::ProcId,
    to: es_net::ProcId,
    errs: &mut Vec<String>,
) {
    if route.is_empty() {
        errs.push(format!("{e}: empty route for a remote communication"));
        return;
    }
    if route[0].from != topo.node_of_proc(from) {
        errs.push(format!("{e}: route starts at {} not {}", route[0].from, from));
    }
    if route.last().unwrap().to != topo.node_of_proc(to) {
        errs.push(format!(
            "{e}: route ends at {} not {to}",
            route.last().unwrap().to
        ));
    }
    for w in route.windows(2) {
        if w[0].to != w[1].from {
            errs.push(format!("{e}: hops do not chain ({} then {})", w[0].to, w[1].from));
        }
    }
    for hop in route {
        if !topo.link(hop.link).permits(hop.from, hop.to) {
            errs.push(format!(
                "{e}: link {} does not permit {} -> {}",
                hop.link, hop.from, hop.to
            ));
        }
    }
}

/// Fluid causality: by any time `t`, the volume forwarded on the next
/// link may not exceed the volume that has arrived on the previous one
/// `hop_delay` earlier.
#[allow(clippy::too_many_arguments)]
fn check_cumulative_causality(
    edge_idx: usize,
    hop: usize,
    prev: &Flow,
    prev_speed: f64,
    cur: &Flow,
    cur_speed: f64,
    hop_delay: f64,
    errs: &mut Vec<String>,
) {
    let cum = |flow: &Flow, speed: f64, t: f64| -> f64 {
        flow.pieces
            .iter()
            .map(|p| {
                let overlap = (t.min(p.end) - p.start).max(0.0);
                p.rate * speed * overlap
            })
            .sum()
    };
    let mut checkpoints: Vec<f64> = cur
        .pieces
        .iter()
        .flat_map(|p| [p.start, p.end])
        .chain(prev.pieces.iter().flat_map(|p| [p.start, p.end]))
        .collect();
    checkpoints.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    for &t in &checkpoints {
        let out = cum(cur, cur_speed, t);
        let inn = cum(prev, prev_speed, t - hop_delay);
        if out > inn + VOL_EPS * inn.max(1.0) {
            errs.push(format!(
                "e{edge_idx} hop {hop}: forwarded {out} > arrived {inn} at t={t}"
            ));
            return;
        }
    }
}

/// Links never carry more than 100% bandwidth: slotted transfers count
/// as rate-1 pieces, fluid ones at their allocated rates.
fn check_link_capacity(topo: &Topology, schedule: &Schedule, errs: &mut Vec<String>) {
    let mut per_link: Vec<Vec<(f64, f64, f64)>> = vec![Vec::new(); topo.link_count()];
    for comm in &schedule.comms {
        match comm {
            CommPlacement::Slotted { route, times } => {
                for (hop, &(s, f)) in route.iter().zip(times) {
                    per_link[hop.link.index()].push((s, f, 1.0));
                }
            }
            CommPlacement::Fluid { route, flows } => {
                for (hop, flow) in route.iter().zip(flows) {
                    for p in &flow.pieces {
                        per_link[hop.link.index()].push((p.start, p.end, p.rate));
                    }
                }
            }
            _ => {}
        }
    }
    for (li, pieces) in per_link.iter().enumerate() {
        if pieces.is_empty() {
            continue;
        }
        // Sweep: +rate at start, -rate at end.
        let mut events: Vec<(f64, f64)> = Vec::with_capacity(pieces.len() * 2);
        for &(s, f, r) in pieces {
            if f - s > EPS {
                events.push((s, r));
                events.push((f, -r));
            }
        }
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite")
                // Process departures before arrivals at the same time.
                .then(a.1.partial_cmp(&b.1).expect("finite"))
        });
        // The whole model is EPS-tolerant (slots may "touch" within
        // EPS of each other), so an apparent overcommitment is only
        // real if it persists for longer than EPS.
        let mut active = 0.0;
        let mut over_since: Option<(f64, f64)> = None;
        let mut reported = false;
        for &(t, dr) in &events {
            active += dr;
            if active > 1.0 + 1e-4 {
                if over_since.is_none() {
                    over_since = Some((t, active));
                }
            } else if let Some((t0, peak)) = over_since.take() {
                if t - t0 > EPS && !reported {
                    errs.push(format!(
                        "{}: bandwidth overcommitted ({peak:.6}) on [{t0}, {t})",
                        LinkId(li as u32)
                    ));
                    reported = true;
                }
            }
        }
        if let Some((t0, peak)) = over_since {
            if !reported {
                errs.push(format!(
                    "{}: bandwidth overcommitted ({peak:.6}) from t={t0} onwards",
                    LinkId(li as u32)
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::ListScheduler;
    use crate::bbsa::BbsaScheduler;
    use crate::ideal::IdealScheduler;
    use crate::schedule::Scheduler;
    use es_dag::gen::structured::{fork_join, gauss_elim, stencil_1d};
    use es_net::gen::{self, SpeedDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star(n: usize) -> Topology {
        gen::star(
            n,
            SpeedDist::Fixed(1.0),
            SpeedDist::Fixed(1.0),
            &mut StdRng::seed_from_u64(1),
        )
    }

    #[test]
    fn valid_schedules_pass_for_all_algorithms() {
        let dags = [fork_join(5, 4.0, 25.0), gauss_elim(4, 3.0, 12.0), stencil_1d(3, 3, 2.0, 9.0)];
        let topo = star(3);
        for dag in &dags {
            for sched in [
                Box::new(ListScheduler::ba()) as Box<dyn Scheduler>,
                Box::new(ListScheduler::oihsa()),
                Box::new(BbsaScheduler::new()),
                Box::new(IdealScheduler::new()),
            ] {
                let s = sched.schedule(dag, &topo).unwrap();
                if let Err(errs) = validate(dag, &topo, &s) {
                    panic!("{} invalid: {errs:#?}", sched.name());
                }
            }
        }
    }

    #[test]
    fn detects_wrong_makespan() {
        let dag = fork_join(3, 2.0, 5.0);
        let topo = star(2);
        let mut s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        s.makespan += 1.0;
        let errs = validate(&dag, &topo, &s).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("makespan")));
    }

    #[test]
    fn detects_processor_overlap() {
        let dag = fork_join(3, 2.0, 5.0);
        let topo = star(2);
        let mut s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        // Move every task to processor 0 at time 0 — guaranteed overlap
        // (and broken comm bookkeeping, which is fine: we just need the
        // overlap message to appear).
        for t in &mut s.tasks {
            t.proc = es_net::ProcId(0);
            t.start = 0.0;
            t.finish = 2.0;
        }
        let errs = validate(&dag, &topo, &s).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("overlap")), "{errs:?}");
    }

    #[test]
    fn detects_precedence_violation() {
        let dag = fork_join(3, 2.0, 5.0);
        let topo = star(2);
        let mut s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        // Pull the join task to time 0.
        let last = s.tasks.len() - 1;
        s.tasks[last].start = 0.0;
        s.tasks[last].finish = 2.0;
        assert!(validate(&dag, &topo, &s).is_err());
    }

    #[test]
    fn detects_truncated_comm_times() {
        let dag = fork_join(3, 50.0, 2.0);
        let topo = star(3);
        let mut s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        let mut corrupted = false;
        for c in &mut s.comms {
            if let CommPlacement::Slotted { times, .. } = c {
                times.pop();
                corrupted = true;
                break;
            }
        }
        assert!(corrupted, "fixture needs a remote comm");
        assert!(validate(&dag, &topo, &s).is_err());
    }

    #[test]
    fn detects_overcommitted_link() {
        let dag = fork_join(3, 50.0, 2.0);
        let topo = star(3);
        let mut s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        // Duplicate the first slotted comm's times onto time 0 overlap:
        // shift all its hop times to [0, int) to collide with whatever
        // else uses the link... simplest reliable corruption: set two
        // slotted comms to identical times on identical routes.
        let mut first: Option<(Vec<es_net::Hop>, Vec<(f64, f64)>)> = None;
        let mut broke = false;
        for c in &mut s.comms {
            if let CommPlacement::Slotted { route, times } = c {
                match &first {
                    None => first = Some((route.clone(), times.clone())),
                    Some((r0, t0)) => {
                        *route = r0.clone();
                        *times = t0.clone();
                        broke = true;
                        break;
                    }
                }
            }
        }
        if broke {
            let errs = validate(&dag, &topo, &s).unwrap_err();
            assert!(
                errs.iter().any(|e| e.contains("overcommitted") || e.contains("route")),
                "{errs:?}"
            );
        }
    }
}
