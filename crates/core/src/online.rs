//! Online multi-DAG scheduling on one shared network (DESIGN.md §15).
//!
//! Everything else in this crate schedules a single DAG offline. This
//! module delivers a *stream* of tenant jobs over time onto one shared
//! topology: a seeded Poisson-like arrival process draws mixed workload
//! families and sizes from the vendored RNG, an admission policy picks
//! the next job whenever a dispatch slot frees up, and the link and
//! processor state persists across jobs so later arrivals contend with
//! everything still in flight. Completed jobs are *retired*: their
//! final communication placements are read back and (with compaction
//! enabled) their link slots released through the
//! [`es_linksched::LinkModel`] trait so long runs do not accrete state.
//!
//! ## Determinism and the compaction invariant
//!
//! Dispatch instants are monotone: a job dispatched at floor `d` can
//! place nothing before `d`, and a job retires only once its finish is
//! `<= d` for some dispatch instant `d`. Every slot of a retired job
//! therefore lies at or before every future probe window, so releasing
//! those slots is bitwise semantics-free — the `integration_online`
//! differential suite pins that compacted and uncompacted runs place
//! every subsequent job identically. Placements are read back at
//! retirement, after which optimal insertion can no longer defer them
//! (deferral only ever touches slots overlapping a future probe
//! window, and a comm's last-hop arrival never moves at all).
//!
//! ## SLO metrics
//!
//! Per job: arrival, dispatch, start, finish, response time
//! (`finish - arrival`), queueing delay (`dispatch - arrival`), and
//! slowdown (response over the job's *isolated* makespan — the same
//! scheduler on an empty platform). Per tenant: mean/P50/P95/max
//! slowdown and mean response/queueing, plus a max/mean fairness ratio
//! across tenants.

use crate::config::ListConfig;
use crate::list::schedule_onto;
use crate::procsched::ProcState;
use crate::schedule::{CommPlacement, SchedError, Schedule};
use crate::slotted::SlottedState;
use es_dag::gen::structured::{chain, diamond_mesh, fft_graph, fork_join, gauss_elim, stencil_1d};
use es_dag::TaskGraph;
use es_linksched::CommId;
use es_net::Topology;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeMap;

/// Domain-separation constant folded into [`ArrivalSpec::seed`] so the
/// arrival stream never aliases the instance-generation or fault
/// streams of the same experiment seed.
pub const ONLINE_STREAM: u64 = 0x0a11_ea15_5eed_cafe;

/// Workload family an arriving job is drawn from (the structured DAG
/// kernels, sized by one generic knob).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobFamily {
    /// Linear pipeline ([`chain`]).
    Chain,
    /// Fork-join fan-out/fan-in ([`fork_join`]).
    ForkJoin,
    /// Gaussian elimination kernel ([`gauss_elim`]).
    GaussElim,
    /// Butterfly FFT ([`fft_graph`]).
    Fft,
    /// 1-D stencil sweep ([`stencil_1d`]).
    Stencil,
    /// Diamond mesh ([`diamond_mesh`]).
    Diamond,
}

impl JobFamily {
    /// Every family, in the fixed order the arrival process draws from.
    pub const ALL: [JobFamily; 6] = [
        JobFamily::Chain,
        JobFamily::ForkJoin,
        JobFamily::GaussElim,
        JobFamily::Fft,
        JobFamily::Stencil,
        JobFamily::Diamond,
    ];

    /// Stable lower-case label (CSV column, manifest key).
    pub fn name(self) -> &'static str {
        match self {
            JobFamily::Chain => "chain",
            JobFamily::ForkJoin => "fork-join",
            JobFamily::GaussElim => "gauss",
            JobFamily::Fft => "fft",
            JobFamily::Stencil => "stencil",
            JobFamily::Diamond => "diamond",
        }
    }

    /// Instantiate the kernel at generic size `size` (>= 1), task
    /// weight `weight`, and communication-to-computation ratio `ccr`
    /// (edge cost = `weight * ccr`).
    pub fn instantiate(self, size: u32, weight: f64, ccr: f64) -> TaskGraph {
        let cost = weight * ccr;
        let s = size.max(1) as usize;
        match self {
            JobFamily::Chain => chain(2 * s, weight, cost),
            JobFamily::ForkJoin => fork_join(s + 1, weight, cost),
            JobFamily::GaussElim => gauss_elim(s + 1, weight, cost),
            JobFamily::Fft => fft_graph(1 << size.clamp(1, 4), weight, cost),
            JobFamily::Stencil => stencil_1d(s, s + 1, weight, cost),
            JobFamily::Diamond => diamond_mesh(s, weight, cost),
        }
    }
}

/// Seeded description of an arrival stream: how many jobs, how many
/// tenants, the Poisson-like mean inter-arrival gap, and the workload
/// mix the per-job draws range over.
#[derive(Clone, Debug)]
pub struct ArrivalSpec {
    /// Number of jobs to deliver.
    pub jobs: usize,
    /// Number of tenants jobs are attributed to (uniform draw).
    pub tenants: u32,
    /// Mean of the exponential inter-arrival gap.
    pub mean_interarrival: f64,
    /// Inclusive range of the generic kernel size knob.
    pub size_range: (u32, u32),
    /// Task-weight range (uniform draw).
    pub weight_range: (f64, f64),
    /// CCR values drawn uniformly (index draw, so exact values).
    pub ccr_values: Vec<f64>,
    /// Stream seed (domain-separated with [`ONLINE_STREAM`]).
    pub seed: u64,
}

impl ArrivalSpec {
    /// The default mixed workload: small-to-medium kernels, three CCR
    /// regimes from compute-bound to communication-bound.
    pub fn default_mix(jobs: usize, tenants: u32, mean_interarrival: f64, seed: u64) -> Self {
        Self {
            jobs,
            tenants,
            mean_interarrival,
            size_range: (2, 4),
            weight_range: (4.0, 12.0),
            ccr_values: vec![0.5, 2.0, 8.0],
            seed,
        }
    }
}

/// One job of the arrival script: a tenant's DAG plus its arrival
/// instant. Fields are public so tests can hand-construct scripts.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Dense job id (dispatch ties break on it; ids are never reused).
    pub id: u64,
    /// Owning tenant.
    pub tenant: u32,
    /// Arrival instant (nondecreasing in a generated script).
    pub arrival: f64,
    /// Workload-family label (`"custom"` for hand-built jobs).
    pub label: &'static str,
    /// The job's task graph.
    pub dag: TaskGraph,
}

impl JobSpec {
    /// A hand-built job (label `"custom"`).
    pub fn new(id: u64, tenant: u32, arrival: f64, dag: TaskGraph) -> Self {
        Self {
            id,
            tenant,
            arrival,
            label: "custom",
            dag,
        }
    }
}

/// Total task weight of a DAG (the admission policy's work measure).
pub fn total_work(dag: &TaskGraph) -> f64 {
    dag.task_ids().map(|t| dag.weight(t)).sum()
}

/// Materialise the arrival script of `spec`: one seeded pass drawing,
/// per job and in this fixed order, the inter-arrival gap `u` (mapped
/// through `-ln(1 - u) * mean`), the tenant, the family, the size, the
/// weight, and the CCR index. The draw order is part of the format —
/// the golden-vector test in `integration_online.rs` pins the
/// underlying RNG stream (RETIGHTEN(rand)).
pub fn arrival_script(spec: &ArrivalSpec) -> Vec<JobSpec> {
    assert!(spec.tenants >= 1, "at least one tenant");
    assert!(spec.mean_interarrival > 0.0, "positive mean inter-arrival");
    assert!(!spec.ccr_values.is_empty(), "at least one CCR value");
    let (lo, hi) = spec.size_range;
    assert!(lo >= 1 && lo <= hi, "valid size range");
    let mut rng = StdRng::seed_from_u64(spec.seed ^ ONLINE_STREAM);
    let mut clock = 0.0_f64;
    let mut jobs = Vec::with_capacity(spec.jobs);
    for id in 0..spec.jobs as u64 {
        let u: f64 = rng.random_range(0.0..1.0);
        clock += -(1.0 - u).ln() * spec.mean_interarrival;
        let tenant = rng.random_range(0..spec.tenants);
        let family = JobFamily::ALL[rng.random_range(0..JobFamily::ALL.len())];
        let size = rng.random_range(lo..=hi);
        let weight = rng.random_range(spec.weight_range.0..spec.weight_range.1);
        let ccr = spec.ccr_values[rng.random_range(0..spec.ccr_values.len())];
        jobs.push(JobSpec {
            id,
            tenant,
            arrival: clock,
            label: family.name(),
            dag: family.instantiate(size, weight, ccr),
        });
    }
    jobs
}

/// Admission policy: which waiting job dispatches when a slot frees.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// First-come-first-served (lowest job id among the arrived).
    Fifo,
    /// Shortest total work first (ties on job id).
    ShortestWorkFirst,
}

impl Admission {
    /// Both policies, in CLI presentation order.
    pub const ALL: [Admission; 2] = [Admission::Fifo, Admission::ShortestWorkFirst];

    /// Stable lower-case label (CSV column, CLI flag value).
    pub fn name(self) -> &'static str {
        match self {
            Admission::Fifo => "fifo",
            Admission::ShortestWorkFirst => "swf",
        }
    }

    /// Parse a CLI flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fifo" => Some(Admission::Fifo),
            "swf" | "shortest-work-first" => Some(Admission::ShortestWorkFirst),
            _ => None,
        }
    }
}

/// Online engine configuration.
#[derive(Clone, Debug)]
pub struct OnlineConfig {
    /// Per-job scheduler (any [`ListConfig`] axis combination).
    pub scheduler: ListConfig,
    /// Admission policy for the waiting queue.
    pub admission: Admission,
    /// Dispatch-slot cap: at most this many jobs in flight at once.
    pub max_inflight: usize,
    /// Release retired jobs' link slots (semantics-free; see module
    /// docs). Off only for the differential oracle.
    pub compaction: bool,
}

impl OnlineConfig {
    /// FIFO admission, four dispatch slots, compaction on.
    pub fn new(scheduler: ListConfig) -> Self {
        Self {
            scheduler,
            admission: Admission::Fifo,
            max_inflight: 4,
            compaction: true,
        }
    }
}

/// Per-job SLO record of one online run.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Job id from the script.
    pub job: u64,
    /// Owning tenant.
    pub tenant: u32,
    /// Workload-family label.
    pub label: &'static str,
    /// Arrival instant.
    pub arrival: f64,
    /// Dispatch instant (the scheduling floor).
    pub dispatch: f64,
    /// Earliest task start (equals `dispatch` for an empty DAG).
    pub start: f64,
    /// Latest task finish.
    pub finish: f64,
    /// `finish - arrival`.
    pub response: f64,
    /// `dispatch - arrival`.
    pub queueing: f64,
    /// Total task weight.
    pub work: f64,
    /// Makespan of the same scheduler on an empty platform.
    pub isolated_makespan: f64,
    /// `response / isolated_makespan` (1.0 when the job is empty).
    pub slowdown: f64,
    /// The job's final schedule, with communication placements read
    /// back at retirement (absolute times on the shared platform).
    pub schedule: Schedule,
}

/// Result of one online run.
#[derive(Clone, Debug)]
pub struct OnlineRun {
    /// One outcome per script job, in job-id order.
    pub outcomes: Vec<JobOutcome>,
    /// Latest finish across all jobs.
    pub horizon: f64,
    /// Link slots released by compaction (0 when disabled).
    pub released_slots: usize,
}

impl OnlineRun {
    /// Per-tenant SLO summaries (ascending tenant id).
    pub fn tenant_fairness(&self) -> Vec<TenantSummary> {
        tenant_fairness(&self.outcomes)
    }

    /// Max/mean ratio of per-tenant mean slowdowns (1.0 = perfectly
    /// fair, 0.0 when there are no jobs).
    pub fn fairness_ratio(&self) -> f64 {
        fairness_ratio(&self.tenant_fairness())
    }

    /// Mean response time across all jobs.
    pub fn mean_response(&self) -> f64 {
        mean(self.outcomes.iter().map(|o| o.response))
    }

    /// Mean slowdown across all jobs.
    pub fn mean_slowdown(&self) -> f64 {
        mean(self.outcomes.iter().map(|o| o.slowdown))
    }
}

/// Per-tenant SLO summary.
#[derive(Clone, Debug)]
pub struct TenantSummary {
    /// Tenant id.
    pub tenant: u32,
    /// Jobs attributed to the tenant.
    pub jobs: usize,
    /// Mean slowdown.
    pub mean_slowdown: f64,
    /// Median slowdown (nearest rank).
    pub p50_slowdown: f64,
    /// 95th-percentile slowdown (nearest rank).
    pub p95_slowdown: f64,
    /// Worst slowdown.
    pub max_slowdown: f64,
    /// Mean response time.
    pub mean_response: f64,
    /// Mean queueing delay.
    pub mean_queueing: f64,
}

/// Group outcomes by tenant and summarise (ascending tenant id; the
/// grouping is a `BTreeMap`, so iteration order is deterministic).
pub fn tenant_fairness(outcomes: &[JobOutcome]) -> Vec<TenantSummary> {
    let mut by_tenant: BTreeMap<u32, Vec<&JobOutcome>> = BTreeMap::new();
    for o in outcomes {
        by_tenant.entry(o.tenant).or_default().push(o);
    }
    by_tenant
        .into_iter()
        .map(|(tenant, os)| {
            let mut slowdowns: Vec<f64> = os.iter().map(|o| o.slowdown).collect();
            slowdowns.sort_by(f64::total_cmp);
            TenantSummary {
                tenant,
                jobs: os.len(),
                mean_slowdown: mean(os.iter().map(|o| o.slowdown)),
                p50_slowdown: percentile(&slowdowns, 0.50),
                p95_slowdown: percentile(&slowdowns, 0.95),
                max_slowdown: slowdowns.last().copied().unwrap_or(0.0),
                mean_response: mean(os.iter().map(|o| o.response)),
                mean_queueing: mean(os.iter().map(|o| o.queueing)),
            }
        })
        .collect()
}

/// Max/mean ratio of the per-tenant mean slowdowns.
pub fn fairness_ratio(summaries: &[TenantSummary]) -> f64 {
    if summaries.is_empty() {
        return 0.0;
    }
    let max = summaries
        .iter()
        .map(|s| s.mean_slowdown)
        .fold(0.0_f64, f64::max);
    let mean = mean(summaries.iter().map(|s| s.mean_slowdown));
    if mean > 0.0 {
        max / mean
    } else {
        0.0
    }
}

fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0_f64;
    let mut n = 0usize;
    for x in xs {
        sum += x;
        n += 1;
    }
    #[allow(clippy::cast_precision_loss)]
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Nearest-rank percentile of an ascending-sorted sample (same
/// convention as the robustness sweep's P95).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A dispatched, not-yet-retired job.
struct Active {
    idx: usize,
    finish: f64,
    comm_base: u64,
    schedule: Schedule,
    dispatch: f64,
}

/// Run the online engine: deliver `jobs` (any order; dispatch sorts by
/// arrival and policy) onto `topo` with persistent platform state.
///
/// Event loop, entirely driven by job data (no wall clock): while jobs
/// wait, compute the next *dispatch instant* `d` — the earliest time
/// both a dispatch slot and a waiting job exist — retire every active
/// job whose finish is `<= d` (reading back final placements, then
/// releasing slots when compaction is on), pick the next job by the
/// admission policy, and schedule it with floor `d` and a fresh
/// [`CommId`] block. Dispatch instants are monotone, which the
/// proptests pin.
pub fn run_online(
    cfg: &OnlineConfig,
    topo: &Topology,
    jobs: &[JobSpec],
) -> Result<OnlineRun, SchedError> {
    assert!(cfg.max_inflight >= 1, "need at least one dispatch slot");
    // Isolated makespans (slowdown denominators): same scheduler, empty
    // platform, job-local comm ids.
    let mut isolated = Vec::with_capacity(jobs.len());
    for job in jobs {
        let mut procs = ProcState::new(topo);
        let mut links =
            SlottedState::with_tuning(topo, job.dag.edge_count(), cfg.scheduler.effective_tuning());
        let s = schedule_onto(
            &cfg.scheduler,
            &job.dag,
            topo,
            &mut procs,
            &mut links,
            0,
            0.0,
        )?;
        isolated.push(s.makespan);
    }

    let mut procs = ProcState::new(topo);
    let mut links = SlottedState::with_tuning(topo, 0, cfg.scheduler.effective_tuning());
    let mut outcomes: Vec<Option<JobOutcome>> = (0..jobs.len()).map(|_| None).collect();
    let mut waiting: Vec<usize> = (0..jobs.len()).collect();
    let mut active: Vec<Active> = Vec::new();
    let mut comm_next = 0_u64;
    let mut released = 0_usize;
    let mut clock = 0.0_f64;

    while !waiting.is_empty() {
        // Earliest instant a dispatch slot is free...
        let t_cap = if active.len() < cfg.max_inflight {
            clock
        } else {
            active
                .iter()
                .map(|a| a.finish)
                .fold(f64::INFINITY, f64::min)
        };
        // ...and a job has arrived.
        let t_arr = waiting
            .iter()
            .map(|&i| jobs[i].arrival)
            .fold(f64::INFINITY, f64::min);
        let d = t_cap.max(t_arr).max(clock);

        retire(
            d,
            &mut active,
            jobs,
            &isolated,
            &mut links,
            cfg.compaction,
            &mut released,
            &mut outcomes,
        );

        // Admission: among the arrived, FIFO takes the lowest id, SWF
        // the least total work (ties on id — `to_bits` keeps the key
        // totally ordered without float comparison pitfalls).
        let pick = waiting
            .iter()
            .copied()
            .filter(|&i| jobs[i].arrival <= d)
            .min_by_key(|&i| match cfg.admission {
                Admission::Fifo => (0_u64, jobs[i].id),
                Admission::ShortestWorkFirst => (total_work(&jobs[i].dag).to_bits(), jobs[i].id),
            })
            .expect("d >= the earliest waiting arrival");
        waiting.retain(|&i| i != pick);

        let job = &jobs[pick];
        let comm_base = comm_next;
        comm_next += job.dag.edge_count() as u64;
        let schedule = schedule_onto(
            &cfg.scheduler,
            &job.dag,
            topo,
            &mut procs,
            &mut links,
            comm_base,
            d,
        )?;
        let finish = schedule.makespan.max(d);
        active.push(Active {
            idx: pick,
            finish,
            comm_base,
            schedule,
            dispatch: d,
        });
        clock = d;
    }
    retire(
        f64::INFINITY,
        &mut active,
        jobs,
        &isolated,
        &mut links,
        cfg.compaction,
        &mut released,
        &mut outcomes,
    );

    let outcomes: Vec<JobOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every job retired"))
        .collect();
    let horizon = outcomes.iter().map(|o| o.finish).fold(0.0_f64, f64::max);
    Ok(OnlineRun {
        outcomes,
        horizon,
        released_slots: released,
    })
}

/// Retire every active job with finish `<= d` (ascending finish, ties
/// on job id): read back final communication placements, build the
/// outcome, and — with compaction — release the job's link slots.
#[allow(clippy::too_many_arguments)]
fn retire(
    d: f64,
    active: &mut Vec<Active>,
    jobs: &[JobSpec],
    isolated: &[f64],
    links: &mut SlottedState,
    compaction: bool,
    released: &mut usize,
    outcomes: &mut [Option<JobOutcome>],
) {
    let mut due: Vec<Active> = Vec::new();
    let mut i = 0;
    while i < active.len() {
        if active[i].finish <= d {
            due.push(active.swap_remove(i));
        } else {
            i += 1;
        }
    }
    due.sort_by(|a, b| {
        a.finish
            .total_cmp(&b.finish)
            .then_with(|| jobs[a.idx].id.cmp(&jobs[b.idx].id))
    });
    for mut entry in due {
        let job = &jobs[entry.idx];
        // Final placements: after retirement nothing can defer these
        // slots any more (module docs), so this read is the job's
        // permanent record.
        let tasks = &entry.schedule.tasks;
        let mut remote = Vec::new();
        entry.schedule.comms = job
            .dag
            .edge_ids()
            .map(|e| {
                let edge = job.dag.edge(e);
                if tasks[edge.src.index()].proc == tasks[edge.dst.index()].proc {
                    CommPlacement::Local
                } else {
                    let id = CommId(entry.comm_base + u64::from(e.0));
                    remote.push(id);
                    let (route, times) = links.placement(id);
                    CommPlacement::Slotted { route, times }
                }
            })
            .collect();
        if compaction {
            *released += links.release_comms(&remote);
        }
        let start = entry
            .schedule
            .tasks
            .iter()
            .map(|t| t.start)
            .fold(f64::INFINITY, f64::min);
        let start = if start.is_finite() {
            start
        } else {
            entry.dispatch
        };
        let iso = isolated[entry.idx];
        let response = entry.finish - job.arrival;
        outcomes[entry.idx] = Some(JobOutcome {
            job: job.id,
            tenant: job.tenant,
            label: job.label,
            arrival: job.arrival,
            dispatch: entry.dispatch,
            start,
            finish: entry.finish,
            response,
            queueing: entry.dispatch - job.arrival,
            work: total_work(&job.dag),
            isolated_makespan: iso,
            slowdown: if iso > 0.0 { response / iso } else { 1.0 },
            schedule: entry.schedule,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Scheduler;
    use crate::ListScheduler;
    use es_net::gen::{self, SpeedDist};

    fn star(n: usize) -> Topology {
        gen::star(
            n,
            SpeedDist::Fixed(1.0),
            SpeedDist::Fixed(1.0),
            &mut StdRng::seed_from_u64(1),
        )
    }

    #[test]
    fn arrival_script_is_deterministic_and_monotone() {
        let spec = ArrivalSpec::default_mix(12, 3, 5.0, 42);
        let a = arrival_script(&spec);
        let b = arrival_script(&spec);
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.arrival.to_bits(), y.arrival.to_bits());
            assert_eq!(x.label, y.label);
            assert_eq!(x.dag.task_count(), y.dag.task_count());
        }
        for w in a.windows(2) {
            assert!(w[0].arrival <= w[1].arrival, "arrivals nondecreasing");
        }
        assert!(a.iter().all(|j| j.tenant < 3));
        assert!(a.iter().all(|j| j.dag.task_count() >= 2));
    }

    #[test]
    fn single_job_matches_offline_schedule() {
        let spec = ArrivalSpec::default_mix(1, 1, 5.0, 7);
        let jobs = arrival_script(&spec);
        let topo = star(3);
        let cfg = OnlineConfig::new(crate::config::ListConfig::oihsa());
        let run = run_online(&cfg, &topo, &jobs).unwrap();
        let offline = ListScheduler::oihsa()
            .schedule(&jobs[0].dag, &topo)
            .unwrap();
        let o = &run.outcomes[0];
        // The only job dispatches at its arrival; the schedule is the
        // offline one shifted... no — floor(d) with an empty platform
        // only *clamps* start times, and arrival > 0 delays the DAG, so
        // compare the isolated denominator instead and the makespan
        // relative to dispatch.
        assert_eq!(o.isolated_makespan.to_bits(), offline.makespan.to_bits());
        assert_eq!(o.dispatch.to_bits(), jobs[0].arrival.to_bits());
        assert_eq!(o.queueing.to_bits(), 0.0_f64.to_bits());
        assert!((o.finish - o.dispatch) >= offline.makespan - 1e-9);
    }

    #[test]
    fn swf_prefers_the_smaller_job() {
        let big = JobFamily::GaussElim.instantiate(4, 10.0, 1.0);
        let small = JobFamily::Chain.instantiate(1, 1.0, 1.0);
        let jobs = vec![JobSpec::new(0, 0, 0.0, big), JobSpec::new(1, 1, 0.0, small)];
        let topo = star(2);
        let mut cfg = OnlineConfig::new(crate::config::ListConfig::ba());
        cfg.max_inflight = 1;
        cfg.admission = Admission::ShortestWorkFirst;
        let run = run_online(&cfg, &topo, &jobs).unwrap();
        assert_eq!(run.outcomes[1].queueing.to_bits(), 0.0_f64.to_bits());
        assert!(run.outcomes[0].queueing > 0.0, "big job waited");
        cfg.admission = Admission::Fifo;
        let fifo = run_online(&cfg, &topo, &jobs).unwrap();
        assert_eq!(fifo.outcomes[0].queueing.to_bits(), 0.0_f64.to_bits());
        assert!(fifo.outcomes[1].queueing > 0.0, "small job waited");
    }

    #[test]
    fn fairness_summaries_cover_every_tenant() {
        let spec = ArrivalSpec::default_mix(16, 4, 2.0, 11);
        let jobs = arrival_script(&spec);
        let topo = star(3);
        let cfg = OnlineConfig::new(crate::config::ListConfig::ba());
        let run = run_online(&cfg, &topo, &jobs).unwrap();
        let summaries = run.tenant_fairness();
        let total: usize = summaries.iter().map(|s| s.jobs).sum();
        assert_eq!(total, 16);
        for s in &summaries {
            assert!(s.mean_slowdown >= 1.0 - 1e-9, "slowdown >= 1");
            assert!(s.p50_slowdown <= s.p95_slowdown + 1e-12);
            assert!(s.p95_slowdown <= s.max_slowdown + 1e-12);
        }
        assert!(run.fairness_ratio() >= 1.0 - 1e-9);
        assert!(run.horizon > 0.0);
    }

    #[test]
    fn compaction_releases_slots_without_changing_outcomes() {
        let spec = ArrivalSpec::default_mix(10, 2, 1.0, 3);
        let jobs = arrival_script(&spec);
        let topo = star(3);
        let mut cfg = OnlineConfig::new(crate::config::ListConfig::oihsa());
        cfg.max_inflight = 2;
        let with = run_online(&cfg, &topo, &jobs).unwrap();
        cfg.compaction = false;
        let without = run_online(&cfg, &topo, &jobs).unwrap();
        assert!(with.released_slots > 0, "something was compacted");
        assert_eq!(without.released_slots, 0);
        for (a, b) in with.outcomes.iter().zip(&without.outcomes) {
            assert_eq!(a.finish.to_bits(), b.finish.to_bits());
            assert_eq!(a.dispatch.to_bits(), b.dispatch.to_bits());
            for (x, y) in a.schedule.tasks.iter().zip(&b.schedule.tasks) {
                assert_eq!(x, y);
            }
        }
    }
}
