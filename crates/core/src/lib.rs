//! # es-core — contention-aware edge scheduling (Han & Wang, ICPP 2006)
//!
//! This crate is the umbrella API of the workspace: it implements the
//! paper's two contention-aware list schedulers and the baseline they
//! are evaluated against, all on the Sinnen–Sousa edge-scheduling model
//! where communications are scheduled on network links with
//! non-preemption and link causality.
//!
//! ## Schedulers
//!
//! | Constructor | Paper | Processor choice | Routing | Edge order | Link insertion |
//! |---|---|---|---|---|---|
//! | [`ListScheduler::ba`] | Sinnen's BA (TPDS'05) | earliest-finish **probe** | BFS minimal | arrival | basic (first fit) |
//! | [`ListScheduler::ba_static`] | BA as the ICPP'06 paper's baseline | hybrid static estimate | BFS minimal | arrival | basic |
//! | [`ListScheduler::oihsa`] | OIHSA (§4) | hybrid static (§4.1) | modified Dijkstra (§4.3) | cost-descending (§4.2) | optimal insertion (§4.4) |
//! | [`ListScheduler::oihsa_probing`] | OIHSA + strong probe | earliest-finish probe | modified Dijkstra | cost-descending | optimal insertion |
//! | [`BbsaScheduler::new`] | BBSA (§5) | hybrid static | modified Dijkstra (bandwidth probe) | cost-descending | fluid bandwidth sharing |
//! | [`IdealScheduler::new`] | classic model | earliest-finish | — (fully connected, contention-free) | — | — |
//!
//! The figure reproductions compare `ba_static` / `oihsa` / `new` — all
//! three with the paper's §4.1 processor criterion, which is how the
//! paper's own baseline behaves per its §3 prose; the probing variants
//! exist to compare against the stronger TPDS'05 BA (see DESIGN.md §2).
//!
//! [`ListScheduler`] exposes every §4 design choice as a configuration
//! axis, so the ablation benches can isolate each one (routing,
//! insertion policy, edge priority, processor selection).
//!
//! ## Quick example
//!
//! ```
//! use es_core::{ListScheduler, Scheduler};
//! use es_dag::gen::structured::fork_join;
//! use es_net::gen::{star, SpeedDist};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let dag = fork_join(4, 10.0, 20.0);
//! let mut rng = StdRng::seed_from_u64(7);
//! let net = star(3, SpeedDist::Fixed(1.0), SpeedDist::Fixed(1.0), &mut rng);
//!
//! let schedule = ListScheduler::oihsa().schedule(&dag, &net).unwrap();
//! es_core::validate::validate(&dag, &net, &schedule).unwrap();
//! assert!(schedule.makespan > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod bbsa;
pub mod bounds;
pub mod config;
pub mod diag;
pub mod diff;
pub mod exec;
pub mod export;
pub mod gantt;
pub mod ideal;
pub mod list;
pub mod metrics;
pub mod online;
pub mod procsched;
pub mod repair;
pub mod schedule;
pub mod slotted;
pub mod validate;

pub use backend::{BackendParseError, LinkBackend, SafTiming};
pub use bbsa::BbsaScheduler;
pub use config::{
    EdgeEst, EdgeOrder, Insertion, ListConfig, ProbeParallelism, ProcSelection, Routing, Switching,
    Tuning,
};
pub use diag::{Code, Diagnostic, Report, Severity, Span};
pub use diff::{comm_eq, diff_executions, diff_schedules};
pub use exec::{execute, execute_with, FaultPlan, FaultSpec, PerturbedExecution};
pub use ideal::IdealScheduler;
pub use list::ListScheduler;
pub use metrics::{metrics, ScheduleMetrics};
pub use online::{
    arrival_script, run_online, Admission, ArrivalSpec, JobFamily, JobOutcome, JobSpec,
    OnlineConfig, OnlineRun, TenantSummary,
};
pub use repair::{repair, repair_with, RepairError, RepairOutcome};
pub use schedule::{CommPlacement, SchedError, Schedule, Scheduler, TaskPlacement};
pub use slotted::{reset_route_cache_stats, route_cache_stats, CacheStats};

/// Re-export of the epsilon-tolerant time helpers every consumer needs.
pub use es_linksched::time;
