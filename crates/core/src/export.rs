//! Plain-text exports of schedules.
//!
//! CSV views for external tooling (spreadsheets, plotting, real Gantt
//! renderers): one row per task placement and one row per transfer
//! piece. Kept dependency-free — plain string assembly, stable column
//! order, round-trippable numbers via `{:?}`-style full precision.

use crate::schedule::{CommPlacement, Schedule};
use es_dag::TaskGraph;
use std::fmt::Write as _;

/// CSV of task placements:
/// `task,label,proc,start,finish`.
pub fn tasks_to_csv(dag: &TaskGraph, schedule: &Schedule) -> String {
    let mut out = String::from("task,label,proc,start,finish\n");
    for t in dag.task_ids() {
        let p = &schedule.tasks[t.index()];
        let label = dag.task(t).label.as_deref().unwrap_or("");
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            t.0,
            escape(label),
            p.proc.0,
            fmt(p.start),
            fmt(p.finish)
        );
    }
    out
}

/// CSV of link occupancy:
/// `edge,kind,hop,link,from,to,start,end,rate`.
///
/// Slotted transfers emit one row per hop with `rate = 1`; fluid
/// transfers one row per piece; local and ideal communications emit a
/// single summary row with an empty link column.
pub fn comms_to_csv(dag: &TaskGraph, schedule: &Schedule) -> String {
    let mut out = String::from("edge,kind,hop,link,from,to,start,end,rate\n");
    for e in dag.edge_ids() {
        match &schedule.comms[e.index()] {
            CommPlacement::Local => {
                let _ = writeln!(out, "{},local,,,,,,,", e.0);
            }
            CommPlacement::Ideal { delay, arrival } => {
                let _ = writeln!(
                    out,
                    "{},ideal,,,,,{},{},",
                    e.0,
                    fmt(arrival - delay),
                    fmt(*arrival)
                );
            }
            CommPlacement::Slotted { route, times } => {
                for (k, (hop, &(s, f))) in route.iter().zip(times).enumerate() {
                    let _ = writeln!(
                        out,
                        "{},slot,{},{},{},{},{},{},1",
                        e.0,
                        k,
                        hop.link.0,
                        hop.from.0,
                        hop.to.0,
                        fmt(s),
                        fmt(f)
                    );
                }
            }
            CommPlacement::Fluid { route, flows } => {
                for (k, (hop, flow)) in route.iter().zip(flows).enumerate() {
                    for piece in &flow.pieces {
                        let _ = writeln!(
                            out,
                            "{},fluid,{},{},{},{},{},{},{}",
                            e.0,
                            k,
                            hop.link.0,
                            hop.from.0,
                            hop.to.0,
                            fmt(piece.start),
                            fmt(piece.end),
                            fmt(piece.rate)
                        );
                    }
                }
            }
        }
    }
    out
}

/// Full precision without trailing noise for integral values.
fn fmt(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// Quote a CSV field when needed.
fn escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbsa::BbsaScheduler;
    use crate::list::ListScheduler;
    use crate::schedule::Scheduler;
    use es_dag::gen::structured::fork_join;
    use es_net::gen::{self, SpeedDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (TaskGraph, es_net::Topology) {
        let dag = fork_join(3, 30.0, 5.0);
        let mut rng = StdRng::seed_from_u64(4);
        let topo = gen::star(3, SpeedDist::Fixed(1.0), SpeedDist::Fixed(1.0), &mut rng);
        (dag, topo)
    }

    #[test]
    fn tasks_csv_has_one_row_per_task() {
        let (dag, topo) = fixture();
        let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        let csv = tasks_to_csv(&dag, &s);
        assert_eq!(csv.lines().count(), dag.task_count() + 1);
        assert!(csv.starts_with("task,label,proc,start,finish"));
        assert!(csv.contains("fork"), "labels exported");
    }

    #[test]
    fn comms_csv_covers_every_edge() {
        let (dag, topo) = fixture();
        let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        let csv = comms_to_csv(&dag, &s);
        for e in dag.edge_ids() {
            assert!(
                csv.lines().any(|l| l.starts_with(&format!("{},", e.0))),
                "edge {e} missing"
            );
        }
    }

    #[test]
    fn fluid_rows_carry_rates() {
        let (dag, topo) = fixture();
        let s = BbsaScheduler::new().schedule(&dag, &topo).unwrap();
        let csv = comms_to_csv(&dag, &s);
        assert!(csv.lines().any(|l| l.contains(",fluid,")), "{csv}");
    }

    #[test]
    fn csv_field_escaping() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn integral_numbers_stay_compact() {
        assert_eq!(fmt(4.0), "4");
        assert_eq!(fmt(4.5), "4.5");
    }

    use es_dag::TaskGraph;
}
