//! Plain-text exports of schedules.
//!
//! CSV views for external tooling (spreadsheets, plotting, real Gantt
//! renderers): one row per task placement and one row per transfer
//! piece. Kept dependency-free — plain string assembly, stable column
//! order, round-trippable numbers via `{:?}`-style full precision.
//!
//! The importers ([`tasks_from_csv`], [`comms_from_csv`],
//! [`schedule_from_csv`]) parse those CSVs back into a [`Schedule`],
//! which is what `es-experiments verify` audits against the
//! regenerated instance.

use crate::schedule::{CommPlacement, Schedule, TaskPlacement};
use es_dag::TaskGraph;
use es_linksched::bandwidth::{Flow, Piece};
use es_net::{Hop, LinkId, NodeId, ProcId};
use std::fmt::Write as _;

/// CSV of task placements:
/// `task,label,proc,start,finish`.
pub fn tasks_to_csv(dag: &TaskGraph, schedule: &Schedule) -> String {
    let mut out = String::from("task,label,proc,start,finish\n");
    for t in dag.task_ids() {
        let p = &schedule.tasks[t.index()];
        let label = dag.task(t).label.as_deref().unwrap_or("");
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            t.0,
            escape(label),
            p.proc.0,
            fmt(p.start),
            fmt(p.finish)
        );
    }
    out
}

/// CSV of link occupancy:
/// `edge,kind,hop,link,from,to,start,end,rate`.
///
/// Slotted transfers emit one row per hop with `rate = 1`; fluid
/// transfers one row per piece; local and ideal communications emit a
/// single summary row with an empty link column.
pub fn comms_to_csv(dag: &TaskGraph, schedule: &Schedule) -> String {
    let mut out = String::from("edge,kind,hop,link,from,to,start,end,rate\n");
    for e in dag.edge_ids() {
        match &schedule.comms[e.index()] {
            CommPlacement::Local => {
                let _ = writeln!(out, "{},local,,,,,,,", e.0);
            }
            CommPlacement::Ideal { delay, arrival } => {
                let _ = writeln!(
                    out,
                    "{},ideal,,,,,{},{},",
                    e.0,
                    fmt(arrival - delay),
                    fmt(*arrival)
                );
            }
            CommPlacement::Slotted { route, times } => {
                for (k, (hop, &(s, f))) in route.iter().zip(times).enumerate() {
                    let _ = writeln!(
                        out,
                        "{},slot,{},{},{},{},{},{},1",
                        e.0,
                        k,
                        hop.link.0,
                        hop.from.0,
                        hop.to.0,
                        fmt(s),
                        fmt(f)
                    );
                }
            }
            CommPlacement::Fluid { route, flows } => {
                for (k, (hop, flow)) in route.iter().zip(flows).enumerate() {
                    for piece in &flow.pieces {
                        let _ = writeln!(
                            out,
                            "{},fluid,{},{},{},{},{},{},{}",
                            e.0,
                            k,
                            hop.link.0,
                            hop.from.0,
                            hop.to.0,
                            fmt(piece.start),
                            fmt(piece.end),
                            fmt(piece.rate)
                        );
                    }
                }
            }
        }
    }
    out
}

/// Parse [`tasks_to_csv`] output back into task placements.
///
/// The row count must match the DAG; rows may appear in any order but
/// every task must appear exactly once.
pub fn tasks_from_csv(dag: &TaskGraph, csv: &str) -> Result<Vec<TaskPlacement>, String> {
    let mut placements: Vec<Option<TaskPlacement>> = vec![None; dag.task_count()];
    for (lineno, line) in csv.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_csv(line);
        if fields.len() != 5 {
            return Err(format!(
                "tasks csv line {}: {} fields, expected 5",
                lineno + 1,
                fields.len()
            ));
        }
        let task: usize = fields[0]
            .parse()
            .map_err(|e| format!("tasks csv line {}: task id: {e}", lineno + 1))?;
        if task >= dag.task_count() {
            return Err(format!(
                "tasks csv line {}: task {task} out of range (DAG has {})",
                lineno + 1,
                dag.task_count()
            ));
        }
        if placements[task].is_some() {
            return Err(format!("tasks csv: duplicate row for task {task}"));
        }
        let num = |i: usize, what: &str| -> Result<f64, String> {
            fields[i]
                .parse()
                .map_err(|e| format!("tasks csv line {}: {what}: {e}", lineno + 1))
        };
        placements[task] = Some(TaskPlacement {
            proc: ProcId(
                fields[2]
                    .parse()
                    .map_err(|e| format!("tasks csv line {}: proc: {e}", lineno + 1))?,
            ),
            start: num(3, "start")?,
            finish: num(4, "finish")?,
        });
    }
    placements
        .into_iter()
        .enumerate()
        .map(|(i, p)| p.ok_or_else(|| format!("tasks csv: no row for task {i}")))
        .collect()
}

/// Parse [`comms_to_csv`] output back into communication placements.
///
/// Rows are grouped by edge; `slot`/`fluid` rows must appear in hop
/// order (as the exporter writes them). Every DAG edge must appear.
pub fn comms_from_csv(dag: &TaskGraph, csv: &str) -> Result<Vec<CommPlacement>, String> {
    // (kind, hop, link, from, to, start, end, rate) rows per edge, in
    // file order.
    type Row = (
        String,
        Option<usize>,
        Option<u32>,
        Option<u32>,
        Option<u32>,
        Option<f64>,
        Option<f64>,
        Option<f64>,
    );
    let mut rows: std::collections::BTreeMap<usize, Vec<Row>> = std::collections::BTreeMap::new();
    for (lineno, line) in csv.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_csv(line);
        if fields.len() != 9 {
            return Err(format!(
                "comms csv line {}: {} fields, expected 9",
                lineno + 1,
                fields.len()
            ));
        }
        let edge: usize = fields[0]
            .parse()
            .map_err(|e| format!("comms csv line {}: edge id: {e}", lineno + 1))?;
        if edge >= dag.edge_count() {
            return Err(format!(
                "comms csv line {}: edge {edge} out of range (DAG has {})",
                lineno + 1,
                dag.edge_count()
            ));
        }
        let opt = |i: usize| -> Option<&str> {
            let f = fields[i].trim();
            (!f.is_empty()).then_some(f)
        };
        let opt_num = |i: usize, what: &str| -> Result<Option<f64>, String> {
            opt(i)
                .map(|f| {
                    f.parse()
                        .map_err(|e| format!("comms csv line {}: {what}: {e}", lineno + 1))
                })
                .transpose()
        };
        let opt_int = |i: usize, what: &str| -> Result<Option<u32>, String> {
            opt(i)
                .map(|f| {
                    f.parse()
                        .map_err(|e| format!("comms csv line {}: {what}: {e}", lineno + 1))
                })
                .transpose()
        };
        rows.entry(edge).or_default().push((
            fields[1].clone(),
            opt(2)
                .map(|f| {
                    f.parse::<usize>()
                        .map_err(|e| format!("comms csv line {}: hop: {e}", lineno + 1))
                })
                .transpose()?,
            opt_int(3, "link")?,
            opt_int(4, "from")?,
            opt_int(5, "to")?,
            opt_num(6, "start")?,
            opt_num(7, "end")?,
            opt_num(8, "rate")?,
        ));
    }

    let mut comms = Vec::with_capacity(dag.edge_count());
    for e in dag.edge_ids() {
        let Some(edge_rows) = rows.get(&e.index()) else {
            return Err(format!("comms csv: no rows for edge {}", e.index()));
        };
        let kind = edge_rows[0].0.as_str();
        if edge_rows.iter().any(|r| r.0 != kind) {
            return Err(format!("comms csv: edge {} mixes row kinds", e.index()));
        }
        let placement = match kind {
            "local" => CommPlacement::Local,
            "ideal" => {
                let (_, _, _, _, _, start, end, _) = edge_rows[0];
                let (Some(start), Some(end)) = (start, end) else {
                    return Err(format!(
                        "comms csv: edge {} ideal row lacks times",
                        e.index()
                    ));
                };
                CommPlacement::Ideal {
                    delay: end - start,
                    arrival: end,
                }
            }
            "slot" => {
                let mut route = Vec::new();
                let mut times = Vec::new();
                for (i, row) in edge_rows.iter().enumerate() {
                    let (_, hop, link, from, to, start, end, _) = *row;
                    if hop != Some(i) {
                        return Err(format!(
                            "comms csv: edge {} slot rows out of hop order",
                            e.index()
                        ));
                    }
                    let (Some(link), Some(from), Some(to), Some(start), Some(end)) =
                        (link, from, to, start, end)
                    else {
                        return Err(format!(
                            "comms csv: edge {} slot row missing fields",
                            e.index()
                        ));
                    };
                    route.push(Hop {
                        link: LinkId(link),
                        from: NodeId(from),
                        to: NodeId(to),
                    });
                    times.push((start, end));
                }
                CommPlacement::Slotted { route, times }
            }
            "fluid" => {
                let mut route: Vec<Hop> = Vec::new();
                let mut flows: Vec<Flow> = Vec::new();
                for row in edge_rows {
                    let (_, hop, link, from, to, start, end, rate) = *row;
                    let (
                        Some(hop),
                        Some(link),
                        Some(from),
                        Some(to),
                        Some(start),
                        Some(end),
                        Some(rate),
                    ) = (hop, link, from, to, start, end, rate)
                    else {
                        return Err(format!(
                            "comms csv: edge {} fluid row missing fields",
                            e.index()
                        ));
                    };
                    if hop == route.len() {
                        route.push(Hop {
                            link: LinkId(link),
                            from: NodeId(from),
                            to: NodeId(to),
                        });
                        flows.push(Flow::default());
                    } else if hop + 1 != route.len() {
                        return Err(format!(
                            "comms csv: edge {} fluid rows out of hop order",
                            e.index()
                        ));
                    }
                    flows[hop].pieces.push(Piece { start, end, rate });
                }
                CommPlacement::Fluid { route, flows }
            }
            other => {
                return Err(format!(
                    "comms csv: edge {} has unknown kind `{other}`",
                    e.index()
                ))
            }
        };
        comms.push(placement);
    }
    Ok(comms)
}

/// Reassemble a full [`Schedule`] from exported CSVs plus the recorded
/// algorithm name and makespan (from the export manifest).
pub fn schedule_from_csv(
    algorithm: &'static str,
    dag: &TaskGraph,
    tasks_csv: &str,
    comms_csv: &str,
    makespan: f64,
) -> Result<Schedule, String> {
    Ok(Schedule {
        algorithm,
        tasks: tasks_from_csv(dag, tasks_csv)?,
        comms: comms_from_csv(dag, comms_csv)?,
        makespan,
    })
}

/// Split one CSV line into fields, honouring double-quote escaping as
/// produced by [`escape`].
fn split_csv(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    quoted = false;
                }
            }
            '"' if cur.is_empty() => quoted = true,
            ',' if !quoted => fields.push(std::mem::take(&mut cur)),
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Full precision without trailing noise for integral values.
fn fmt(x: f64) -> String {
    // `x == x.trunc()` is exact for finite x and literal-free (xtask L2).
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// Quote a CSV field when needed.
fn escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbsa::BbsaScheduler;
    use crate::list::ListScheduler;
    use crate::schedule::Scheduler;
    use es_dag::gen::structured::fork_join;
    use es_net::gen::{self, SpeedDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (TaskGraph, es_net::Topology) {
        let dag = fork_join(3, 30.0, 5.0);
        let mut rng = StdRng::seed_from_u64(4);
        let topo = gen::star(3, SpeedDist::Fixed(1.0), SpeedDist::Fixed(1.0), &mut rng);
        (dag, topo)
    }

    #[test]
    fn tasks_csv_has_one_row_per_task() {
        let (dag, topo) = fixture();
        let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        let csv = tasks_to_csv(&dag, &s);
        assert_eq!(csv.lines().count(), dag.task_count() + 1);
        assert!(csv.starts_with("task,label,proc,start,finish"));
        assert!(csv.contains("fork"), "labels exported");
    }

    #[test]
    fn comms_csv_covers_every_edge() {
        let (dag, topo) = fixture();
        let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        let csv = comms_to_csv(&dag, &s);
        for e in dag.edge_ids() {
            assert!(
                csv.lines().any(|l| l.starts_with(&format!("{},", e.0))),
                "edge {e} missing"
            );
        }
    }

    #[test]
    fn fluid_rows_carry_rates() {
        let (dag, topo) = fixture();
        let s = BbsaScheduler::new().schedule(&dag, &topo).unwrap();
        let csv = comms_to_csv(&dag, &s);
        assert!(csv.lines().any(|l| l.contains(",fluid,")), "{csv}");
    }

    #[test]
    fn csv_field_escaping() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn integral_numbers_stay_compact() {
        assert_eq!(fmt(4.0), "4");
        assert_eq!(fmt(4.5), "4.5");
    }

    #[test]
    fn split_csv_honours_quotes() {
        assert_eq!(split_csv("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(split_csv("a,\"b,c\",d"), vec!["a", "b,c", "d"]);
        assert_eq!(
            split_csv("x,\"say \"\"hi\"\"\","),
            vec!["x", "say \"hi\"", ""]
        );
    }

    #[test]
    fn slotted_schedule_round_trips_through_csv() {
        let (dag, topo) = fixture();
        let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        let back = schedule_from_csv(
            "BA",
            &dag,
            &tasks_to_csv(&dag, &s),
            &comms_to_csv(&dag, &s),
            s.makespan,
        )
        .expect("round trip");
        assert_eq!(back.tasks, s.tasks);
        assert_eq!(back.comms, s.comms);
        assert!(crate::validate::audit(&dag, &topo, &back).is_clean());
    }

    #[test]
    fn fluid_schedule_round_trips_through_csv() {
        let (dag, topo) = fixture();
        let s = BbsaScheduler::new().schedule(&dag, &topo).unwrap();
        let back = schedule_from_csv(
            "BBSA",
            &dag,
            &tasks_to_csv(&dag, &s),
            &comms_to_csv(&dag, &s),
            s.makespan,
        )
        .expect("round trip");
        assert_eq!(back.comms, s.comms);
        assert!(crate::validate::audit(&dag, &topo, &back).is_clean());
    }

    #[test]
    fn importers_reject_malformed_input() {
        let (dag, _) = fixture();
        assert!(tasks_from_csv(&dag, "task,label,proc,start,finish\n").is_err());
        assert!(tasks_from_csv(&dag, "task,label,proc,start,finish\n99,x,0,0,1\n").is_err());
        assert!(comms_from_csv(&dag, "edge,kind,hop,link,from,to,start,end,rate\n").is_err());
        assert!(comms_from_csv(
            &dag,
            "edge,kind,hop,link,from,to,start,end,rate\n0,martian,,,,,,,\n"
        )
        .is_err());
    }

    use es_dag::TaskGraph;
}
