//! Slotted contention-aware list scheduling: BA, OIHSA, and every
//! ablation between them.
//!
//! The skeleton is Algorithm 1 of the paper: sort tasks by static
//! priority (bottom level) compatible with precedence, then for each
//! task pick a processor and schedule its incoming communications on
//! network links before placing it. The four §4 design choices are
//! injected through [`ListConfig`]:
//!
//! * **processor selection** — BA's earliest-finish probe (tentatively
//!   schedule the communications to every candidate processor, keep the
//!   best, roll the rest back) or OIHSA's hybrid static criterion
//!   (§4.1), which estimates communication with the mean link speed
//!   `MLS` and therefore needs no probing;
//! * **edge order** (§4.2) — arrival order or cost-descending;
//! * **routing** (§4.3) — BFS minimal or modified Dijkstra;
//! * **insertion** (§4.4) — basic or optimal.

use crate::config::{Insertion, ListConfig, ProcSelection};
use crate::procsched::ProcState;
use crate::schedule::{CommPlacement, SchedError, Schedule, Scheduler, TaskPlacement};
use crate::slotted::{OverlayState, ProbeWorkspace, SlottedState};
use es_dag::{priority_list, EdgeId, TaskGraph, TaskId};
use es_linksched::time::EPS;
use es_linksched::CommId;
use es_net::{NodeId, ProcId, Topology};
use es_runner::WorkerPool;
use std::sync::Mutex;

/// Configurable slotted list scheduler. See the module docs; use
/// [`ListScheduler::ba`] / [`ListScheduler::oihsa`] for the paper's
/// algorithms or [`ListScheduler::with_config`] for ablations.
#[derive(Clone, Debug)]
pub struct ListScheduler {
    cfg: ListConfig,
}

impl ListScheduler {
    /// Sinnen's Basic Algorithm (the paper's baseline, §3).
    pub fn ba() -> Self {
        Self {
            cfg: ListConfig::ba(),
        }
    }

    /// BA with the contention-blind processor estimate — the figure
    /// reproductions' baseline (see [`ListConfig::ba_static`]).
    pub fn ba_static() -> Self {
        Self {
            cfg: ListConfig::ba_static(),
        }
    }

    /// The paper's OIHSA (§4).
    pub fn oihsa() -> Self {
        Self {
            cfg: ListConfig::oihsa(),
        }
    }

    /// OIHSA with the strong earliest-finish processor probe (see
    /// [`ListConfig::oihsa_probing`]).
    pub fn oihsa_probing() -> Self {
        Self {
            cfg: ListConfig::oihsa_probing(),
        }
    }

    /// A custom configuration (ablation studies).
    pub fn with_config(cfg: ListConfig) -> Self {
        Self { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &ListConfig {
        &self.cfg
    }
}

impl Scheduler for ListScheduler {
    fn name(&self) -> &'static str {
        self.cfg.name
    }

    fn schedule(&self, dag: &TaskGraph, topo: &Topology) -> Result<Schedule, SchedError> {
        let mut procs = ProcState::new(topo);
        let mut links =
            SlottedState::with_tuning(topo, dag.edge_count(), self.cfg.effective_tuning());
        schedule_onto(&self.cfg, dag, topo, &mut procs, &mut links, 0, 0.0)
    }
}

/// Schedule one DAG onto *persistent* platform state: the workhorse
/// behind both [`ListScheduler::schedule`] (fresh state, `comm_base`
/// 0, `floor` 0.0 — bitwise identical to the historical offline path)
/// and [`crate::online`] (state carried across jobs).
///
/// * `comm_base` offsets every edge's [`CommId`] so successive jobs
///   occupy disjoint id blocks and reservations never alias;
/// * `floor` is the dispatch instant: no communication or task of this
///   job may start before it, which is what makes releasing slots that
///   lie entirely before `floor` semantics-free (DESIGN.md §15).
pub(crate) fn schedule_onto(
    cfg: &ListConfig,
    dag: &TaskGraph,
    topo: &Topology,
    procs: &mut ProcState,
    links: &mut SlottedState,
    comm_base: u64,
    floor: f64,
) -> Result<Schedule, SchedError> {
    links.ensure_comm_capacity(comm_base as usize + dag.edge_count());
    Run::new(cfg, dag, topo, procs, links, comm_base, floor)?.run()
}

/// One remote-or-local in-edge of the task being probed, precomputed
/// once per task — every field is candidate-independent, so all worker
/// lanes probe from the same immutable list.
#[derive(Clone, Copy, Debug)]
struct ProbeEdge {
    comm: CommId,
    /// Earliest start on the links (ready time or source finish, per
    /// [`crate::config::EdgeEst`]).
    est: f64,
    cost: f64,
    src_proc: ProcId,
    /// Arrival when the candidate equals `src_proc` (local edge).
    src_finish: f64,
}

/// One scheduling run's working state.
struct Run<'a> {
    cfg: &'a ListConfig,
    dag: &'a TaskGraph,
    topo: &'a Topology,
    procs: &'a mut ProcState,
    links: &'a mut SlottedState,
    placed: Vec<Option<TaskPlacement>>,
    mls: f64,
    /// First [`CommId`] of this job's contiguous id block.
    comm_base: u64,
    /// Dispatch instant: lower bound on every start time of this run.
    floor: f64,
    /// Scratch buffers for the in-edge ordering, reused across the
    /// probe loop's candidates (allocation hoisting; no behavioural
    /// effect).
    edge_costs: Vec<f64>,
    edge_idx: Vec<usize>,
    ordered_edges: Vec<EdgeId>,
    /// Speculative-probe machinery (DESIGN.md §11), built only when
    /// [`crate::config::ProbeParallelism`] selects the overlay path for
    /// an earliest-finish-probe scheduler. The pool persists across all
    /// tasks of the run; each lane owns one [`ProbeWorkspace`].
    probe_pool: Option<WorkerPool>,
    probe_lanes: Vec<Mutex<ProbeWorkspace>>,
    /// Reused per-task buffers for the batch probe (clear-don't-drop).
    probe_edges: Vec<ProbeEdge>,
    probe_candidates: Vec<ProcId>,
    /// Candidate destination nodes for the batch warm pass.
    warm_dsts: Vec<NodeId>,
    probe_results: Vec<Mutex<Option<Result<f64, SchedError>>>>,
    /// Names the current probe cycle so lanes invalidate their
    /// incremental searches between tasks.
    probe_serial: u64,
}

impl<'a> Run<'a> {
    fn new(
        cfg: &'a ListConfig,
        dag: &'a TaskGraph,
        topo: &'a Topology,
        procs: &'a mut ProcState,
        links: &'a mut SlottedState,
        comm_base: u64,
        floor: f64,
    ) -> Result<Self, SchedError> {
        if topo.proc_count() == 0 {
            return Err(SchedError::NoProcessors);
        }
        let use_overlay = cfg.tuning.parallel_probe.uses_overlay()
            && matches!(cfg.proc_selection, ProcSelection::EarliestFinishProbe);
        let (probe_pool, probe_lanes) = if use_overlay {
            let lanes = cfg.tuning.parallel_probe.lanes();
            let workspaces = (0..lanes)
                .map(|_| Mutex::new(ProbeWorkspace::new(topo.link_count())))
                .collect();
            (Some(WorkerPool::new(lanes)), workspaces)
        } else {
            (None, Vec::new())
        };
        Ok(Self {
            cfg,
            dag,
            topo,
            procs,
            links,
            placed: vec![None; dag.task_count()],
            mls: topo.mean_link_speed(),
            comm_base,
            floor,
            edge_costs: Vec::new(),
            edge_idx: Vec::new(),
            ordered_edges: Vec::new(),
            probe_pool,
            probe_lanes,
            probe_edges: Vec::new(),
            probe_candidates: Vec::new(),
            warm_dsts: Vec::new(),
            probe_results: Vec::new(),
            probe_serial: 0,
        })
    }

    fn run(mut self) -> Result<Schedule, SchedError> {
        let order = priority_list(self.dag, self.cfg.priority);
        for &task in &order {
            let proc = match self.cfg.proc_selection {
                ProcSelection::EarliestFinishProbe => self.pick_by_probe(task)?,
                ProcSelection::HybridStatic => self.pick_by_hybrid_criterion(task),
            };
            self.commit_task(task, proc, self.cfg.insertion)?;
        }
        self.finish()
    }

    /// This run's [`CommId`] for DAG edge `e` (offset into the job's
    /// id block).
    fn comm(&self, e: EdgeId) -> CommId {
        CommId(self.comm_base + u64::from(e.0))
    }

    /// Fill `self.ordered_edges` with `task`'s in-edge ids in the
    /// configured scheduling order (buffers reused across candidates).
    fn order_in_edges(&mut self, task: TaskId) {
        let in_edges = self.dag.in_edges(task);
        self.edge_costs.clear();
        self.edge_costs
            .extend(in_edges.iter().map(|&e| self.dag.cost(e)));
        self.cfg
            .edge_order
            .order_into(&self.edge_costs, &mut self.edge_idx);
        self.ordered_edges.clear();
        self.ordered_edges
            .extend(self.edge_idx.iter().map(|&i| in_edges[i]));
    }

    /// Schedule all remote in-edges of `task` to processor `p` and
    /// return the data-ready time. `insertion` is explicit because BA's
    /// probe must be exactly reversible (always basic insertion).
    fn schedule_in_edges(
        &mut self,
        task: TaskId,
        p: ProcId,
        insertion: Insertion,
    ) -> Result<f64, SchedError> {
        // In the dynamic model a communication is requested only when
        // the task becomes ready: every in-edge's earliest start is the
        // latest predecessor finish (§4.1/§4.2).
        let ready_time = match self.cfg.edge_est {
            crate::config::EdgeEst::SourceFinish => None,
            crate::config::EdgeEst::ReadyTime => Some(
                self.dag
                    .predecessors(task)
                    .map(|s| self.placed[s.index()].expect("placed").finish)
                    .fold(0.0_f64, f64::max),
            ),
        };
        let mut data_ready = self.floor;
        self.order_in_edges(task);
        for k in 0..self.ordered_edges.len() {
            let e = self.ordered_edges[k];
            let edge = self.dag.edge(e);
            let src = self.placed[edge.src.index()].expect("predecessors are placed first");
            let arrival = if src.proc == p {
                src.finish
            } else {
                let est = ready_time.unwrap_or(src.finish);
                self.links.schedule_comm(
                    self.topo,
                    self.comm(e),
                    est,
                    edge.cost,
                    src.proc,
                    p,
                    self.cfg.routing,
                    insertion,
                    self.cfg.switching,
                )?
            };
            data_ready = data_ready.max(arrival);
        }
        Ok(data_ready)
    }

    /// Precompute `task`'s in-edge probe list once per task: every
    /// [`ProbeEdge`] field is candidate-independent, so both probe
    /// paths (serial and overlay) walk the same immutable list for
    /// every candidate instead of re-deriving the edge order and ESTs
    /// per processor. Mirrors [`Run::schedule_in_edges`] exactly (same
    /// edge order, same ESTs).
    fn prepare_probe_edges(&mut self, task: TaskId) {
        let ready_time = match self.cfg.edge_est {
            crate::config::EdgeEst::SourceFinish => None,
            crate::config::EdgeEst::ReadyTime => Some(
                self.dag
                    .predecessors(task)
                    .map(|s| self.placed[s.index()].expect("placed").finish)
                    .fold(0.0_f64, f64::max),
            ),
        };
        self.order_in_edges(task);
        self.probe_edges.clear();
        for k in 0..self.ordered_edges.len() {
            let e = self.ordered_edges[k];
            let edge = self.dag.edge(e);
            let src = self.placed[edge.src.index()].expect("predecessors are placed first");
            self.probe_edges.push(ProbeEdge {
                comm: self.comm(e),
                est: ready_time.unwrap_or(src.finish),
                cost: edge.cost,
                src_proc: src.proc,
                src_finish: src.finish,
            });
        }
    }

    /// Probe `task`'s precomputed in-edges (see
    /// [`Run::prepare_probe_edges`]) onto candidate `p` with basic
    /// insertion and return the data-ready time.
    fn probe_in_edges(&mut self, p: ProcId) -> Result<f64, SchedError> {
        let mut data_ready = self.floor;
        for k in 0..self.probe_edges.len() {
            let pe = self.probe_edges[k];
            let arrival = if pe.src_proc == p {
                pe.src_finish
            } else {
                self.links.schedule_comm(
                    self.topo,
                    pe.comm,
                    pe.est,
                    pe.cost,
                    pe.src_proc,
                    p,
                    self.cfg.routing,
                    Insertion::Basic,
                    self.cfg.switching,
                )?
            };
            data_ready = data_ready.max(arrival);
        }
        Ok(data_ready)
    }

    /// Roll back the tentative link reservations of the current probe
    /// list (the manual inverse of [`Run::probe_in_edges`]; skipped
    /// when [`Tuning::snapshot_restore`] lets `restore` reimport the
    /// touched columns wholesale).
    fn rollback_probe_edges(&mut self, p: ProcId) {
        for k in 0..self.probe_edges.len() {
            let pe = self.probe_edges[k];
            if pe.src_proc != p {
                self.links.unschedule(pe.comm);
            }
        }
    }

    /// BA's processor choice: earliest task finish over all processors,
    /// probed by tentatively scheduling the communications. Dispatches
    /// to the speculative overlay path when configured; both paths are
    /// bitwise identical (the differential oracle enforces it).
    fn pick_by_probe(&mut self, task: TaskId) -> Result<ProcId, SchedError> {
        if self.probe_pool.is_some() {
            self.pick_by_probe_overlay(task)
        } else {
            self.pick_by_probe_serial(task)
        }
    }

    /// The sequential mutate-and-rollback probe (reference path).
    fn pick_by_probe_serial(&mut self, task: TaskId) -> Result<ProcId, SchedError> {
        let weight = self.dag.weight(task);
        // Batch in-edge probing (DESIGN.md §16): one edge-ordering pass
        // per task instead of one per candidate, then all candidates
        // walk the same immutable probe list.
        self.prepare_probe_edges(task);
        // All candidates probe the same link state and (for
        // candidate-independent ESTs) the same search parameters, so a
        // checkpoint lets the route cache share one incremental search
        // across the whole loop. Each rollback is exact, which is what
        // `restore` requires.
        let cp = self.links.checkpoint();
        // Warm the shared search for the first ordered edge — the only
        // one probed at the pristine checkpoint state for every
        // candidate — across all candidate destinations in a single
        // wavefront pass (answer-neutral; a no-op when the route cache
        // is not consultable).
        if let Some(pe) = self.probe_edges.first().copied() {
            self.warm_dsts.clear();
            for p in self.topo.proc_ids() {
                if p != pe.src_proc {
                    self.warm_dsts.push(self.topo.node_of_proc(p));
                }
            }
            self.links.warm_route_searches(
                self.topo,
                pe.src_proc,
                pe.est,
                pe.cost,
                &self.warm_dsts,
                self.cfg.routing,
                self.cfg.switching,
            );
        }
        let snapshot_rollback = self.links.tuning().snapshot_restore;
        let mut best: Option<(ProcId, f64)> = None;
        for p in self.topo.proc_ids() {
            let data_ready = self.probe_in_edges(p)?;
            let start = self.procs.earliest_start(p, data_ready);
            let finish = start + weight / self.topo.proc_speed(p);
            if !snapshot_rollback {
                self.rollback_probe_edges(p);
            }
            self.links.restore(cp);
            // TWIN(probe-tie-break): begin
            if best.is_none_or(|(_, bf)| finish < bf - EPS) {
                best = Some((p, finish)); // TWIN-OK: serial keeps the loop binding as the candidate id
            }
            // TWIN(probe-tie-break): end
        }
        Ok(best.expect("at least one processor").0)
    }

    /// The speculative probe (DESIGN.md §11): every candidate processor
    /// is probed concurrently against an immutable snapshot of the link
    /// state through a private copy-on-write overlay, so no candidate
    /// ever mutates shared queues. Workers only report finish-time
    /// bits; the reducer below replays the exact sequential tie-break
    /// (ascending processor id, strict `EPS` improvement) and the exact
    /// sequential error semantics (first erroring candidate in
    /// processor order wins), making the selection bitwise identical to
    /// [`Run::pick_by_probe_serial`].
    fn pick_by_probe_overlay(&mut self, task: TaskId) -> Result<ProcId, SchedError> {
        let weight = self.dag.weight(task);
        self.prepare_probe_edges(task);
        self.probe_candidates.clear();
        self.probe_candidates.extend(self.topo.proc_ids());
        let n = self.probe_candidates.len();
        if self.probe_results.len() < n {
            self.probe_results.resize_with(n, || Mutex::new(None));
        }
        for slot in &self.probe_results[..n] {
            *slot.lock().expect("probe result lock") = None;
        }
        self.probe_serial += 1;

        // Immutable shared state for the burst; disjoint from the
        // pool's `&mut` borrow below.
        let snap = self.links.queue_slices();
        let tuning = self.links.tuning();
        let serial = self.probe_serial;
        let topo = self.topo;
        let procs = &self.procs;
        let edges = &self.probe_edges;
        let candidates = &self.probe_candidates;
        let results = &self.probe_results;
        let lanes_ws = &self.probe_lanes;
        let routing = self.cfg.routing;
        let switching = self.cfg.switching;
        let floor = self.floor;
        let job = move |lane: usize, idx: usize| {
            let p = candidates[idx];
            let mut ws = lanes_ws[lane].lock().expect("probe workspace lock");
            ws.begin_candidate(serial);
            let mut ov = OverlayState::new(&snap, tuning, &mut ws);
            let mut out: Result<f64, SchedError> = Ok(0.0);
            let mut data_ready = floor;
            for pe in edges {
                let arrival = if pe.src_proc == p {
                    pe.src_finish
                } else {
                    // Probes always use basic insertion, exactly like
                    // the reversible sequential probe.
                    match ov.schedule_comm(
                        topo,
                        pe.comm,
                        pe.est,
                        pe.cost,
                        pe.src_proc,
                        p,
                        routing,
                        switching,
                    ) {
                        Ok(a) => a,
                        Err(e) => {
                            out = Err(e);
                            break;
                        }
                    }
                };
                data_ready = data_ready.max(arrival);
            }
            let out = out.map(|_| {
                let start = procs.earliest_start(p, data_ready);
                start + weight / topo.proc_speed(p)
            });
            *results[idx].lock().expect("probe result lock") = Some(out);
        };
        self.probe_pool
            .as_mut()
            .expect("overlay path requires a pool")
            .run(n, &job);

        // Deterministic reduction in ascending processor-id order.
        let mut best: Option<(ProcId, f64)> = None;
        for i in 0..n {
            let finish = self.probe_results[i]
                .lock()
                .expect("probe result lock")
                .take()
                .expect("worker filled every slot")?;
            // TWIN(probe-tie-break): begin
            if best.is_none_or(|(_, bf)| finish < bf - EPS) {
                best = Some((self.probe_candidates[i], finish)); // TWIN-OK: reduction reads the candidate id from the indexed slot
            }
            // TWIN(probe-tie-break): end
        }
        Ok(best.expect("at least one processor").0)
    }

    /// OIHSA §4.1: hybrid static criterion with mean link speed.
    // TWIN(hybrid-criterion): begin
    fn pick_by_hybrid_criterion(&self, task: TaskId) -> ProcId {
        let weight = self.dag.weight(task);
        let mut best: Option<(ProcId, f64)> = None;
        for p in self.topo.proc_ids() {
            let mut comm_part = self.floor; // TWIN-OK: slotted path seeds the online dispatch floor
            for &e in self.dag.in_edges(task) {
                let edge = self.dag.edge(e);
                let src = self.placed[edge.src.index()].expect("placed");
                let est = if src.proc == p {
                    src.finish
                } else {
                    src.finish + edge.cost / self.mls
                };
                comm_part = comm_part.max(est);
            }
            let start = comm_part.max(self.procs.finish_time(p));
            let value = start + weight / self.topo.proc_speed(p);
            if best.is_none_or(|(_, bv)| value < bv - EPS) {
                best = Some((p, value));
            }
        }
        best.expect("at least one processor").0
    }
    // TWIN(hybrid-criterion): end

    /// Definitively schedule `task` on `proc`.
    fn commit_task(
        &mut self,
        task: TaskId,
        proc: ProcId,
        insertion: Insertion,
    ) -> Result<(), SchedError> {
        let data_ready = self.schedule_in_edges(task, proc, insertion)?;
        let (start, finish) = self
            .procs
            .place(self.topo, proc, data_ready, self.dag.weight(task));
        self.placed[task.index()] = Some(TaskPlacement {
            proc,
            start,
            finish,
        });
        Ok(())
    }

    /// Assemble the final [`Schedule`]. Communication placements are
    /// read back from the link state *after* all tasks are placed, so
    /// optimal-insertion deferrals are reflected.
    fn finish(self) -> Result<Schedule, SchedError> {
        let comm_base = self.comm_base;
        let tasks: Vec<TaskPlacement> = self
            .placed
            .into_iter()
            .map(|p| p.expect("all tasks placed"))
            .collect();
        let comms: Vec<CommPlacement> = self
            .dag
            .edge_ids()
            .map(|e| {
                let edge = self.dag.edge(e);
                if tasks[edge.src.index()].proc == tasks[edge.dst.index()].proc {
                    CommPlacement::Local
                } else {
                    let (route, times) = self.links.placement(CommId(comm_base + u64::from(e.0)));
                    CommPlacement::Slotted { route, times }
                }
            })
            .collect();
        debug_assert!(self.links.check_invariants().is_ok());
        let makespan = Schedule::compute_makespan(&tasks);
        Ok(Schedule {
            algorithm: self.cfg.name,
            tasks,
            comms,
            makespan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EdgeOrder, Routing};
    use es_dag::gen::structured::{chain, fork_join};
    use es_dag::TaskGraphBuilder;
    use es_net::gen::{self, SpeedDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star(n: usize) -> Topology {
        gen::star(
            n,
            SpeedDist::Fixed(1.0),
            SpeedDist::Fixed(1.0),
            &mut StdRng::seed_from_u64(1),
        )
    }

    #[test]
    fn single_task_runs_immediately() {
        let mut b = TaskGraphBuilder::new();
        b.add_task(5.0);
        let dag = b.build().unwrap();
        let topo = star(2);
        for sched in [ListScheduler::ba(), ListScheduler::oihsa()] {
            let s = sched.schedule(&dag, &topo).unwrap();
            assert_eq!(s.makespan, 5.0, "{}", sched.name());
            assert_eq!(s.tasks[0].start, 0.0);
        }
    }

    #[test]
    fn chain_stays_on_one_processor() {
        // Comm cost far above compute: any splitting is a loss, so both
        // algorithms keep the chain local and the makespan is the sum
        // of weights.
        let dag = chain(5, 2.0, 100.0);
        let topo = star(4);
        for sched in [ListScheduler::ba(), ListScheduler::oihsa()] {
            let s = sched.schedule(&dag, &topo).unwrap();
            assert_eq!(s.makespan, 10.0, "{}", sched.name());
            let p0 = s.tasks[0].proc;
            assert!(s.tasks.iter().all(|t| t.proc == p0));
            assert!(s.comms.iter().all(|c| matches!(c, CommPlacement::Local)));
        }
    }

    #[test]
    fn independent_tasks_spread_across_processors() {
        let mut b = TaskGraphBuilder::new();
        for _ in 0..4 {
            b.add_task(10.0);
        }
        let dag = b.build().unwrap();
        let topo = star(4);
        let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        assert_eq!(s.makespan, 10.0, "perfect parallelism");
        let procs: std::collections::BTreeSet<_> = s.tasks.iter().map(|t| t.proc).collect();
        assert_eq!(procs.len(), 4);
    }

    #[test]
    fn fork_join_parallelises_when_comm_is_cheap() {
        let dag = fork_join(3, 10.0, 1.0);
        let topo = star(3);
        let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        // Serial would be 50; with cheap communication the workers
        // overlap, so the makespan must be clearly below serial.
        assert!(s.makespan < 50.0, "makespan {}", s.makespan);
    }

    #[test]
    fn hetero_prefers_fast_processor() {
        let mut b = Topology::builder();
        let (n0, _) = b.add_processor(1.0);
        let (n1, _) = b.add_processor(10.0);
        let sw = b.add_switch();
        b.add_duplex_cable(n0, sw, 1.0);
        b.add_duplex_cable(n1, sw, 1.0);
        let topo = b.build().unwrap();

        let mut g = TaskGraphBuilder::new();
        g.add_task(100.0);
        let dag = g.build().unwrap();

        for sched in [ListScheduler::ba(), ListScheduler::oihsa()] {
            let s = sched.schedule(&dag, &topo).unwrap();
            assert_eq!(s.tasks[0].proc, ProcId(1), "{}", sched.name());
            assert_eq!(s.makespan, 10.0);
        }
    }

    #[test]
    fn remote_comm_uses_links() {
        // Force two tasks apart: two entry tasks then a join; with two
        // processors the join has at least one remote predecessor.
        let mut g = TaskGraphBuilder::new();
        let a = g.add_task(10.0);
        let b_ = g.add_task(10.0);
        let j = g.add_task(1.0);
        g.add_edge(a, j, 4.0).unwrap();
        g.add_edge(b_, j, 4.0).unwrap();
        let dag = g.build().unwrap();
        let topo = star(2);
        let s = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        let slotted = s
            .comms
            .iter()
            .filter(|c| matches!(c, CommPlacement::Slotted { .. }))
            .count();
        assert!(slotted >= 1, "at least one remote communication");
        // Slotted communications: 2 hops through the hub.
        for c in &s.comms {
            if let CommPlacement::Slotted { route, times } = c {
                assert_eq!(route.len(), 2);
                assert_eq!(times.len(), 2);
            }
        }
    }

    #[test]
    fn oihsa_never_worse_on_contended_star() {
        // Heavy fan-in onto one join task through a shared hub: the
        // situation §4 targets. OIHSA must not lose to BA.
        let dag = fork_join(6, 5.0, 50.0);
        let topo = star(4);
        let ba = ListScheduler::ba().schedule(&dag, &topo).unwrap();
        let oi = ListScheduler::oihsa().schedule(&dag, &topo).unwrap();
        assert!(
            oi.makespan <= ba.makespan + EPS,
            "OIHSA {} vs BA {}",
            oi.makespan,
            ba.makespan
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let dag = fork_join(5, 3.0, 20.0);
        let topo = star(3);
        for sched in [ListScheduler::ba(), ListScheduler::oihsa()] {
            let a = sched.schedule(&dag, &topo).unwrap();
            let b = sched.schedule(&dag, &topo).unwrap();
            assert_eq!(a.makespan, b.makespan);
            for (x, y) in a.tasks.iter().zip(&b.tasks) {
                assert_eq!(x, y);
            }
        }
    }

    #[test]
    fn ablation_config_is_honoured() {
        let cfg = ListConfig {
            name: "BA+dijkstra",
            routing: Routing::ModifiedDijkstra,
            ..ListConfig::ba()
        };
        let sched = ListScheduler::with_config(cfg);
        assert_eq!(sched.name(), "BA+dijkstra");
        let dag = fork_join(4, 3.0, 10.0);
        let topo = star(3);
        let s = sched.schedule(&dag, &topo).unwrap();
        assert!(s.makespan > 0.0);
    }

    #[test]
    fn edge_order_changes_are_deterministic_not_crashing() {
        let dag = fork_join(5, 2.0, 30.0);
        let topo = star(3);
        for order in [EdgeOrder::Arrival, EdgeOrder::CostDesc, EdgeOrder::CostAsc] {
            let cfg = ListConfig {
                name: "probe",
                edge_order: order,
                ..ListConfig::oihsa()
            };
            let s = ListScheduler::with_config(cfg)
                .schedule(&dag, &topo)
                .unwrap();
            assert!(s.makespan.is_finite());
        }
    }

    #[test]
    fn disconnected_topology_yields_no_route() {
        let mut b = Topology::builder();
        b.add_processor(1.0);
        b.add_processor(1.0);
        let topo = b.build().unwrap();
        // Two independent tasks would be placed on separate processors,
        // then the join needs a route and fails.
        let mut g = TaskGraphBuilder::new();
        let a = g.add_task(10.0);
        let b_ = g.add_task(10.0);
        let j = g.add_task(1.0);
        g.add_edge(a, j, 5.0).unwrap();
        g.add_edge(b_, j, 5.0).unwrap();
        let dag = g.build().unwrap();
        let err = ListScheduler::ba().schedule(&dag, &topo).unwrap_err();
        assert!(matches!(err, SchedError::NoRoute { .. }));
    }
}
