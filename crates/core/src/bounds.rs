//! Makespan lower bounds.
//!
//! Cheap, provable bounds used by the test-suite (no schedule may beat
//! them) and by reports to show how far a heuristic is from
//! unbeatable limits:
//!
//! * **work bound** — total computation over total processing capacity;
//! * **chain bound** — the critical path executed on the fastest
//!   processor with *free* communication (any real schedule pays at
//!   least the computation part of its heaviest chain);
//! * **single-task bound** — the heaviest task on the fastest
//!   processor.
//!
//! All three ignore communication entirely, so they bound *every*
//! scheduler on *every* topology, contention-aware or not.

use es_dag::{TaskGraph, TaskId};
use es_net::Topology;

/// The maximum of all implemented lower bounds.
pub fn makespan_lower_bound(dag: &TaskGraph, topo: &Topology) -> f64 {
    work_bound(dag, topo)
        .max(chain_bound(dag, topo))
        .max(single_task_bound(dag, topo))
}

/// `Σ w(n) / Σ s(P)`: even perfectly balanced execution cannot beat
/// the aggregate capacity.
pub fn work_bound(dag: &TaskGraph, topo: &Topology) -> f64 {
    let total_work: f64 = dag.task_ids().map(|t| dag.weight(t)).sum();
    let total_speed: f64 = topo.proc_ids().map(|p| topo.proc_speed(p)).sum();
    total_work / total_speed
}

/// The computation-only critical path on the fastest processor: for
/// every task, `cb(n) = w(n)/s_max + max_pred cb(pred)`; the bound is
/// the maximum over tasks. Communication is free here, so this holds
/// for any routing/insertion policy.
pub fn chain_bound(dag: &TaskGraph, topo: &Topology) -> f64 {
    let s_max = topo
        .proc_ids()
        .map(|p| topo.proc_speed(p))
        .fold(0.0, f64::max);
    let mut cb = vec![0.0_f64; dag.task_count()];
    let mut best = 0.0_f64;
    for &t in dag.topological_order() {
        let pred_part = dag
            .predecessors(t)
            .map(|p: TaskId| cb[p.index()])
            .fold(0.0, f64::max);
        cb[t.index()] = dag.weight(t) / s_max + pred_part;
        best = best.max(cb[t.index()]);
    }
    best
}

/// The heaviest single task on the fastest processor.
pub fn single_task_bound(dag: &TaskGraph, topo: &Topology) -> f64 {
    let s_max = topo
        .proc_ids()
        .map(|p| topo.proc_speed(p))
        .fold(0.0, f64::max);
    dag.task_ids()
        .map(|t| dag.weight(t) / s_max)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbsa::BbsaScheduler;
    use crate::list::ListScheduler;
    use crate::schedule::Scheduler;
    use es_dag::gen::structured::{chain, fork_join, gauss_elim};
    use es_net::gen::{self, SpeedDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chain_bound_equals_serial_work_for_chains() {
        let dag = chain(5, 4.0, 100.0);
        let mut b = es_net::Topology::builder();
        b.add_processor(2.0);
        b.add_processor(1.0);
        let (n0, n1) = (es_net::NodeId(0), es_net::NodeId(1));
        b.add_duplex_cable(n0, n1, 1.0);
        let topo = b.build().unwrap();
        // 5 tasks * 4.0 on the speed-2 processor = 10.
        assert_eq!(chain_bound(&dag, &topo), 10.0);
    }

    #[test]
    fn work_bound_uses_aggregate_capacity() {
        let dag = fork_join(4, 10.0, 1.0);
        let mut b = es_net::Topology::builder();
        b.add_processor(1.0);
        b.add_processor(3.0);
        let (n0, n1) = (es_net::NodeId(0), es_net::NodeId(1));
        b.add_duplex_cable(n0, n1, 1.0);
        let topo = b.build().unwrap();
        // 6 tasks * 10 / (1 + 3) = 15.
        assert_eq!(work_bound(&dag, &topo), 15.0);
    }

    #[test]
    fn no_scheduler_beats_the_combined_bound() {
        let mut rng = StdRng::seed_from_u64(5);
        for dag in [fork_join(5, 12.0, 20.0), gauss_elim(5, 9.0, 14.0)] {
            let topo = gen::random_switched_wan(&gen::WanConfig::heterogeneous(10), &mut rng);
            let lb = makespan_lower_bound(&dag, &topo);
            for sched in [
                Box::new(ListScheduler::ba()) as Box<dyn Scheduler>,
                Box::new(ListScheduler::ba_static()),
                Box::new(ListScheduler::oihsa()),
                Box::new(BbsaScheduler::new()),
            ] {
                let s = sched.schedule(&dag, &topo).unwrap();
                assert!(
                    s.makespan + 1e-6 >= lb,
                    "{} makespan {} beat lower bound {lb}",
                    sched.name(),
                    s.makespan
                );
            }
        }
    }

    #[test]
    fn bound_ordering_sanity() {
        let dag = gauss_elim(4, 7.0, 3.0);
        let mut rng = StdRng::seed_from_u64(6);
        let topo = gen::star(3, SpeedDist::Fixed(2.0), SpeedDist::Fixed(1.0), &mut rng);
        let combined = makespan_lower_bound(&dag, &topo);
        assert!(combined >= work_bound(&dag, &topo));
        assert!(combined >= chain_bound(&dag, &topo));
        assert!(combined >= single_task_bound(&dag, &topo));
        assert!(single_task_bound(&dag, &topo) <= chain_bound(&dag, &topo));
    }
}
