//! Contention-free "classic model" list scheduler.
//!
//! This is the idealised model the paper's introduction criticises:
//! fully connected processors, every communication delivered
//! concurrently with delay `c(e)/s` and no link contention at all. It
//! is **not** one of the paper's evaluated algorithms; it exists so the
//! examples and ablations can show how far the classic model's makespan
//! estimates drift from contention-aware reality, and as the simplest
//! possible cross-check for the list-scheduling skeleton.
//!
//! The communication delay between distinct processors is
//! `c(e) / MLS` with `MLS` the topology's mean link speed (the same
//! normalisation OIHSA's §4.1 criterion uses).

use crate::procsched::ProcState;
use crate::schedule::{CommPlacement, SchedError, Schedule, Scheduler, TaskPlacement};
use es_dag::{priority_list, Priority, TaskGraph};
use es_linksched::time::EPS;
use es_net::Topology;

/// Classic-model (contention-unaware) list scheduler.
#[derive(Clone, Debug, Default)]
pub struct IdealScheduler;

impl IdealScheduler {
    /// Create the baseline scheduler.
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for IdealScheduler {
    fn name(&self) -> &'static str {
        "IDEAL"
    }

    fn schedule(&self, dag: &TaskGraph, topo: &Topology) -> Result<Schedule, SchedError> {
        if topo.proc_count() == 0 {
            return Err(SchedError::NoProcessors);
        }
        let mls = topo.mean_link_speed();
        let order = priority_list(dag, Priority::BottomLevel);
        let mut procs = ProcState::new(topo);
        let mut placed: Vec<Option<TaskPlacement>> = vec![None; dag.task_count()];

        for &task in &order {
            // Earliest finish over all processors under free concurrent
            // communication.
            let weight = dag.weight(task);
            let mut best: Option<(es_net::ProcId, f64, f64)> = None;
            for p in topo.proc_ids() {
                let mut dr = 0.0_f64;
                for &e in dag.in_edges(task) {
                    let edge = dag.edge(e);
                    let src = placed[edge.src.index()].expect("placed");
                    let arrival = if src.proc == p {
                        src.finish
                    } else {
                        src.finish + edge.cost / mls
                    };
                    dr = dr.max(arrival);
                }
                let start = procs.earliest_start(p, dr);
                let finish = start + weight / topo.proc_speed(p);
                if best.is_none_or(|(_, _, bf)| finish < bf - EPS) {
                    best = Some((p, dr, finish));
                }
            }
            let (p, dr, _) = best.expect("at least one processor");
            let (start, finish) = procs.place(topo, p, dr, weight);
            placed[task.index()] = Some(TaskPlacement {
                proc: p,
                start,
                finish,
            });
        }

        let tasks: Vec<TaskPlacement> = placed.into_iter().map(|p| p.expect("placed")).collect();
        let comms: Vec<CommPlacement> = dag
            .edge_ids()
            .map(|e| {
                let edge = dag.edge(e);
                let src = tasks[edge.src.index()];
                if src.proc == tasks[edge.dst.index()].proc {
                    CommPlacement::Local
                } else {
                    let delay = edge.cost / mls;
                    CommPlacement::Ideal {
                        delay,
                        arrival: src.finish + delay,
                    }
                }
            })
            .collect();
        let makespan = Schedule::compute_makespan(&tasks);
        Ok(Schedule {
            algorithm: "IDEAL",
            tasks,
            comms,
            makespan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use es_dag::gen::structured::fork_join;
    use es_dag::TaskGraphBuilder;
    use es_net::gen::{self, SpeedDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star(n: usize) -> Topology {
        gen::star(
            n,
            SpeedDist::Fixed(1.0),
            SpeedDist::Fixed(1.0),
            &mut StdRng::seed_from_u64(1),
        )
    }

    #[test]
    fn ideal_is_lower_bound_ish_on_contended_fanout() {
        // Under heavy contention the classic model underestimates: the
        // contention-aware BA cannot beat it on a shared star.
        let dag = fork_join(6, 5.0, 40.0);
        let topo = star(3);
        let ideal = IdealScheduler::new().schedule(&dag, &topo).unwrap();
        let ba = crate::list::ListScheduler::ba()
            .schedule(&dag, &topo)
            .unwrap();
        assert!(ideal.makespan <= ba.makespan + EPS);
    }

    #[test]
    fn single_task_trivial() {
        let mut b = TaskGraphBuilder::new();
        b.add_task(3.0);
        let dag = b.build().unwrap();
        let s = IdealScheduler::new().schedule(&dag, &star(2)).unwrap();
        assert_eq!(s.makespan, 3.0);
    }

    #[test]
    fn ideal_comms_record_delay() {
        let mut g = TaskGraphBuilder::new();
        let a = g.add_task(10.0);
        let b_ = g.add_task(10.0);
        let j = g.add_task(1.0);
        g.add_edge(a, j, 6.0).unwrap();
        g.add_edge(b_, j, 6.0).unwrap();
        let dag = g.build().unwrap();
        let s = IdealScheduler::new().schedule(&dag, &star(2)).unwrap();
        let ideal_comms = s
            .comms
            .iter()
            .filter(|c| matches!(c, CommPlacement::Ideal { .. }))
            .count();
        assert!(ideal_comms >= 1);
    }
}
