//! Property-based tests of the DAG structures and priority functions.

use es_dag::gen::layered::{random_layered, LayeredDagConfig};
use es_dag::{analysis, bottom_levels, priority_list, top_levels, Priority, TaskGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random layered-DAG configuration + seed — covers the generator's
/// whole parameter space at property scale.
fn dag_strategy() -> impl Strategy<Value = TaskGraph> {
    (
        1usize..120,  // tasks
        1usize..12,   // mean width
        0.0f64..=1.0, // edge density
        1usize..4,    // max jump
        any::<u64>(), // seed
    )
        .prop_map(|(tasks, width, density, jump, seed)| {
            let cfg = LayeredDagConfig {
                tasks,
                mean_width: width,
                edge_density: density,
                max_jump: jump,
                weight_range: (1, 100),
                cost_range: (1, 100),
            };
            random_layered(&cfg, &mut StdRng::seed_from_u64(seed))
        })
}

fn positions(list: &[es_dag::TaskId], n: usize) -> Vec<usize> {
    let mut pos = vec![usize::MAX; n];
    for (i, &t) in list.iter().enumerate() {
        pos[t.index()] = i;
    }
    pos
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topological_order_is_complete_and_valid(g in dag_strategy()) {
        let topo = g.topological_order();
        prop_assert_eq!(topo.len(), g.task_count());
        let pos = positions(topo, g.task_count());
        for e in g.edge_ids() {
            let edge = g.edge(e);
            prop_assert!(pos[edge.src.index()] < pos[edge.dst.index()]);
        }
    }

    #[test]
    fn bottom_level_dominates_every_successor(g in dag_strategy()) {
        let bl = bottom_levels(&g);
        for e in g.edge_ids() {
            let edge = g.edge(e);
            // bl(src) >= w(src) + c(e) + bl(dst) by definition (max).
            prop_assert!(
                bl[edge.src.index()] + 1e-9 >=
                g.weight(edge.src) + edge.cost + bl[edge.dst.index()]
            );
        }
        // And every bl includes the task's own weight.
        for t in g.task_ids() {
            prop_assert!(bl[t.index()] + 1e-9 >= g.weight(t));
        }
    }

    #[test]
    fn top_level_dominates_every_predecessor(g in dag_strategy()) {
        let tl = top_levels(&g);
        for e in g.edge_ids() {
            let edge = g.edge(e);
            prop_assert!(
                tl[edge.dst.index()] + 1e-9 >=
                tl[edge.src.index()] + g.weight(edge.src) + edge.cost
            );
        }
    }

    #[test]
    fn priority_lists_are_permutations_respecting_precedence(g in dag_strategy()) {
        for p in [Priority::BottomLevel, Priority::TopLevel, Priority::BottomPlusTop] {
            let list = priority_list(&g, p);
            prop_assert_eq!(list.len(), g.task_count());
            let pos = positions(&list, g.task_count());
            prop_assert!(pos.iter().all(|&x| x != usize::MAX), "every task appears");
            for e in g.edge_ids() {
                let edge = g.edge(e);
                prop_assert!(pos[edge.src.index()] < pos[edge.dst.index()], "{p:?}");
            }
        }
    }

    #[test]
    fn bottom_level_list_is_sorted_among_ready_prefixes(g in dag_strategy()) {
        // Entry tasks must appear in descending bl order relative to
        // each other (they are all ready from the start).
        let bl = bottom_levels(&g);
        let list = priority_list(&g, Priority::BottomLevel);
        let entries: Vec<_> = list
            .iter()
            .filter(|t| g.in_edges(**t).is_empty())
            .collect();
        for w in entries.windows(2) {
            prop_assert!(bl[w[0].index()] + 1e-9 >= bl[w[1].index()]);
        }
    }

    #[test]
    fn stats_are_internally_consistent(g in dag_strategy()) {
        let s = analysis::stats(&g);
        prop_assert_eq!(s.tasks, g.task_count());
        prop_assert_eq!(s.edges, g.edge_count());
        prop_assert!(s.width <= s.tasks);
        prop_assert!(s.depth <= s.tasks);
        prop_assert!(s.width * s.depth >= s.tasks, "levels must cover all tasks");
        let by_level = analysis::tasks_by_level(&g);
        prop_assert_eq!(by_level.len(), s.depth);
        prop_assert_eq!(by_level.iter().map(Vec::len).sum::<usize>(), s.tasks);
        prop_assert_eq!(by_level.iter().map(Vec::len).max().unwrap_or(0), s.width);
    }

    #[test]
    fn ccr_scaling_hits_any_target(g in dag_strategy(), target in 0.05f64..20.0) {
        if g.edge_count() == 0 {
            return Ok(());
        }
        let f = analysis::ccr_scale_factor(&g, target, 1.0, 1.0).unwrap();
        prop_assert!(f > 0.0);
        // Applying the factor and re-measuring must hit the target.
        let mut b = TaskGraph::builder();
        for t in g.task_ids() {
            b.add_task(g.weight(t));
        }
        for e in g.edge_ids() {
            let edge = g.edge(e);
            b.add_edge(edge.src, edge.dst, edge.cost * f).unwrap();
        }
        let g2 = b.build().unwrap();
        let measured = analysis::measured_ccr(&g2, 1.0, 1.0);
        prop_assert!((measured - target).abs() < 1e-6 * target.max(1.0));
    }

    #[test]
    fn critical_path_bounds_levels(g in dag_strategy()) {
        let cp = es_dag::critical_path(&g);
        let bl = bottom_levels(&g);
        let tl = top_levels(&g);
        for t in g.task_ids() {
            // bl + tl along any task is a path length, so <= cp.
            prop_assert!(bl[t.index()] + tl[t.index()] <= cp + 1e-9);
        }
    }
}
