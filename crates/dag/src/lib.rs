//! # es-dag — task graphs for contention-aware scheduling
//!
//! This crate implements the application model of Han & Wang,
//! *"Edge Scheduling Algorithms in Parallel and Distributed Systems"*
//! (ICPP 2006): a directed acyclic graph `G = (V, E, w, c)` where
//!
//! * every task `n ∈ V` carries a computation cost `w(n)` (executed on a
//!   processor of speed `s(P)` in `w(n)/s(P)` time units), and
//! * every edge `e(i,j) ∈ E` carries a communication cost `c(e)`
//!   (transferred over a link of speed `s(L)` in `c(e)/s(L)` time units).
//!
//! The crate provides:
//!
//! * [`TaskGraph`] / [`TaskGraphBuilder`] — an immutable, validated DAG
//!   with O(1) access to predecessor/successor edge lists and a cached
//!   topological order;
//! * [`levels`] — static priorities: bottom level `bl`, top level `tl`,
//!   and critical-path utilities (the paper's list priority is `bl`,
//!   §2.1);
//! * [`gen`] — graph generators: the paper's layered random DAGs
//!   (§6, following Bajaj & Agrawal) plus structured kernels
//!   (Gaussian elimination, FFT, fork–join, stencil, chains, diamonds)
//!   used by the examples and ablation benches;
//! * [`analysis`] — aggregate statistics (work, communication volume,
//!   graph width/depth, CCR measurement).
//!
//! All costs are kept as `f64`; generators draw integers per the paper
//! and the workload layer rescales communication costs to hit a target
//! CCR exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod dot;
pub mod gen;
pub mod graph;
pub mod levels;
pub mod transform;

pub use graph::{EdgeId, GraphError, TaskEdge, TaskGraph, TaskGraphBuilder, TaskId, TaskNode};
pub use levels::{bottom_levels, critical_path, priority_list, top_levels, Priority};
