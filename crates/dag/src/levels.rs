//! Static task priorities: bottom level, top level, critical path.
//!
//! The paper (§2.1) prioritises tasks by **bottom level**
//! `bl(n_i) = w(n_i) + max_{n_j ∈ succ(n_i)} { c(e_{i,j}) + bl(n_j) }`,
//! the length of the longest path leaving the task (including its own
//! weight). Sorting tasks by descending `bl` yields a schedule list that
//! is compatible with precedence constraints whenever weights are
//! positive; we additionally break ties by topological position so the
//! list is always a valid topological order even with zero-weight tasks.

use crate::graph::{TaskGraph, TaskId};

/// Which static priority to order the task list by.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Descending bottom level (the paper's choice).
    BottomLevel,
    /// Ascending top level (earliest-start-first; used in ablations).
    TopLevel,
    /// Descending `bl + tl` (critical-path-inclusive priority).
    BottomPlusTop,
}

/// Bottom levels `bl(n)` for every task, indexed by `TaskId`.
///
/// Computed in reverse topological order in O(|V| + |E|).
pub fn bottom_levels(g: &TaskGraph) -> Vec<f64> {
    let mut bl = vec![0.0_f64; g.task_count()];
    for &t in g.topological_order().iter().rev() {
        let mut best = 0.0_f64;
        for &e in g.out_edges(t) {
            let edge = g.edge(e);
            let cand = edge.cost + bl[edge.dst.index()];
            if cand > best {
                best = cand;
            }
        }
        bl[t.index()] = g.weight(t) + best;
    }
    bl
}

/// Top levels `tl(n)` for every task: the length of the longest path
/// arriving at the task, *excluding* its own weight.
///
/// `tl(n_j) = max_{n_i ∈ pred(n_j)} { tl(n_i) + w(n_i) + c(e_{i,j}) }`,
/// 0 for entry tasks.
pub fn top_levels(g: &TaskGraph) -> Vec<f64> {
    let mut tl = vec![0.0_f64; g.task_count()];
    for &t in g.topological_order() {
        let mut best = 0.0_f64;
        for &e in g.in_edges(t) {
            let edge = g.edge(e);
            let cand = tl[edge.src.index()] + g.weight(edge.src) + edge.cost;
            if cand > best {
                best = cand;
            }
        }
        tl[t.index()] = best;
    }
    tl
}

/// Length of the critical path of `g`: `max_n bl(n)`.
///
/// This equals the makespan of `g` on one processor of speed 1 with free
/// communication only for chain graphs; in general it is the classic
/// lower bound `cp` used to normalise schedule lengths.
pub fn critical_path(g: &TaskGraph) -> f64 {
    bottom_levels(g).into_iter().fold(0.0, f64::max)
}

/// Tasks ordered by the requested priority, restricted to
/// precedence-compatible emissions: at every step the highest-priority
/// *ready* task (all predecessors already emitted) is taken, with ties
/// broken by topological position. This is the classic ready-list
/// construction, and it guarantees the result is a topological order no
/// matter the priority function.
pub fn priority_list(g: &TaskGraph, priority: Priority) -> Vec<TaskId> {
    let mut topo_pos = vec![0usize; g.task_count()];
    for (i, &t) in g.topological_order().iter().enumerate() {
        topo_pos[t.index()] = i;
    }
    // Larger key == scheduled earlier.
    let key: Vec<f64> = match priority {
        Priority::BottomLevel => bottom_levels(g),
        Priority::TopLevel => top_levels(g).into_iter().map(|v| -v).collect(),
        Priority::BottomPlusTop => {
            let bl = bottom_levels(g);
            let tl = top_levels(g);
            bl.iter().zip(tl.iter()).map(|(b, t)| b + t).collect()
        }
    };

    /// Max-heap entry: highest key first, then earliest topo position.
    struct Entry {
        key: f64,
        topo_pos: usize,
        task: TaskId,
    }
    impl PartialEq for Entry {
        fn eq(&self, other: &Self) -> bool {
            self.key == other.key && self.topo_pos == other.topo_pos
        }
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.key
                .partial_cmp(&other.key)
                .expect("priority keys are finite")
                .then_with(|| other.topo_pos.cmp(&self.topo_pos))
        }
    }

    let mut indegree: Vec<usize> = g.task_ids().map(|t| g.in_edges(t).len()).collect();
    let mut heap: std::collections::BinaryHeap<Entry> = g
        .task_ids()
        .filter(|&t| indegree[t.index()] == 0)
        .map(|t| Entry {
            key: key[t.index()],
            topo_pos: topo_pos[t.index()],
            task: t,
        })
        .collect();
    let mut list = Vec::with_capacity(g.task_count());
    while let Some(Entry { task, .. }) = heap.pop() {
        list.push(task);
        for s in g.successors(task) {
            indegree[s.index()] -= 1;
            if indegree[s.index()] == 0 {
                heap.push(Entry {
                    key: key[s.index()],
                    topo_pos: topo_pos[s.index()],
                    task: s,
                });
            }
        }
    }
    debug_assert_eq!(list.len(), g.task_count());
    debug_assert!(
        is_topological(g, &list),
        "priority list must respect precedence"
    );
    list
}

/// True iff `list` is a topological order of `g`.
fn is_topological(g: &TaskGraph, list: &[TaskId]) -> bool {
    let mut pos = vec![usize::MAX; g.task_count()];
    for (i, &t) in list.iter().enumerate() {
        pos[t.index()] = i;
    }
    g.edge_ids().all(|e| {
        let edge = g.edge(e);
        pos[edge.src.index()] < pos[edge.dst.index()]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraphBuilder;

    /// The 4-task diamond used across the crate's tests:
    /// n0(2) -> n1(3) [c=10], n0 -> n2(4) [c=20],
    /// n1 -> n3(5) [c=30], n2 -> n3 [c=40].
    fn diamond() -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let a = b.add_task(2.0);
        let l = b.add_task(3.0);
        let r = b.add_task(4.0);
        let j = b.add_task(5.0);
        b.add_edge(a, l, 10.0).unwrap();
        b.add_edge(a, r, 20.0).unwrap();
        b.add_edge(l, j, 30.0).unwrap();
        b.add_edge(r, j, 40.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn bottom_levels_match_hand_computation() {
        let g = diamond();
        let bl = bottom_levels(&g);
        // bl(n3) = 5; bl(n1) = 3 + 30 + 5 = 38; bl(n2) = 4 + 40 + 5 = 49;
        // bl(n0) = 2 + max(10+38, 20+49) = 2 + 69 = 71.
        assert_eq!(bl, vec![71.0, 38.0, 49.0, 5.0]);
    }

    #[test]
    fn top_levels_match_hand_computation() {
        let g = diamond();
        let tl = top_levels(&g);
        // tl(n0)=0; tl(n1)=0+2+10=12; tl(n2)=0+2+20=22;
        // tl(n3)=max(12+3+30, 22+4+40)=66.
        assert_eq!(tl, vec![0.0, 12.0, 22.0, 66.0]);
    }

    #[test]
    fn critical_path_is_max_bottom_level() {
        let g = diamond();
        assert_eq!(critical_path(&g), 71.0);
    }

    #[test]
    fn bl_plus_tl_on_critical_path_equals_cp() {
        let g = diamond();
        let bl = bottom_levels(&g);
        let tl = top_levels(&g);
        // Critical path runs n0 -> n2 -> n3.
        for i in [0usize, 2, 3] {
            assert_eq!(bl[i] + tl[i], 71.0, "task n{i} lies on the critical path");
        }
        // n1 does not.
        assert!(bl[1] + tl[1] < 71.0);
    }

    #[test]
    fn priority_list_bottom_level_order() {
        let g = diamond();
        let list = priority_list(&g, Priority::BottomLevel);
        // Descending bl: n0 (71), n2 (49), n1 (38), n3 (5).
        assert_eq!(list, vec![TaskId(0), TaskId(2), TaskId(1), TaskId(3)]);
    }

    #[test]
    fn priority_lists_are_topological_for_all_priorities() {
        let g = diamond();
        for p in [
            Priority::BottomLevel,
            Priority::TopLevel,
            Priority::BottomPlusTop,
        ] {
            let list = priority_list(&g, p);
            assert!(is_topological(&g, &list), "{p:?}");
            assert_eq!(list.len(), g.task_count());
        }
    }

    #[test]
    fn zero_weight_ties_still_topological() {
        // Two independent chains of zero-weight tasks: every bl is 0 and
        // tie-breaking alone must keep precedence.
        let mut b = TaskGraphBuilder::new();
        let a0 = b.add_task(0.0);
        let a1 = b.add_task(0.0);
        let c0 = b.add_task(0.0);
        let c1 = b.add_task(0.0);
        b.add_edge(a0, a1, 0.0).unwrap();
        b.add_edge(c0, c1, 0.0).unwrap();
        let g = b.build().unwrap();
        let list = priority_list(&g, Priority::BottomLevel);
        assert!(is_topological(&g, &list));
    }

    #[test]
    fn independent_tasks_sorted_by_weight_under_bl() {
        let mut b = TaskGraphBuilder::new();
        b.add_task(1.0);
        b.add_task(9.0);
        b.add_task(5.0);
        let g = b.build().unwrap();
        let list = priority_list(&g, Priority::BottomLevel);
        assert_eq!(list, vec![TaskId(1), TaskId(2), TaskId(0)]);
    }
}
