//! Graphviz DOT export for task graphs.
//!
//! `dot -Tpng graph.dot -o graph.png` renders the DAG with computation
//! costs on nodes and communication costs on edges — handy when
//! debugging why a scheduler made a placement decision.

use crate::graph::TaskGraph;
use std::fmt::Write as _;

/// Render the task graph as a DOT digraph.
///
/// Node labels show the task's label (if any) or id, plus `w(n)`;
/// edge labels show `c(e)`.
pub fn to_dot(g: &TaskGraph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitise(name));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=ellipse, fontsize=10];");
    for t in g.task_ids() {
        let node = g.task(t);
        let label = match &node.label {
            Some(l) => format!("{l}\\nw={}", trim_num(node.weight)),
            None => format!("{t}\\nw={}", trim_num(node.weight)),
        };
        let _ = writeln!(out, "  n{} [label=\"{}\"];", t.0, label);
    }
    for e in g.edge_ids() {
        let edge = g.edge(e);
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{}\"];",
            edge.src.0,
            edge.dst.0,
            trim_num(edge.cost)
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Strip trailing `.0` from integral floats for compact labels.
fn trim_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:.2}")
    }
}

/// Graphviz identifiers must be alphanumeric/underscore.
fn sanitise(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() || cleaned.chars().next().unwrap().is_ascii_digit() {
        format!("g_{cleaned}")
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::structured::fork_join;
    use crate::graph::TaskGraphBuilder;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = fork_join(3, 5.0, 7.0);
        let dot = to_dot(&g, "forkjoin");
        assert!(dot.starts_with("digraph forkjoin {"));
        for t in g.task_ids() {
            assert!(dot.contains(&format!("n{} [", t.0)));
        }
        assert_eq!(dot.matches(" -> ").count(), g.edge_count());
        assert!(dot.contains("w=5"));
        assert!(dot.contains("label=\"7\""));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn labels_are_escaped_into_node_text() {
        let mut b = TaskGraphBuilder::new();
        b.add_labeled_task(1.5, "source");
        let g = b.build().unwrap();
        let dot = to_dot(&g, "x");
        assert!(dot.contains("source"));
        assert!(dot.contains("w=1.50"));
    }

    #[test]
    fn graph_names_are_sanitised() {
        let mut b = TaskGraphBuilder::new();
        b.add_task(1.0);
        let g = b.build().unwrap();
        assert!(to_dot(&g, "my graph!").starts_with("digraph my_graph_ {"));
        assert!(to_dot(&g, "1abc").starts_with("digraph g_1abc {"));
        assert!(to_dot(&g, "").starts_with("digraph g_ {"));
    }
}
