//! Graph transformations and combinators.
//!
//! Series/parallel composition builds complex benchmark workloads from
//! the structured kernels (e.g. "a fork–join feeding a stencil");
//! transitive reduction strips redundant precedence edges (classic
//! preprocessing — redundant edges waste link capacity when scheduled
//! literally); `scale_costs` uniformly rescales whole graphs.

use crate::graph::{TaskGraph, TaskGraphBuilder, TaskId};

/// Sequential composition `a ; b`: every exit task of `a` feeds every
/// entry task of `b` with communication cost `glue_cost`.
pub fn series(a: &TaskGraph, b: &TaskGraph, glue_cost: f64) -> TaskGraph {
    let mut out = TaskGraphBuilder::with_capacity(
        a.task_count() + b.task_count(),
        a.edge_count() + b.edge_count() + a.exit_tasks().count() * b.entry_tasks().count(),
    );
    let map_a = copy_into(a, &mut out);
    let map_b = copy_into(b, &mut out);
    for ea in a.exit_tasks() {
        for eb in b.entry_tasks() {
            out.add_edge(map_a[ea.index()], map_b[eb.index()], glue_cost)
                .expect("distinct components cannot duplicate edges");
        }
    }
    out.build().expect("series of DAGs is a DAG")
}

/// Parallel composition `a || b`: the disjoint union (no new edges).
pub fn parallel(a: &TaskGraph, b: &TaskGraph) -> TaskGraph {
    let mut out = TaskGraphBuilder::with_capacity(
        a.task_count() + b.task_count(),
        a.edge_count() + b.edge_count(),
    );
    copy_into(a, &mut out);
    copy_into(b, &mut out);
    out.build().expect("union of DAGs is a DAG")
}

/// Copy `g` into `out`, returning old→new id map.
fn copy_into(g: &TaskGraph, out: &mut TaskGraphBuilder) -> Vec<TaskId> {
    let map: Vec<TaskId> = g
        .task_ids()
        .map(|t| {
            let node = g.task(t);
            match &node.label {
                Some(l) => out.add_labeled_task(node.weight, l.clone()),
                None => out.add_task(node.weight),
            }
        })
        .collect();
    for e in g.edge_ids() {
        let edge = g.edge(e);
        out.add_edge(map[edge.src.index()], map[edge.dst.index()], edge.cost)
            .expect("copying a valid graph");
    }
    map
}

/// Transitive reduction: drop every edge `(u, v)` for which another
/// path `u ⇝ v` of length ≥ 2 exists. Costs of surviving edges are
/// unchanged. O(|V| · |E|) via per-source reachability.
pub fn transitive_reduction(g: &TaskGraph) -> TaskGraph {
    let n = g.task_count();
    // reach[u] = set of tasks reachable from u via >= 1 edge.
    // Computed in reverse topological order as bitsets.
    let words = n.div_ceil(64);
    let mut reach = vec![vec![0u64; words]; n];
    for &t in g.topological_order().iter().rev() {
        for s in g.successors(t) {
            let (w, b) = (s.index() / 64, s.index() % 64);
            reach[t.index()][w] |= 1 << b;
            // reach[t] |= reach[s]
            let (head, tail) = reach.split_at_mut(t.index().max(s.index()));
            let (dst, src) = if t.index() < s.index() {
                (&mut head[t.index()], &tail[0])
            } else {
                (&mut tail[0], &head[s.index()])
            };
            for (d, s_) in dst.iter_mut().zip(src.iter()) {
                *d |= *s_;
            }
        }
    }

    let mut out = TaskGraphBuilder::with_capacity(n, g.edge_count());
    for t in g.task_ids() {
        let node = g.task(t);
        match &node.label {
            Some(l) => out.add_labeled_task(node.weight, l.clone()),
            None => out.add_task(node.weight),
        };
    }
    for e in g.edge_ids() {
        let edge = g.edge(e);
        // Redundant iff some OTHER successor of src reaches dst.
        let redundant = g.successors(edge.src).any(|m| {
            m != edge.dst && {
                let (w, b) = (edge.dst.index() / 64, edge.dst.index() % 64);
                reach[m.index()][w] & (1 << b) != 0
            }
        });
        if !redundant {
            out.add_edge(edge.src, edge.dst, edge.cost)
                .expect("subset of a valid graph");
        }
    }
    out.build().expect("reduction preserves acyclicity")
}

/// Uniformly scale all weights by `wf` and all costs by `cf`.
pub fn scale_costs(g: &TaskGraph, wf: f64, cf: f64) -> TaskGraph {
    let mut out = TaskGraphBuilder::with_capacity(g.task_count(), g.edge_count());
    for t in g.task_ids() {
        let node = g.task(t);
        match &node.label {
            Some(l) => out.add_labeled_task(node.weight * wf, l.clone()),
            None => out.add_task(node.weight * wf),
        };
    }
    for e in g.edge_ids() {
        let edge = g.edge(e);
        out.add_edge(edge.src, edge.dst, edge.cost * cf)
            .expect("copying a valid graph");
    }
    out.build().expect("scaling preserves structure")
}

/// The reverse (mirror) graph: all edges flipped. Turns an out-tree
/// into an in-tree, a scatter phase into a gather phase.
pub fn reversed(g: &TaskGraph) -> TaskGraph {
    let mut out = TaskGraphBuilder::with_capacity(g.task_count(), g.edge_count());
    for t in g.task_ids() {
        let node = g.task(t);
        match &node.label {
            Some(l) => out.add_labeled_task(node.weight, l.clone()),
            None => out.add_task(node.weight),
        };
    }
    for e in g.edge_ids() {
        let edge = g.edge(e);
        out.add_edge(edge.dst, edge.src, edge.cost)
            .expect("reversal cannot duplicate");
    }
    out.build().expect("reversal of a DAG is a DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::structured::{chain, fork_join, out_tree};
    use crate::{analysis, critical_path};

    #[test]
    fn series_glues_exits_to_entries() {
        let a = fork_join(2, 1.0, 1.0); // 1 exit
        let b = chain(3, 1.0, 1.0); // 1 entry
        let glue_cost = 9.0;
        let g = series(&a, &b, glue_cost);
        assert_eq!(g.task_count(), 7);
        assert_eq!(g.edge_count(), a.edge_count() + b.edge_count() + 1);
        // The glue edge carries the requested cost verbatim, so a
        // bitwise comparison is exact here.
        let glue = g
            .edge_ids()
            .map(|e| g.cost(e))
            .filter(|&c| c.to_bits() == glue_cost.to_bits())
            .count();
        assert_eq!(glue, 1);
        // Depth adds up.
        assert_eq!(
            analysis::stats(&g).depth,
            analysis::stats(&a).depth + analysis::stats(&b).depth
        );
    }

    #[test]
    fn parallel_is_disjoint_union() {
        let a = chain(2, 1.0, 1.0);
        let b = chain(3, 2.0, 2.0);
        let g = parallel(&a, &b);
        assert_eq!(g.task_count(), 5);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.entry_tasks().count(), 2);
        assert_eq!(g.exit_tasks().count(), 2);
    }

    #[test]
    fn transitive_reduction_drops_shortcut_edges() {
        // a -> b -> c plus the redundant a -> c.
        let mut bld = TaskGraphBuilder::new();
        let a = bld.add_task(1.0);
        let b = bld.add_task(1.0);
        let c = bld.add_task(1.0);
        bld.add_edge(a, b, 1.0).unwrap();
        bld.add_edge(b, c, 1.0).unwrap();
        bld.add_edge(a, c, 1.0).unwrap();
        let g = bld.build().unwrap();
        let r = transitive_reduction(&g);
        assert_eq!(r.edge_count(), 2);
        // a->c gone, others intact.
        assert!(r
            .edge_ids()
            .all(|e| !(r.edge(e).src == a && r.edge(e).dst == c)));
    }

    #[test]
    fn transitive_reduction_keeps_irreducible_graphs() {
        let g = fork_join(4, 1.0, 1.0);
        let r = transitive_reduction(&g);
        assert_eq!(r.edge_count(), g.edge_count());
        let t = out_tree(2, 4, 1.0, 1.0);
        assert_eq!(transitive_reduction(&t).edge_count(), t.edge_count());
    }

    #[test]
    fn transitive_reduction_on_dense_diamond_stack() {
        // Two stacked diamonds with all shortcut edges added.
        let mut bld = TaskGraphBuilder::new();
        let ids: Vec<_> = (0..5).map(|_| bld.add_task(1.0)).collect();
        // Chain 0-1-2-3-4 plus every forward shortcut.
        for i in 0..5 {
            for j in i + 1..5 {
                bld.add_edge(ids[i], ids[j], 1.0).unwrap();
            }
        }
        let g = bld.build().unwrap();
        let r = transitive_reduction(&g);
        assert_eq!(r.edge_count(), 4, "only the chain survives");
    }

    #[test]
    fn scale_costs_scales_both_axes() {
        let g = chain(3, 2.0, 5.0);
        let s = scale_costs(&g, 10.0, 0.5);
        for t in s.task_ids() {
            assert_eq!(s.weight(t), 20.0);
        }
        for e in s.edge_ids() {
            assert_eq!(s.cost(e), 2.5);
        }
        assert_eq!(critical_path(&s), 3.0 * 20.0 + 2.0 * 2.5);
    }

    #[test]
    fn reversal_swaps_entries_and_exits() {
        let t = out_tree(2, 3, 1.0, 1.0);
        let r = reversed(&t);
        assert_eq!(r.entry_tasks().count(), t.exit_tasks().count());
        assert_eq!(r.exit_tasks().count(), t.entry_tasks().count());
        assert_eq!(r.edge_count(), t.edge_count());
        // Double reversal is the identity on structure.
        let rr = reversed(&r);
        assert_eq!(rr.entry_tasks().count(), t.entry_tasks().count());
    }

    #[test]
    fn labels_survive_transforms() {
        let g = chain(2, 1.0, 1.0);
        for t in [series(&g, &g, 1.0), parallel(&g, &g), reversed(&g)] {
            assert!(t
                .task_ids()
                .any(|i| t.task(i).label.as_deref() == Some("chain[0]")));
        }
    }
}
