//! Aggregate statistics over a task graph.
//!
//! These feed the workload layer's CCR control (§6 of the paper defines
//! CCR — communication-to-computation ratio — as the experiment's main
//! x-axis) and the experiment reports.

use crate::graph::{TaskGraph, TaskId};
use es_linksched::time;

/// Summary statistics of a task graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of tasks `|V|`.
    pub tasks: usize,
    /// Number of edges `|E|`.
    pub edges: usize,
    /// Sum of all computation costs `Σ w(n)`.
    pub total_work: f64,
    /// Sum of all communication costs `Σ c(e)`.
    pub total_comm: f64,
    /// Mean computation cost (0 for an empty sum).
    pub mean_work: f64,
    /// Mean communication cost (0 when the graph has no edges).
    pub mean_comm: f64,
    /// Number of precedence levels (longest path in hops + 1).
    pub depth: usize,
    /// Maximum number of tasks on one precedence level.
    pub width: usize,
}

/// Compute [`GraphStats`] in O(|V| + |E|).
pub fn stats(g: &TaskGraph) -> GraphStats {
    let total_work: f64 = g.task_ids().map(|t| g.weight(t)).sum();
    let total_comm: f64 = g.edge_ids().map(|e| g.cost(e)).sum();
    let levels = precedence_levels(g);
    let depth = levels.iter().map(|&l| l + 1).max().unwrap_or(0);
    let mut per_level = vec![0usize; depth];
    for &l in &levels {
        per_level[l] += 1;
    }
    GraphStats {
        tasks: g.task_count(),
        edges: g.edge_count(),
        total_work,
        total_comm,
        mean_work: if g.task_count() == 0 {
            0.0
        } else {
            total_work / g.task_count() as f64
        },
        mean_comm: if g.edge_count() == 0 {
            0.0
        } else {
            total_comm / g.edge_count() as f64
        },
        depth,
        width: per_level.into_iter().max().unwrap_or(0),
    }
}

/// Hop-level of each task: entry tasks are level 0, every other task is
/// one more than its deepest predecessor.
pub fn precedence_levels(g: &TaskGraph) -> Vec<usize> {
    let mut level = vec![0usize; g.task_count()];
    for &t in g.topological_order() {
        let mut best = 0usize;
        let mut has_pred = false;
        for p in g.predecessors(t) {
            has_pred = true;
            best = best.max(level[p.index()] + 1);
        }
        level[t.index()] = if has_pred { best } else { 0 };
    }
    level
}

/// Measured CCR of a graph under mean processor speed `mps` and mean
/// link speed `mls`:
/// `CCR = mean(c(e)/mls) / mean(w(n)/mps)`.
///
/// Returns 0 when the graph has no edges, and `f64::INFINITY` when mean
/// work is zero but communication is not.
pub fn measured_ccr(g: &TaskGraph, mps: f64, mls: f64) -> f64 {
    let s = stats(g);
    let comm_time = s.mean_comm / mls;
    let work_time = s.mean_work / mps;
    if time::approx_eq(comm_time, 0.0) {
        0.0
    } else if time::approx_eq(work_time, 0.0) {
        f64::INFINITY
    } else {
        comm_time / work_time
    }
}

/// The factor by which all edge costs must be multiplied so that
/// [`measured_ccr`] equals `target` (given the same speeds).
///
/// Returns `None` when the graph has no edges or no work (CCR is then
/// not controllable).
pub fn ccr_scale_factor(g: &TaskGraph, target: f64, mps: f64, mls: f64) -> Option<f64> {
    let current = measured_ccr(g, mps, mls);
    if time::approx_eq(current, 0.0) || !current.is_finite() {
        None
    } else {
        Some(target / current)
    }
}

/// Parallelism profile: for each precedence level, the task ids on it.
/// Useful for example programs that want to visualise the graph shape.
pub fn tasks_by_level(g: &TaskGraph) -> Vec<Vec<TaskId>> {
    let levels = precedence_levels(g);
    let depth = levels.iter().map(|&l| l + 1).max().unwrap_or(0);
    let mut out = vec![Vec::new(); depth];
    for t in g.task_ids() {
        out[levels[t.index()]].push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraphBuilder;

    fn diamond() -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let a = b.add_task(2.0);
        let l = b.add_task(3.0);
        let r = b.add_task(4.0);
        let j = b.add_task(5.0);
        b.add_edge(a, l, 10.0).unwrap();
        b.add_edge(a, r, 20.0).unwrap();
        b.add_edge(l, j, 30.0).unwrap();
        b.add_edge(r, j, 40.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn stats_hand_checked() {
        let s = stats(&diamond());
        assert_eq!(s.tasks, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.total_work, 14.0);
        assert_eq!(s.total_comm, 100.0);
        assert_eq!(s.mean_work, 3.5);
        assert_eq!(s.mean_comm, 25.0);
        assert_eq!(s.depth, 3);
        assert_eq!(s.width, 2);
    }

    #[test]
    fn precedence_levels_hand_checked() {
        assert_eq!(precedence_levels(&diamond()), vec![0, 1, 1, 2]);
    }

    #[test]
    fn measured_ccr_unit_speeds() {
        // mean comm 25, mean work 3.5 => CCR = 25/3.5.
        let c = measured_ccr(&diamond(), 1.0, 1.0);
        assert!((c - 25.0 / 3.5).abs() < 1e-12);
    }

    #[test]
    fn measured_ccr_respects_speeds() {
        // Faster links halve communication time => CCR halves.
        let c1 = measured_ccr(&diamond(), 1.0, 1.0);
        let c2 = measured_ccr(&diamond(), 1.0, 2.0);
        assert!((c1 / c2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ccr_scale_factor_round_trips() {
        let g = diamond();
        let f = ccr_scale_factor(&g, 3.0, 1.0, 1.0).unwrap();
        // Rebuild the graph with scaled costs and re-measure.
        let mut b = TaskGraphBuilder::new();
        for t in g.task_ids() {
            b.add_task(g.weight(t));
        }
        for e in g.edge_ids() {
            let edge = g.edge(e);
            b.add_edge(edge.src, edge.dst, edge.cost * f).unwrap();
        }
        let g2 = b.build().unwrap();
        assert!((measured_ccr(&g2, 1.0, 1.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ccr_uncontrollable_without_edges() {
        let mut b = TaskGraphBuilder::new();
        b.add_task(5.0);
        let g = b.build().unwrap();
        assert_eq!(measured_ccr(&g, 1.0, 1.0), 0.0);
        assert_eq!(ccr_scale_factor(&g, 2.0, 1.0, 1.0), None);
    }

    #[test]
    fn tasks_by_level_partitions_all_tasks() {
        let g = diamond();
        let by_level = tasks_by_level(&g);
        assert_eq!(by_level.len(), 3);
        let total: usize = by_level.iter().map(Vec::len).sum();
        assert_eq!(total, g.task_count());
        assert_eq!(by_level[0], vec![TaskId(0)]);
        assert_eq!(by_level[2], vec![TaskId(3)]);
    }
}
