//! Core DAG data structure.
//!
//! [`TaskGraph`] is an immutable, validated representation of the
//! application graph `G = (V, E, w, c)` from §2.1 of the paper. It is
//! constructed through [`TaskGraphBuilder`], which rejects self-loops,
//! duplicate edges, dangling endpoints, non-finite or negative costs and
//! cycles. On `build()` a topological order is computed once and cached;
//! every scheduler in the workspace iterates tasks in (a priority
//! refinement of) this order.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a task (node) inside one [`TaskGraph`].
///
/// Ids are dense indices `0..graph.task_count()`, so they can be used
/// directly to index per-task side tables (`Vec<T>`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u32);

/// Identifier of a dependence edge inside one [`TaskGraph`].
///
/// Ids are dense indices `0..graph.edge_count()`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl TaskId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A task `n ∈ V` with its computation cost `w(n)` and incident edges.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TaskNode {
    /// Computation cost `w(n)` (time units on a speed-1 processor).
    pub weight: f64,
    /// Edges `e(k, n)` entering this task, in insertion order.
    pub preds: Vec<EdgeId>,
    /// Edges `e(n, k)` leaving this task, in insertion order.
    pub succs: Vec<EdgeId>,
    /// Optional human-readable label (kernels name their tasks).
    pub label: Option<String>,
}

/// A dependence edge `e(i,j) ∈ E` with its communication cost `c(e)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TaskEdge {
    /// Source task `n_i`.
    pub src: TaskId,
    /// Destination task `n_j`.
    pub dst: TaskId,
    /// Communication cost `c(e)` (time units on a speed-1 link).
    pub cost: f64,
}

/// Errors raised while building a [`TaskGraph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint refers to a task id that was never added.
    UnknownTask(TaskId),
    /// `add_edge(src, dst)` with `src == dst`.
    SelfLoop(TaskId),
    /// A second edge between the same ordered pair of tasks.
    DuplicateEdge(TaskId, TaskId),
    /// A cost was negative, NaN or infinite.
    InvalidCost(String),
    /// The graph contains a dependence cycle through the given task.
    Cycle(TaskId),
    /// The graph has no tasks.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownTask(t) => write!(f, "unknown task {t}"),
            GraphError::SelfLoop(t) => write!(f, "self-loop on task {t}"),
            GraphError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            GraphError::InvalidCost(what) => write!(f, "invalid cost: {what}"),
            GraphError::Cycle(t) => write!(f, "dependence cycle through task {t}"),
            GraphError::Empty => write!(f, "graph has no tasks"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An immutable, validated task DAG.
///
/// Create one with [`TaskGraph::builder`]. The structure guarantees:
/// no self-loops, no duplicate edges, no cycles, all costs finite and
/// `>= 0`, and a cached topological order ([`TaskGraph::topological_order`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TaskGraph {
    tasks: Vec<TaskNode>,
    edges: Vec<TaskEdge>,
    topo: Vec<TaskId>,
}

impl TaskGraph {
    /// Start building a graph.
    pub fn builder() -> TaskGraphBuilder {
        TaskGraphBuilder::new()
    }

    /// Number of tasks `|V|`.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The task with the given id.
    #[inline]
    pub fn task(&self, id: TaskId) -> &TaskNode {
        &self.tasks[id.index()]
    }

    /// The edge with the given id.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &TaskEdge {
        &self.edges[id.index()]
    }

    /// Computation cost `w(n)`.
    #[inline]
    pub fn weight(&self, id: TaskId) -> f64 {
        self.tasks[id.index()].weight
    }

    /// Communication cost `c(e)`.
    #[inline]
    pub fn cost(&self, id: EdgeId) -> f64 {
        self.edges[id.index()].cost
    }

    /// Iterate over all task ids in insertion order.
    pub fn task_ids(&self) -> impl ExactSizeIterator<Item = TaskId> + '_ {
        (0..self.tasks.len() as u32).map(TaskId)
    }

    /// Iterate over all edge ids in insertion order.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Ids of edges entering `n` (`pred(n)` on the edge level).
    #[inline]
    pub fn in_edges(&self, n: TaskId) -> &[EdgeId] {
        &self.tasks[n.index()].preds
    }

    /// Ids of edges leaving `n` (`succ(n)` on the edge level).
    #[inline]
    pub fn out_edges(&self, n: TaskId) -> &[EdgeId] {
        &self.tasks[n.index()].succs
    }

    /// Predecessor tasks `pred(n)`.
    pub fn predecessors(&self, n: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.in_edges(n)
            .iter()
            .map(move |&e| self.edges[e.index()].src)
    }

    /// Successor tasks `succ(n)`.
    pub fn successors(&self, n: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.out_edges(n)
            .iter()
            .map(move |&e| self.edges[e.index()].dst)
    }

    /// Tasks without predecessors (graph sources).
    pub fn entry_tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.task_ids().filter(|&t| self.in_edges(t).is_empty())
    }

    /// Tasks without successors (graph sinks).
    pub fn exit_tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.task_ids().filter(|&t| self.out_edges(t).is_empty())
    }

    /// A topological order of the tasks, computed once at build time.
    ///
    /// Kahn's algorithm with a FIFO frontier; ties resolve to insertion
    /// order, so the order is deterministic for a given builder script.
    #[inline]
    pub fn topological_order(&self) -> &[TaskId] {
        &self.topo
    }
}

/// Incremental builder for [`TaskGraph`]; see the crate docs for the
/// invariants enforced at [`TaskGraphBuilder::build`] time.
#[derive(Clone, Debug, Default)]
pub struct TaskGraphBuilder {
    tasks: Vec<TaskNode>,
    edges: Vec<TaskEdge>,
}

impl TaskGraphBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-allocate for `tasks` tasks and `edges` edges.
    pub fn with_capacity(tasks: usize, edges: usize) -> Self {
        Self {
            tasks: Vec::with_capacity(tasks),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Number of tasks added so far.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Add a task with computation cost `weight`; returns its id.
    pub fn add_task(&mut self, weight: f64) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(TaskNode {
            weight,
            preds: Vec::new(),
            succs: Vec::new(),
            label: None,
        });
        id
    }

    /// Add a labelled task (used by the structured kernels).
    pub fn add_labeled_task(&mut self, weight: f64, label: impl Into<String>) -> TaskId {
        let id = self.add_task(weight);
        self.tasks[id.index()].label = Some(label.into());
        id
    }

    /// Add a dependence edge `src -> dst` with communication cost `cost`.
    ///
    /// Endpoint validity, self-loops and duplicates are checked here so
    /// that the error points at the offending call site.
    pub fn add_edge(&mut self, src: TaskId, dst: TaskId, cost: f64) -> Result<EdgeId, GraphError> {
        if src.index() >= self.tasks.len() {
            return Err(GraphError::UnknownTask(src));
        }
        if dst.index() >= self.tasks.len() {
            return Err(GraphError::UnknownTask(dst));
        }
        if src == dst {
            return Err(GraphError::SelfLoop(src));
        }
        if self.tasks[src.index()]
            .succs
            .iter()
            .any(|&e| self.edges[e.index()].dst == dst)
        {
            return Err(GraphError::DuplicateEdge(src, dst));
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(TaskEdge { src, dst, cost });
        self.tasks[src.index()].succs.push(id);
        self.tasks[dst.index()].preds.push(id);
        Ok(id)
    }

    /// Overwrite the communication cost of an already-added edge.
    ///
    /// The workload layer uses this to rescale costs for a target CCR
    /// without rebuilding the whole structure.
    pub fn set_edge_cost(&mut self, e: EdgeId, cost: f64) {
        self.edges[e.index()].cost = cost;
    }

    /// Validate and freeze the graph.
    pub fn build(self) -> Result<TaskGraph, GraphError> {
        if self.tasks.is_empty() {
            return Err(GraphError::Empty);
        }
        for (i, t) in self.tasks.iter().enumerate() {
            if !t.weight.is_finite() || t.weight < 0.0 {
                return Err(GraphError::InvalidCost(format!("w(n{i}) = {}", t.weight)));
            }
        }
        for (i, e) in self.edges.iter().enumerate() {
            if !e.cost.is_finite() || e.cost < 0.0 {
                return Err(GraphError::InvalidCost(format!("c(e{i}) = {}", e.cost)));
            }
        }
        let topo = kahn_topological_order(&self.tasks, &self.edges)?;
        Ok(TaskGraph {
            tasks: self.tasks,
            edges: self.edges,
            topo,
        })
    }
}

/// Kahn's algorithm; FIFO frontier keyed by insertion order for
/// determinism. Returns `GraphError::Cycle` naming a task on a cycle.
fn kahn_topological_order(
    tasks: &[TaskNode],
    edges: &[TaskEdge],
) -> Result<Vec<TaskId>, GraphError> {
    let n = tasks.len();
    let mut indegree: Vec<u32> = tasks.iter().map(|t| t.preds.len() as u32).collect();
    let mut queue: std::collections::VecDeque<TaskId> = (0..n as u32)
        .map(TaskId)
        .filter(|t| indegree[t.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(t) = queue.pop_front() {
        order.push(t);
        for &e in &tasks[t.index()].succs {
            let d = edges[e.index()].dst;
            indegree[d.index()] -= 1;
            if indegree[d.index()] == 0 {
                queue.push_back(d);
            }
        }
    }
    if order.len() != n {
        // Some task still has positive indegree: it lies on a cycle.
        let on_cycle = (0..n as u32)
            .map(TaskId)
            .find(|t| indegree[t.index()] > 0)
            .expect("incomplete topological order implies a remaining task");
        return Err(GraphError::Cycle(on_cycle));
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TaskGraph {
        // n0 -> n1, n0 -> n2, n1 -> n3, n2 -> n3
        let mut b = TaskGraph::builder();
        let a = b.add_task(2.0);
        let l = b.add_task(3.0);
        let r = b.add_task(4.0);
        let j = b.add_task(5.0);
        b.add_edge(a, l, 10.0).unwrap();
        b.add_edge(a, r, 20.0).unwrap();
        b.add_edge(l, j, 30.0).unwrap();
        b.add_edge(r, j, 40.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_and_counts() {
        let g = diamond();
        assert_eq!(g.task_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.weight(TaskId(3)), 5.0);
        assert_eq!(g.cost(EdgeId(3)), 40.0);
    }

    #[test]
    fn adjacency_is_consistent() {
        let g = diamond();
        let n0 = TaskId(0);
        let n3 = TaskId(3);
        assert_eq!(g.in_edges(n0), &[] as &[EdgeId]);
        assert_eq!(g.out_edges(n0).len(), 2);
        assert_eq!(g.in_edges(n3).len(), 2);
        assert_eq!(g.out_edges(n3), &[] as &[EdgeId]);
        let preds: Vec<_> = g.predecessors(n3).collect();
        assert_eq!(preds, vec![TaskId(1), TaskId(2)]);
        let succs: Vec<_> = g.successors(n0).collect();
        assert_eq!(succs, vec![TaskId(1), TaskId(2)]);
    }

    #[test]
    fn entry_and_exit_tasks() {
        let g = diamond();
        assert_eq!(g.entry_tasks().collect::<Vec<_>>(), vec![TaskId(0)]);
        assert_eq!(g.exit_tasks().collect::<Vec<_>>(), vec![TaskId(3)]);
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = diamond();
        let topo = g.topological_order();
        let pos: Vec<usize> = (0..4)
            .map(|i| topo.iter().position(|&t| t == TaskId(i)).unwrap())
            .collect();
        for e in g.edge_ids() {
            let edge = g.edge(e);
            assert!(pos[edge.src.index()] < pos[edge.dst.index()]);
        }
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = TaskGraph::builder();
        let a = b.add_task(1.0);
        assert_eq!(b.add_edge(a, a, 1.0), Err(GraphError::SelfLoop(a)));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut b = TaskGraph::builder();
        let a = b.add_task(1.0);
        let c = b.add_task(1.0);
        b.add_edge(a, c, 1.0).unwrap();
        assert_eq!(b.add_edge(a, c, 2.0), Err(GraphError::DuplicateEdge(a, c)));
    }

    #[test]
    fn rejects_unknown_endpoint() {
        let mut b = TaskGraph::builder();
        let a = b.add_task(1.0);
        let ghost = TaskId(99);
        assert_eq!(
            b.add_edge(a, ghost, 1.0),
            Err(GraphError::UnknownTask(ghost))
        );
    }

    #[test]
    fn rejects_cycle() {
        let mut b = TaskGraph::builder();
        let a = b.add_task(1.0);
        let c = b.add_task(1.0);
        let d = b.add_task(1.0);
        b.add_edge(a, c, 1.0).unwrap();
        b.add_edge(c, d, 1.0).unwrap();
        b.add_edge(d, a, 1.0).unwrap();
        assert!(matches!(b.build(), Err(GraphError::Cycle(_))));
    }

    #[test]
    fn rejects_bad_costs() {
        let mut b = TaskGraph::builder();
        b.add_task(f64::NAN);
        assert!(matches!(b.build(), Err(GraphError::InvalidCost(_))));

        let mut b = TaskGraph::builder();
        let a = b.add_task(1.0);
        let c = b.add_task(1.0);
        b.add_edge(a, c, -3.0).unwrap();
        assert!(matches!(b.build(), Err(GraphError::InvalidCost(_))));
    }

    #[test]
    fn rejects_empty_graph() {
        assert!(matches!(
            TaskGraph::builder().build(),
            Err(GraphError::Empty)
        ));
    }

    #[test]
    fn single_task_graph_is_fine() {
        let mut b = TaskGraph::builder();
        b.add_task(7.0);
        let g = b.build().unwrap();
        assert_eq!(g.topological_order(), &[TaskId(0)]);
    }

    #[test]
    fn set_edge_cost_overwrites() {
        let mut b = TaskGraph::builder();
        let a = b.add_task(1.0);
        let c = b.add_task(1.0);
        let e = b.add_edge(a, c, 1.0).unwrap();
        b.set_edge_cost(e, 42.0);
        let g = b.build().unwrap();
        assert_eq!(g.cost(e), 42.0);
    }

    #[test]
    fn labels_survive_build() {
        let mut b = TaskGraph::builder();
        let a = b.add_labeled_task(1.0, "source");
        let g = b.build().unwrap();
        assert_eq!(g.task(a).label.as_deref(), Some("source"));
    }
}
