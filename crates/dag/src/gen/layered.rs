//! Random layered DAGs — the paper's experimental workload.
//!
//! §6 of the paper constructs task graphs "subject to literature \[3\]"
//! (Bajaj & Agrawal, TPDS 2004): tasks are partitioned into precedence
//! layers; each task draws its predecessors uniformly from nearby
//! earlier layers. Computation and communication costs are uniform
//! integers (`U(1, 1000)` in the paper; configurable here, with CCR
//! rescaling applied by the workload layer).

use crate::graph::{TaskGraph, TaskGraphBuilder};
use rand::Rng;

/// Parameters of the layered random DAG generator.
///
/// The defaults mirror the paper's experiments: costs `U(1,1000)` and a
/// shape whose width grows with the task count.
#[derive(Clone, Debug, PartialEq)]
pub struct LayeredDagConfig {
    /// Total number of tasks (the paper draws `U(40, 1000)`).
    pub tasks: usize,
    /// Mean number of tasks per layer; actual layer sizes are drawn
    /// `U(1, 2*mean_width-1)` so the expected value matches.
    pub mean_width: usize,
    /// Probability of an edge between a task and a candidate predecessor
    /// in the previous layer (beyond the one guaranteed parent).
    pub edge_density: f64,
    /// How many layers back a predecessor may come from (≥ 1).
    pub max_jump: usize,
    /// Computation costs are drawn as integers in `[min, max]`.
    pub weight_range: (u64, u64),
    /// Communication costs are drawn as integers in `[min, max]`.
    pub cost_range: (u64, u64),
}

impl Default for LayeredDagConfig {
    fn default() -> Self {
        Self {
            tasks: 100,
            mean_width: 8,
            edge_density: 0.3,
            max_jump: 2,
            weight_range: (1, 1000),
            cost_range: (1, 1000),
        }
    }
}

/// Generate a random layered DAG.
///
/// Guarantees:
/// * exactly `cfg.tasks` tasks;
/// * every non-entry-layer task has at least one predecessor (no
///   stranded islands past layer 0), so the graph is "layered connected"
///   the way the TPDS'04 generator describes;
/// * deterministic output for a fixed `rng` state.
///
/// # Panics
/// Panics if `cfg.tasks == 0`, `cfg.mean_width == 0`, `cfg.max_jump == 0`,
/// an empty cost range, or `edge_density` outside `[0, 1]`.
pub fn random_layered<R: Rng + ?Sized>(cfg: &LayeredDagConfig, rng: &mut R) -> TaskGraph {
    assert!(cfg.tasks > 0, "need at least one task");
    assert!(cfg.mean_width > 0, "mean_width must be positive");
    assert!(cfg.max_jump > 0, "max_jump must be at least 1");
    assert!(
        (0.0..=1.0).contains(&cfg.edge_density),
        "edge_density must lie in [0, 1]"
    );
    assert!(
        cfg.weight_range.0 <= cfg.weight_range.1,
        "empty weight range"
    );
    assert!(cfg.cost_range.0 <= cfg.cost_range.1, "empty cost range");

    // Partition tasks into layers.
    let mut layer_sizes: Vec<usize> = Vec::new();
    let mut remaining = cfg.tasks;
    while remaining > 0 {
        let hi = (2 * cfg.mean_width).saturating_sub(1).max(1);
        let size = rng.random_range(1..=hi).min(remaining);
        layer_sizes.push(size);
        remaining -= size;
    }

    let mut b = TaskGraphBuilder::with_capacity(cfg.tasks, cfg.tasks * 2);
    let mut layers: Vec<Vec<crate::graph::TaskId>> = Vec::with_capacity(layer_sizes.len());
    for &size in &layer_sizes {
        let mut layer = Vec::with_capacity(size);
        for _ in 0..size {
            let w = rng.random_range(cfg.weight_range.0..=cfg.weight_range.1) as f64;
            layer.push(b.add_task(w));
        }
        layers.push(layer);
    }

    // Wire edges: each non-first-layer task gets one guaranteed parent
    // from the previous layer, plus density-driven extras from up to
    // `max_jump` layers back.
    for li in 1..layers.len() {
        for &t in &layers[li].clone() {
            let prev = &layers[li - 1];
            let parent = prev[rng.random_range(0..prev.len())];
            let c = rng.random_range(cfg.cost_range.0..=cfg.cost_range.1) as f64;
            b.add_edge(parent, t, c)
                .expect("generator wires valid edges");

            let lo_layer = li.saturating_sub(cfg.max_jump);
            for lj in lo_layer..li {
                for &cand in &layers[lj] {
                    if cand == parent {
                        continue;
                    }
                    if rng.random_bool(cfg.edge_density) {
                        let c = rng.random_range(cfg.cost_range.0..=cfg.cost_range.1) as f64;
                        // Duplicate edges can only happen via `parent`,
                        // which we skipped, so this cannot fail.
                        b.add_edge(cand, t, c).expect("no duplicate candidates");
                    }
                }
            }
        }
    }

    b.build()
        .expect("layered construction is acyclic by layering")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(tasks: usize) -> LayeredDagConfig {
        LayeredDagConfig {
            tasks,
            ..LayeredDagConfig::default()
        }
    }

    #[test]
    fn generates_requested_task_count() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1, 2, 7, 40, 250] {
            let g = random_layered(&cfg(n), &mut rng);
            assert_eq!(g.task_count(), n);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g1 = random_layered(&cfg(120), &mut StdRng::seed_from_u64(42));
        let g2 = random_layered(&cfg(120), &mut StdRng::seed_from_u64(42));
        assert_eq!(g1.task_count(), g2.task_count());
        assert_eq!(g1.edge_count(), g2.edge_count());
        for e in g1.edge_ids() {
            assert_eq!(g1.edge(e).src, g2.edge(e).src);
            assert_eq!(g1.edge(e).dst, g2.edge(e).dst);
            assert_eq!(g1.edge(e).cost, g2.edge(e).cost);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = random_layered(&cfg(120), &mut StdRng::seed_from_u64(1));
        let g2 = random_layered(&cfg(120), &mut StdRng::seed_from_u64(2));
        // Extremely unlikely to coincide in both edge count and costs.
        let same = g1.edge_count() == g2.edge_count()
            && g1.edge_ids().all(|e| g1.edge(e).cost == g2.edge(e).cost);
        assert!(!same);
    }

    #[test]
    fn costs_respect_configured_ranges() {
        let mut c = cfg(200);
        c.weight_range = (5, 9);
        c.cost_range = (100, 200);
        let g = random_layered(&c, &mut StdRng::seed_from_u64(3));
        for t in g.task_ids() {
            let w = g.weight(t);
            assert!((5.0..=9.0).contains(&w), "w = {w}");
        }
        for e in g.edge_ids() {
            let cc = g.cost(e);
            assert!((100.0..=200.0).contains(&cc), "c = {cc}");
        }
    }

    #[test]
    fn every_non_entry_layer_task_has_a_predecessor() {
        let g = random_layered(&cfg(300), &mut StdRng::seed_from_u64(4));
        let levels = analysis::precedence_levels(&g);
        for t in g.task_ids() {
            if levels[t.index()] > 0 {
                assert!(!g.in_edges(t).is_empty());
            }
        }
    }

    #[test]
    fn zero_density_yields_tree_like_graph() {
        let mut c = cfg(150);
        c.edge_density = 0.0;
        let g = random_layered(&c, &mut StdRng::seed_from_u64(5));
        // Exactly one in-edge per non-entry task, none for layer 0.
        let entry_count = g.entry_tasks().count();
        assert_eq!(g.edge_count(), g.task_count() - entry_count);
    }

    #[test]
    fn high_density_produces_more_edges_than_low() {
        let mut lo = cfg(150);
        lo.edge_density = 0.05;
        let mut hi = cfg(150);
        hi.edge_density = 0.9;
        let glo = random_layered(&lo, &mut StdRng::seed_from_u64(6));
        let ghi = random_layered(&hi, &mut StdRng::seed_from_u64(6));
        assert!(ghi.edge_count() > glo.edge_count());
    }

    #[test]
    fn single_task_config_is_trivial_graph() {
        let g = random_layered(&cfg(1), &mut StdRng::seed_from_u64(7));
        assert_eq!(g.task_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }
}
