//! Task-graph generators.
//!
//! Two families:
//!
//! * [`layered`] — the paper's experimental workload (§6): random
//!   layered DAGs in the style of Bajaj & Agrawal, *"Improving
//!   Scheduling of Tasks in a Heterogeneous Environment"* (TPDS 2004),
//!   with uniform integer costs;
//! * [`structured`] — deterministic kernels (Gaussian elimination, FFT
//!   butterflies, fork–join, 1-D stencil wavefronts, chains, diamonds)
//!   used by examples and ablation benches, mirroring the classic
//!   scheduling-literature benchmark suites.
//!
//! All generators are deterministic given a seed; the paper's parameter
//! draws live one level up in `es-workload`.

pub mod layered;
pub mod structured;

pub use layered::{random_layered, LayeredDagConfig};
pub use structured::{
    chain, cholesky, diamond_mesh, fft_graph, fork_join, gauss_elim, in_tree, out_tree, stencil_1d,
};
