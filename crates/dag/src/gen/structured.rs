//! Deterministic structured kernels.
//!
//! The scheduling literature (including the baselines the paper builds
//! on) habitually evaluates on a handful of regular task graphs. These
//! generators produce them with parameterised uniform costs; they back
//! the workspace's examples and the ablation benches, and make handy
//! fixtures for tests because their critical paths are easy to reason
//! about.

use crate::graph::{TaskGraph, TaskGraphBuilder, TaskId};

/// A linear chain `n_0 -> n_1 -> … -> n_{len-1}`.
///
/// # Panics
/// Panics if `len == 0`.
pub fn chain(len: usize, weight: f64, cost: f64) -> TaskGraph {
    assert!(len > 0, "chain needs at least one task");
    let mut b = TaskGraphBuilder::with_capacity(len, len.saturating_sub(1));
    let mut prev: Option<TaskId> = None;
    for i in 0..len {
        let t = b.add_labeled_task(weight, format!("chain[{i}]"));
        if let Some(p) = prev {
            b.add_edge(p, t, cost).expect("chain edges are unique");
        }
        prev = Some(t);
    }
    b.build().expect("chain is acyclic")
}

/// Fork–join: one source fans out to `width` independent workers which
/// all join into one sink. `2 + width` tasks.
///
/// # Panics
/// Panics if `width == 0`.
pub fn fork_join(width: usize, weight: f64, cost: f64) -> TaskGraph {
    assert!(width > 0, "fork_join needs at least one branch");
    let mut b = TaskGraphBuilder::with_capacity(width + 2, 2 * width);
    let src = b.add_labeled_task(weight, "fork");
    let workers: Vec<TaskId> = (0..width)
        .map(|i| b.add_labeled_task(weight, format!("worker[{i}]")))
        .collect();
    let sink = b.add_labeled_task(weight, "join");
    for &w in &workers {
        b.add_edge(src, w, cost).expect("fork edges unique");
        b.add_edge(w, sink, cost).expect("join edges unique");
    }
    b.build().expect("fork-join is acyclic")
}

/// Gaussian-elimination task graph for an `n × n` matrix: the classic
/// `T_k^{pivot} -> T_{k,j}^{update}` structure with
/// `n-1` pivot columns. Task count is `(n-1) + (n-1)n/2` … concretely,
/// pivot `k` (0-based) feeds updates `(k, j)` for `j in k+1..n`, and
/// update `(k, j)` feeds pivot `k+1` when `j == k+1` and update
/// `(k+1, j)` otherwise.
///
/// # Panics
/// Panics if `n < 2`.
pub fn gauss_elim(n: usize, weight: f64, cost: f64) -> TaskGraph {
    assert!(n >= 2, "gauss_elim needs a matrix of at least 2x2");
    let mut b = TaskGraphBuilder::new();
    // pivots[k] eliminates column k; updates[(k, j)] applies it to col j.
    let mut pivots: Vec<TaskId> = Vec::with_capacity(n - 1);
    let mut updates: std::collections::HashMap<(usize, usize), TaskId> =
        std::collections::HashMap::new();
    for k in 0..n - 1 {
        pivots.push(b.add_labeled_task(weight, format!("pivot[{k}]")));
        for j in k + 1..n {
            let u = b.add_labeled_task(weight, format!("update[{k},{j}]"));
            updates.insert((k, j), u);
        }
    }
    for k in 0..n - 1 {
        for j in k + 1..n {
            let u = updates[&(k, j)];
            b.add_edge(pivots[k], u, cost)
                .expect("pivot->update unique");
            if k + 1 < n - 1 || (k + 1 == n - 1 && j > k + 1) {
                // Feed the next stage.
                if j == k + 1 {
                    if k + 1 < n - 1 {
                        b.add_edge(u, pivots[k + 1], cost)
                            .expect("update->pivot unique");
                    }
                } else if let Some(&next) = updates.get(&(k + 1, j)) {
                    b.add_edge(u, next, cost).expect("update->update unique");
                }
            }
        }
    }
    b.build().expect("gaussian elimination is acyclic")
}

/// FFT butterfly graph on `points` inputs (`points` must be a power of
/// two): `log2(points) + 1` ranks of `points` tasks, each task feeding
/// its same-index and butterfly-partner tasks in the next rank.
///
/// # Panics
/// Panics if `points` is not a power of two or is < 2.
pub fn fft_graph(points: usize, weight: f64, cost: f64) -> TaskGraph {
    assert!(
        points >= 2 && points.is_power_of_two(),
        "points must be a power of two >= 2"
    );
    let ranks = points.trailing_zeros() as usize + 1;
    let mut b = TaskGraphBuilder::with_capacity(ranks * points, 2 * (ranks - 1) * points);
    let mut grid: Vec<Vec<TaskId>> = Vec::with_capacity(ranks);
    for r in 0..ranks {
        grid.push(
            (0..points)
                .map(|i| b.add_labeled_task(weight, format!("fft[{r},{i}]")))
                .collect(),
        );
    }
    for r in 0..ranks - 1 {
        // Butterfly span halves each rank: points/2, points/4, ...
        let span = points >> (r + 1);
        for i in 0..points {
            let partner = i ^ span;
            b.add_edge(grid[r][i], grid[r + 1][i], cost)
                .expect("straight edges unique");
            b.add_edge(grid[r][i], grid[r + 1][partner], cost)
                .expect("butterfly edges unique");
        }
    }
    b.build().expect("fft graph is acyclic")
}

/// 1-D stencil wavefront: `steps` time steps over `cells` cells; the
/// task for `(s, c)` depends on `(s-1, c-1..=c+1)` clamped at borders.
///
/// # Panics
/// Panics if `steps == 0` or `cells == 0`.
pub fn stencil_1d(steps: usize, cells: usize, weight: f64, cost: f64) -> TaskGraph {
    assert!(steps > 0 && cells > 0, "stencil needs positive dimensions");
    let mut b = TaskGraphBuilder::with_capacity(steps * cells, steps * cells * 3);
    let mut grid: Vec<Vec<TaskId>> = Vec::with_capacity(steps);
    for s in 0..steps {
        grid.push(
            (0..cells)
                .map(|c| b.add_labeled_task(weight, format!("st[{s},{c}]")))
                .collect(),
        );
    }
    for s in 1..steps {
        for c in 0..cells {
            let lo = c.saturating_sub(1);
            let hi = (c + 1).min(cells - 1);
            for p in lo..=hi {
                b.add_edge(grid[s - 1][p], grid[s][c], cost)
                    .expect("stencil edges unique");
            }
        }
    }
    b.build().expect("stencil is acyclic")
}

/// Diamond mesh of side `side`: tasks at positions `(i, j)` with
/// `i + j < side` on the expanding half and the mirror on the shrinking
/// half; equivalently the classic "diamond DAG" with maximal width
/// `side`. Every task feeds its right and down neighbours.
///
/// # Panics
/// Panics if `side == 0`.
pub fn diamond_mesh(side: usize, weight: f64, cost: f64) -> TaskGraph {
    assert!(side > 0, "diamond_mesh needs a positive side");
    let mut b = TaskGraphBuilder::with_capacity(side * side, 2 * side * side);
    let mut grid = vec![vec![None::<TaskId>; side]; side];
    for i in 0..side {
        for j in 0..side {
            grid[i][j] = Some(b.add_labeled_task(weight, format!("d[{i},{j}]")));
        }
    }
    for i in 0..side {
        for j in 0..side {
            let t = grid[i][j].unwrap();
            if i + 1 < side {
                b.add_edge(t, grid[i + 1][j].unwrap(), cost)
                    .expect("down edges unique");
            }
            if j + 1 < side {
                b.add_edge(t, grid[i][j + 1].unwrap(), cost)
                    .expect("right edges unique");
            }
        }
    }
    b.build().expect("diamond mesh is acyclic")
}

/// Out-tree (fork tree): a complete `arity`-ary tree of `depth` levels
/// rooted at a single source; every node feeds its children. Classic
/// divide phase of divide-and-conquer.
///
/// # Panics
/// Panics if `arity == 0` or `depth == 0`.
pub fn out_tree(arity: usize, depth: usize, weight: f64, cost: f64) -> TaskGraph {
    assert!(
        arity > 0 && depth > 0,
        "out_tree needs positive arity and depth"
    );
    let mut b = TaskGraphBuilder::new();
    let root = b.add_labeled_task(weight, "root");
    let mut frontier = vec![root];
    for d in 1..depth {
        let mut next = Vec::with_capacity(frontier.len() * arity);
        for (pi, &parent) in frontier.iter().enumerate() {
            for k in 0..arity {
                let t = b.add_labeled_task(weight, format!("t[{d},{pi},{k}]"));
                b.add_edge(parent, t, cost).expect("tree edges unique");
                next.push(t);
            }
        }
        frontier = next;
    }
    b.build().expect("trees are acyclic")
}

/// In-tree (join tree): the mirror of [`out_tree`] — leaves reduce
/// level by level into a single sink. Classic conquer phase.
///
/// # Panics
/// Panics if `arity == 0` or `depth == 0`.
pub fn in_tree(arity: usize, depth: usize, weight: f64, cost: f64) -> TaskGraph {
    assert!(
        arity > 0 && depth > 0,
        "in_tree needs positive arity and depth"
    );
    let mut b = TaskGraphBuilder::new();
    // Build leaves-first: level d has arity^(depth-1-d) nodes.
    let mut frontier: Vec<TaskId> = (0..arity.pow((depth - 1) as u32))
        .map(|i| b.add_labeled_task(weight, format!("leaf[{i}]")))
        .collect();
    let mut level = 0usize;
    while frontier.len() > 1 {
        level += 1;
        let mut next = Vec::with_capacity(frontier.len() / arity);
        for (gi, group) in frontier.chunks(arity).enumerate() {
            let t = b.add_labeled_task(weight, format!("join[{level},{gi}]"));
            for &child in group {
                b.add_edge(child, t, cost).expect("tree edges unique");
            }
            next.push(t);
        }
        frontier = next;
    }
    b.build().expect("trees are acyclic")
}

/// Cholesky factorisation task graph for an `n × n` tiled matrix:
/// POTRF/TRSM/SYRK-style dependencies on the lower triangle. Task
/// count is `Σ_{k<n} (1 + (n-1-k) + (n-k)(n-1-k)/2)`.
///
/// # Panics
/// Panics if `n < 2`.
pub fn cholesky(n: usize, weight: f64, cost: f64) -> TaskGraph {
    assert!(n >= 2, "cholesky needs at least a 2x2 tile grid");
    let mut b = TaskGraphBuilder::new();
    let mut potrf = std::collections::HashMap::new(); // k -> id
    let mut trsm = std::collections::HashMap::new(); // (k, i) i>k
    let mut upd = std::collections::HashMap::new(); // (k, i, j) j<=i, both >k
    for k in 0..n {
        potrf.insert(k, b.add_labeled_task(weight, format!("potrf[{k}]")));
        for i in k + 1..n {
            trsm.insert((k, i), b.add_labeled_task(weight, format!("trsm[{k},{i}]")));
        }
        for i in k + 1..n {
            for j in k + 1..=i {
                upd.insert(
                    (k, i, j),
                    b.add_labeled_task(weight, format!("upd[{k},{i},{j}]")),
                );
            }
        }
    }
    for k in 0..n {
        for i in k + 1..n {
            b.add_edge(potrf[&k], trsm[&(k, i)], cost).expect("unique");
            // trsm feeds the updates in its row/column of panel k.
            for j in k + 1..=i {
                b.add_edge(trsm[&(k, i)], upd[&(k, i, j)], cost)
                    .expect("unique");
                if j != i {
                    b.add_edge(trsm[&(k, j)], upd[&(k, i, j)], cost)
                        .expect("unique");
                }
            }
        }
        // Updates of panel k feed panel k+1's factorisation/solves.
        if k + 1 < n {
            b.add_edge(upd[&(k, k + 1, k + 1)], potrf[&(k + 1)], cost)
                .expect("unique");
            for i in k + 2..n {
                b.add_edge(upd[&(k, i, k + 1)], trsm[&(k + 1, i)], cost)
                    .expect("unique");
            }
            for i in k + 2..n {
                for j in k + 2..=i {
                    b.add_edge(upd[&(k, i, j)], upd[&(k + 1, i, j)], cost)
                        .expect("unique");
                }
            }
        }
    }
    b.build().expect("cholesky is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::levels;

    #[test]
    fn chain_counts_and_cp() {
        let g = chain(5, 2.0, 3.0);
        assert_eq!(g.task_count(), 5);
        assert_eq!(g.edge_count(), 4);
        // cp = 5 tasks * 2 + 4 comms * 3 = 22.
        assert_eq!(levels::critical_path(&g), 22.0);
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join(4, 1.0, 1.0);
        assert_eq!(g.task_count(), 6);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.entry_tasks().count(), 1);
        assert_eq!(g.exit_tasks().count(), 1);
        // cp = fork + worker + join with two comm hops = 3 + 2 = 5.
        assert_eq!(levels::critical_path(&g), 5.0);
    }

    #[test]
    fn gauss_elim_task_count() {
        // n=4: pivots 3 + updates (3+2+1)=6 => 9 tasks.
        let g = gauss_elim(4, 1.0, 1.0);
        assert_eq!(g.task_count(), 9);
        // Single entry (pivot 0), single exit (update[2,3]).
        assert_eq!(g.entry_tasks().count(), 1);
        assert_eq!(g.exit_tasks().count(), 1);
    }

    #[test]
    fn gauss_elim_depth_grows_linearly() {
        let g3 = gauss_elim(3, 1.0, 1.0);
        let g6 = gauss_elim(6, 1.0, 1.0);
        let d3 = analysis::stats(&g3).depth;
        let d6 = analysis::stats(&g6).depth;
        assert!(d6 > d3);
    }

    #[test]
    fn fft_shape() {
        let g = fft_graph(8, 1.0, 1.0);
        // 4 ranks of 8 tasks.
        assert_eq!(g.task_count(), 32);
        // 2 out-edges per task in non-final ranks: 3 * 8 * 2 = 48.
        assert_eq!(g.edge_count(), 48);
        assert_eq!(analysis::stats(&g).depth, 4);
        assert_eq!(analysis::stats(&g).width, 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        fft_graph(6, 1.0, 1.0);
    }

    #[test]
    fn stencil_shape() {
        let g = stencil_1d(3, 4, 1.0, 1.0);
        assert_eq!(g.task_count(), 12);
        // Interior cells have 3 preds, border cells 2: per step
        // 2*2 + 2*3 = 10 edges; 2 steps with preds => 20.
        assert_eq!(g.edge_count(), 20);
        assert_eq!(analysis::stats(&g).depth, 3);
    }

    #[test]
    fn diamond_mesh_shape() {
        let g = diamond_mesh(3, 1.0, 1.0);
        assert_eq!(g.task_count(), 9);
        // 2*3*2 = 12 edges (right + down on a 3x3 grid).
        assert_eq!(g.edge_count(), 12);
        // Longest path: 5 tasks (corner to corner) + 4 comms.
        assert_eq!(levels::critical_path(&g), 9.0);
    }

    #[test]
    fn out_tree_shape() {
        let g = out_tree(2, 4, 1.0, 1.0);
        // 1 + 2 + 4 + 8 = 15 nodes, 14 edges.
        assert_eq!(g.task_count(), 15);
        assert_eq!(g.edge_count(), 14);
        assert_eq!(g.entry_tasks().count(), 1);
        assert_eq!(g.exit_tasks().count(), 8);
        assert_eq!(analysis::stats(&g).depth, 4);
    }

    #[test]
    fn in_tree_shape() {
        let g = in_tree(3, 3, 1.0, 1.0);
        // 9 leaves + 3 joins + 1 root = 13 nodes, 12 edges.
        assert_eq!(g.task_count(), 13);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.entry_tasks().count(), 9);
        assert_eq!(g.exit_tasks().count(), 1);
    }

    #[test]
    fn in_and_out_trees_mirror_counts() {
        let o = out_tree(2, 5, 1.0, 1.0);
        let i = in_tree(2, 5, 1.0, 1.0);
        assert_eq!(o.task_count(), i.task_count());
        assert_eq!(o.edge_count(), i.edge_count());
    }

    #[test]
    fn cholesky_shape() {
        let g = cholesky(3, 1.0, 1.0);
        // k=0: 1 potrf + 2 trsm + 3 upd; k=1: 1 + 1 + 1; k=2: 1.
        assert_eq!(g.task_count(), 10);
        assert_eq!(g.entry_tasks().count(), 1, "potrf[0] is the sole source");
        assert_eq!(g.exit_tasks().count(), 1, "potrf[n-1] is the sole sink");
        // Depth grows with n.
        let g5 = cholesky(5, 1.0, 1.0);
        assert!(analysis::stats(&g5).depth > analysis::stats(&g).depth);
    }

    #[test]
    fn structured_graphs_have_positive_costs() {
        for g in [
            chain(3, 1.5, 2.5),
            fork_join(3, 1.5, 2.5),
            gauss_elim(3, 1.5, 2.5),
            fft_graph(4, 1.5, 2.5),
            stencil_1d(2, 2, 1.5, 2.5),
            diamond_mesh(2, 1.5, 2.5),
        ] {
            for t in g.task_ids() {
                assert_eq!(g.weight(t), 1.5);
            }
            for e in g.edge_ids() {
                assert_eq!(g.cost(e), 2.5);
            }
        }
    }
}
