//! Property-based tests of the routing searches.

use es_linksched::slot::SlotQueue;
use es_linksched::CommId;
use es_net::gen::{self, WanConfig};
use es_net::Topology;
use es_route::{bfs_route, dijkstra_min_hops, dijkstra_route};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn wan(seed: u64, procs: usize) -> Topology {
    gen::random_switched_wan(
        &WanConfig::heterogeneous(procs),
        &mut StdRng::seed_from_u64(seed),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bfs_routes_are_valid_chains(seed in any::<u64>(), procs in 2usize..40) {
        let t = wan(seed, procs);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        for _ in 0..6 {
            let a = es_net::ProcId(rng.random_range(0..procs as u32));
            let b = es_net::ProcId(rng.random_range(0..procs as u32));
            let (na, nb) = (t.node_of_proc(a), t.node_of_proc(b));
            let route = bfs_route(&t, na, nb).expect("WANs are connected");
            if a == b {
                prop_assert!(route.is_empty());
                continue;
            }
            prop_assert_eq!(route[0].from, na);
            prop_assert_eq!(route.last().unwrap().to, nb);
            for w in route.windows(2) {
                prop_assert_eq!(w[0].to, w[1].from);
            }
            for hop in &route {
                prop_assert!(t.link(hop.link).permits(hop.from, hop.to));
            }
            // Simple path: no vertex repeats.
            let mut seen = std::collections::HashSet::new();
            seen.insert(route[0].from);
            for hop in &route {
                prop_assert!(seen.insert(hop.to));
            }
        }
    }

    #[test]
    fn bfs_matches_hop_count_dijkstra(seed in any::<u64>(), procs in 2usize..25) {
        let t = wan(seed, procs);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
        for _ in 0..6 {
            let a = t.node_of_proc(es_net::ProcId(rng.random_range(0..procs as u32)));
            let b = t.node_of_proc(es_net::ProcId(rng.random_range(0..procs as u32)));
            let r1 = bfs_route(&t, a, b).unwrap();
            let r2 = dijkstra_min_hops(&t, a, b).unwrap();
            prop_assert_eq!(r1.len(), r2.len());
        }
    }

    #[test]
    fn schedule_probe_dijkstra_finish_dominates_free_network(
        seed in any::<u64>(), procs in 2usize..25, cost in 1.0f64..500.0
    ) {
        // With empty link schedules the probed finish time equals the
        // best over paths of max-int along the path starting at est —
        // and can never beat est + cost / (fastest link on any path).
        let t = wan(seed, procs);
        let queues: Vec<SlotQueue> = (0..t.link_count()).map(|_| SlotQueue::new()).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
        let a = t.node_of_proc(es_net::ProcId(rng.random_range(0..procs as u32)));
        let b = t.node_of_proc(es_net::ProcId(rng.random_range(0..procs as u32)));
        if a == b {
            return Ok(());
        }
        let est = 10.0_f64;
        let (route, (_, finish)) = dijkstra_route(
            &t, a, b,
            (est, est),
            |&(s, f), hop| {
                let int = cost / t.link_speed(hop.link);
                let bound = s.max(f - int);
                let start = queues[hop.link.index()].probe(bound, int);
                (start, start + int)
            },
            |&(_, f)| f,
        ).expect("connected");
        prop_assert!(!route.is_empty());
        // Finish >= est + transfer time on the slowest link of the
        // chosen route (cut-through: slowest hop dominates).
        let slowest = route
            .iter()
            .map(|h| t.link_speed(h.link))
            .fold(f64::INFINITY, f64::min);
        prop_assert!(finish + 1e-9 >= est + cost / slowest.max(10.0) );
        prop_assert!(finish >= est);
    }

    #[test]
    fn congestion_never_improves_the_probed_finish(
        seed in any::<u64>(), procs in 2usize..20, cost in 1.0f64..200.0
    ) {
        let t = wan(seed, procs);
        let free: Vec<SlotQueue> = (0..t.link_count()).map(|_| SlotQueue::new()).collect();
        let mut busy = free.clone();
        // Congest every link with a slot at the front.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x99);
        for q in &mut busy {
            let dur = f64::from(rng.random_range(1..50));
            q.commit(CommId(0), 0, 0.0, dur);
        }
        let a = t.node_of_proc(es_net::ProcId(0));
        let b = t.node_of_proc(es_net::ProcId((procs - 1) as u32));
        if a == b {
            return Ok(());
        }
        let probe = |queues: &Vec<SlotQueue>| {
            dijkstra_route(
                &t, a, b,
                (0.0_f64, 0.0_f64),
                |&(s, f), hop| {
                    let int = cost / t.link_speed(hop.link);
                    let bound = s.max(f - int);
                    let start = queues[hop.link.index()].probe(bound, int);
                    (start, start + int)
                },
                |&(_, f)| f,
            )
            .map(|(_, (_, fin))| fin)
            .expect("connected")
        };
        prop_assert!(probe(&busy) + 1e-9 >= probe(&free));
    }
}
