//! # es-route — routing for contention-aware edge scheduling
//!
//! Two routing strategies from the paper:
//!
//! * [`bfs_route`] — **minimal routing** (fewest hops) via breadth-first
//!   search. This is what Sinnen's Basic Algorithm uses (§3): "it
//!   chooses the shortest possible path, in terms of number of edges,
//!   through the network for every communication".
//! * [`dijkstra_route`] — the paper's **modified routing** (§4.3): a
//!   Dijkstra search whose relaxation metric is not hop count but the
//!   *finish time of the communication on each link*, probed against
//!   the link's current schedule. "Generally, the shortest physical
//!   distance does not mean the most suitable route path because BFS
//!   neglects the real workload of network."
//!
//! [`dijkstra_route`] is generic over a caller-supplied state type so
//! the same search serves OIHSA (state = start/finish pair from a
//! basic-insertion probe) and BBSA (state = the fluid flow planned so
//! far, keyed by its finish time).
//!
//! Both searches are deterministic: ties resolve to the earlier-settled
//! vertex (BFS by adjacency order, Dijkstra by insertion sequence).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use es_linksched::time::EPS;
use es_net::{Hop, NodeId, Topology};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// A route through the network: the hops taken in order. Empty when
/// source and destination coincide.
pub type Route = Vec<Hop>;

/// Minimal (fewest-hops) route from `from` to `to`; `None` when
/// unreachable. Ties resolve to adjacency order, so results are
/// deterministic for a given topology.
pub fn bfs_route(topo: &Topology, from: NodeId, to: NodeId) -> Option<Route> {
    if from == to {
        return Some(Vec::new());
    }
    let n = topo.node_count();
    let mut pred: Vec<Option<Hop>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[from.index()] = true;
    let mut queue = VecDeque::new();
    queue.push_back(from);
    while let Some(u) = queue.pop_front() {
        for &hop in topo.hops_from(u) {
            if !seen[hop.to.index()] {
                seen[hop.to.index()] = true;
                pred[hop.to.index()] = Some(hop);
                if hop.to == to {
                    return Some(reconstruct(&pred, from, to));
                }
                queue.push_back(hop.to);
            }
        }
    }
    None
}

fn reconstruct(pred: &[Option<Hop>], from: NodeId, to: NodeId) -> Route {
    let mut route = Vec::new();
    let mut cur = to;
    while cur != from {
        let hop = pred[cur.index()].expect("predecessor chain is complete");
        route.push(hop);
        cur = hop.from;
    }
    route.reverse();
    route
}

/// BFS flood from `from`: `result[n.index()]` is true iff vertex `n`
/// is reachable (the source itself always is). Used by the repair
/// layer to pre-flight connectivity on masked topology views before
/// committing to a surviving-processor set.
pub fn reachable_nodes(topo: &Topology, from: NodeId) -> Vec<bool> {
    let mut seen = vec![false; topo.node_count()];
    seen[from.index()] = true;
    let mut queue = VecDeque::new();
    queue.push_back(from);
    while let Some(u) = queue.pop_front() {
        for &hop in topo.hops_from(u) {
            if !seen[hop.to.index()] {
                seen[hop.to.index()] = true;
                queue.push_back(hop.to);
            }
        }
    }
    seen
}

/// Heap entry for [`dijkstra_route`]: min-ordered by key, then by
/// insertion sequence (determinism).
struct HeapEntry {
    key: f64,
    seq: u64,
    node: NodeId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the min key out
        // first, and among equal keys the earliest-inserted entry.
        other
            .key
            .partial_cmp(&self.key)
            .expect("routing keys are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The paper's modified routing (§4.3), generalised.
///
/// `init` is the search state at the source vertex (e.g. "the message
/// is ready at time `t`"). For every candidate hop, `relax(state, hop)`
/// returns the state after traversing that hop — typically by probing
/// the hop's link schedule — and `key(state)` orders states (smaller is
/// better; OIHSA keys by the probed finish time of the communication on
/// the link). The hop metric must be non-decreasing
/// (`key(relax(s, h)) >= key(s)`), which link causality guarantees for
/// finish-time metrics (Lemma 1).
///
/// Returns the best route and the final state at `to`, or `None` when
/// unreachable.
pub fn dijkstra_route<S: Clone>(
    topo: &Topology,
    from: NodeId,
    to: NodeId,
    init: S,
    mut relax: impl FnMut(&S, &Hop) -> S,
    key: impl Fn(&S) -> f64,
) -> Option<(Route, S)> {
    let n = topo.node_count();
    let mut best: Vec<f64> = vec![f64::INFINITY; n];
    let mut state: Vec<Option<S>> = vec![None; n];
    let mut pred: Vec<Option<Hop>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    let mut seq = 0u64;

    best[from.index()] = key(&init);
    state[from.index()] = Some(init);
    heap.push(HeapEntry {
        key: best[from.index()],
        seq,
        node: from,
    });

    while let Some(HeapEntry {
        node: u, key: k, ..
    }) = heap.pop()
    {
        if settled[u.index()] || k > best[u.index()] + EPS {
            continue;
        }
        settled[u.index()] = true;
        if u == to {
            let route = reconstruct(&pred, from, to);
            let final_state = state[to.index()].clone().expect("settled node has state");
            return Some((route, final_state));
        }
        let u_state = state[u.index()].clone().expect("popped node has state");
        for &hop in topo.hops_from(u) {
            if settled[hop.to.index()] {
                continue;
            }
            let next = relax(&u_state, &hop);
            let nk = key(&next);
            debug_assert!(
                nk + EPS >= k,
                "routing metric decreased along a hop ({k} -> {nk}); Dijkstra invalid"
            );
            if nk < best[hop.to.index()] - EPS {
                best[hop.to.index()] = nk;
                state[hop.to.index()] = Some(next);
                pred[hop.to.index()] = Some(hop);
                seq += 1;
                heap.push(HeapEntry {
                    key: nk,
                    seq,
                    node: hop.to,
                });
            }
        }
    }
    None
}

/// Hop-count Dijkstra — exists so tests can cross-check BFS and the
/// generic search against each other.
pub fn dijkstra_min_hops(topo: &Topology, from: NodeId, to: NodeId) -> Option<Route> {
    dijkstra_route(topo, from, to, 0.0_f64, |d, _| d + 1.0, |d| *d).map(|(r, _)| r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use es_linksched::slot::SlotQueue;
    use es_net::gen::{self, SpeedDist};
    use es_net::{LinkId, Topology};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two processors joined by two parallel switch paths:
    /// p0 - swA - p1 (short) and p0 - swB - swC - p1 (long).
    fn parallel_paths() -> (Topology, NodeId, NodeId, Vec<LinkId>) {
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        let sa = b.add_switch();
        let sb = b.add_switch();
        let sc = b.add_switch();
        // Short path links.
        let (l0, _) = b.add_duplex_cable(p0, sa, 1.0);
        let (l1, _) = b.add_duplex_cable(sa, p1, 1.0);
        // Long path links.
        let (l2, _) = b.add_duplex_cable(p0, sb, 1.0);
        let (l3, _) = b.add_duplex_cable(sb, sc, 1.0);
        let (l4, _) = b.add_duplex_cable(sc, p1, 1.0);
        let t = b.build().unwrap();
        (t, p0, p1, vec![l0, l1, l2, l3, l4])
    }

    #[test]
    fn bfs_trivial_same_node() {
        let (t, p0, _, _) = parallel_paths();
        assert_eq!(bfs_route(&t, p0, p0), Some(vec![]));
    }

    #[test]
    fn bfs_picks_fewest_hops() {
        let (t, p0, p1, _) = parallel_paths();
        let r = bfs_route(&t, p0, p1).unwrap();
        assert_eq!(r.len(), 2, "short path has 2 hops");
        assert_eq!(r[0].from, p0);
        assert_eq!(r[1].to, p1);
        // Hops chain.
        assert_eq!(r[0].to, r[1].from);
    }

    #[test]
    fn bfs_unreachable_is_none() {
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        let t = b.build().unwrap();
        assert_eq!(bfs_route(&t, p0, p1), None);
    }

    #[test]
    fn bfs_respects_link_direction() {
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        b.add_directed_link(p0, p1, 1.0);
        let t = b.build().unwrap();
        assert!(bfs_route(&t, p0, p1).is_some());
        assert_eq!(bfs_route(&t, p1, p0), None);
    }

    #[test]
    fn reachability_agrees_with_bfs_and_respects_masks() {
        let (t, p0, p1, _) = parallel_paths();
        let all = reachable_nodes(&t, p0);
        for n in t.node_ids() {
            assert_eq!(all[n.index()], bfs_route(&t, p0, n).is_some());
        }
        // Sever every link incident to p0 (both directions of its two
        // duplex cables): the node is fully isolated.
        let mut dead: Vec<LinkId> = t.hops_from(p0).iter().map(|h| h.link).collect();
        for n in t.node_ids() {
            for h in t.hops_from(n) {
                if h.to == p0 {
                    dead.push(h.link);
                }
            }
        }
        let cut = t.masked(|l| dead.contains(&l));
        let isolated = reachable_nodes(&cut, p0);
        assert!(isolated[p0.index()]);
        assert_eq!(isolated.iter().filter(|&&r| r).count(), 1);
        // The rest of the network neither sees nor reaches it.
        let from_p1 = reachable_nodes(&cut, p1);
        assert!(from_p1[p1.index()]);
        assert!(!from_p1[p0.index()], "p0 unreachable after the cut");
    }

    #[test]
    fn dijkstra_matches_bfs_on_hop_metric() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = gen::random_switched_wan(&gen::WanConfig::homogeneous(24), &mut rng);
        for a in t.proc_ids() {
            for bp in t.proc_ids() {
                let na = t.node_of_proc(a);
                let nb = t.node_of_proc(bp);
                let r1 = bfs_route(&t, na, nb).unwrap();
                let r2 = dijkstra_min_hops(&t, na, nb).unwrap();
                assert_eq!(r1.len(), r2.len(), "{a} -> {bp}");
            }
        }
    }

    #[test]
    fn dijkstra_avoids_congested_short_path() {
        let (t, p0, p1, links) = parallel_paths();
        // Congest the short path: its first link is busy until t=100.
        let mut queues: Vec<SlotQueue> = (0..t.link_count()).map(|_| SlotQueue::new()).collect();
        queues[links[0].index()].commit(es_linksched::CommId(1), 0, 0.0, 100.0);

        // Metric: basic-insertion finish time of a 5-unit transfer.
        let duration = 5.0;
        let result = dijkstra_route(
            &t,
            p0,
            p1,
            (0.0_f64, 0.0_f64), // (start, finish) at source
            |&(s, f), hop| {
                let bound = s.max(f - duration);
                let start = queues[hop.link.index()].probe(bound, duration);
                (start, (start + duration).max(f))
            },
            |&(_, f)| f,
        );
        let (route, (_, finish)) = result.unwrap();
        assert_eq!(route.len(), 3, "takes the long free path");
        assert!(finish < 100.0, "finishes before the congested link frees");
    }

    #[test]
    fn dijkstra_takes_short_path_when_uncongested() {
        let (t, p0, p1, _) = parallel_paths();
        let queues: Vec<SlotQueue> = (0..t.link_count()).map(|_| SlotQueue::new()).collect();
        let duration = 5.0;
        let (route, (_, finish)) = dijkstra_route(
            &t,
            p0,
            p1,
            (0.0_f64, 0.0_f64),
            |&(s, f), hop| {
                let bound = s.max(f - duration);
                let start = queues[hop.link.index()].probe(bound, duration);
                (start, (start + duration).max(f))
            },
            |&(_, f)| f,
        )
        .unwrap();
        assert_eq!(route.len(), 2);
        // Cut-through with zero hop delay: both links carry the message
        // over [0, 5) simultaneously, so the route finishes at 5.
        assert_eq!(finish, 5.0);
    }

    #[test]
    fn dijkstra_unreachable_is_none() {
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        let t = b.build().unwrap();
        let r = dijkstra_route(&t, p0, p1, 0.0_f64, |d, _| d + 1.0, |d| *d);
        assert!(r.is_none());
    }

    #[test]
    fn routes_are_simple_paths() {
        let mut rng = StdRng::seed_from_u64(10);
        let t = gen::random_switched_wan(&gen::WanConfig::heterogeneous(40), &mut rng);
        for a in t.proc_ids().take(6) {
            for bp in t.proc_ids().take(6) {
                if a == bp {
                    continue;
                }
                let r = bfs_route(&t, t.node_of_proc(a), t.node_of_proc(bp)).unwrap();
                let mut seen = std::collections::BTreeSet::new();
                seen.insert(r[0].from);
                for hop in &r {
                    assert!(seen.insert(hop.to), "revisited vertex on route");
                }
            }
        }
    }

    #[test]
    fn bus_routes_work() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = gen::shared_bus(4, SpeedDist::Fixed(1.0), 1.0, &mut rng);
        let r = bfs_route(
            &t,
            t.node_of_proc(es_net::ProcId(0)),
            t.node_of_proc(es_net::ProcId(3)),
        )
        .unwrap();
        assert_eq!(r.len(), 1, "bus is a single hop");
    }
}
