//! # es-route — routing for contention-aware edge scheduling
//!
//! Two routing strategies from the paper:
//!
//! * [`bfs_route`] — **minimal routing** (fewest hops) via breadth-first
//!   search. This is what Sinnen's Basic Algorithm uses (§3): "it
//!   chooses the shortest possible path, in terms of number of edges,
//!   through the network for every communication".
//! * [`dijkstra_route`] — the paper's **modified routing** (§4.3): a
//!   Dijkstra search whose relaxation metric is not hop count but the
//!   *finish time of the communication on each link*, probed against
//!   the link's current schedule. "Generally, the shortest physical
//!   distance does not mean the most suitable route path because BFS
//!   neglects the real workload of network."
//!
//! [`dijkstra_route`] is generic over a caller-supplied state type so
//! the same search serves OIHSA (state = start/finish pair from a
//! basic-insertion probe) and BBSA (state = the fluid flow planned so
//! far, keyed by its finish time).
//!
//! Both searches are deterministic: ties resolve to the earlier-settled
//! vertex (BFS by adjacency order, Dijkstra by insertion sequence).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use es_linksched::time::EPS;
use es_net::{Hop, NodeId, Topology};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// A route through the network: the hops taken in order. Empty when
/// source and destination coincide.
pub type Route = Vec<Hop>;

/// Minimal (fewest-hops) route from `from` to `to`; `None` when
/// unreachable. Ties resolve to adjacency order, so results are
/// deterministic for a given topology.
pub fn bfs_route(topo: &Topology, from: NodeId, to: NodeId) -> Option<Route> {
    if from == to {
        return Some(Vec::new());
    }
    let n = topo.node_count();
    let mut pred: Vec<Option<Hop>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[from.index()] = true;
    let mut queue = VecDeque::new();
    queue.push_back(from);
    while let Some(u) = queue.pop_front() {
        for &hop in topo.hops_from(u) {
            if !seen[hop.to.index()] {
                seen[hop.to.index()] = true;
                pred[hop.to.index()] = Some(hop);
                if hop.to == to {
                    return Some(reconstruct(&pred, from, to));
                }
                queue.push_back(hop.to);
            }
        }
    }
    None
}

fn reconstruct(pred: &[Option<Hop>], from: NodeId, to: NodeId) -> Route {
    let mut route = Vec::new();
    reconstruct_into(pred, from, to, &mut route);
    route
}

/// [`reconstruct`] into a caller-owned buffer (cleared first) — the
/// hot probe paths reuse one route buffer across searches instead of
/// allocating a fresh `Vec<Hop>` per answer.
fn reconstruct_into(pred: &[Option<Hop>], from: NodeId, to: NodeId, out: &mut Vec<Hop>) {
    out.clear();
    let mut cur = to;
    while cur != from {
        let hop = pred[cur.index()].expect("predecessor chain is complete");
        out.push(hop);
        cur = hop.from;
    }
    out.reverse();
}

/// BFS flood from `from`: `result[n.index()]` is true iff vertex `n`
/// is reachable (the source itself always is). Used by the repair
/// layer to pre-flight connectivity on masked topology views before
/// committing to a surviving-processor set.
pub fn reachable_nodes(topo: &Topology, from: NodeId) -> Vec<bool> {
    let mut seen = vec![false; topo.node_count()];
    seen[from.index()] = true;
    let mut queue = VecDeque::new();
    queue.push_back(from);
    while let Some(u) = queue.pop_front() {
        for &hop in topo.hops_from(u) {
            if !seen[hop.to.index()] {
                seen[hop.to.index()] = true;
                queue.push_back(hop.to);
            }
        }
    }
    seen
}

/// Reusable buffers for [`bfs_route_with`] / [`reachable_nodes_with`].
///
/// Sweep contexts (repair pre-flights, per-state BFS caches) issue many
/// searches back to back; sharing one scratch avoids reallocating the
/// visited/predecessor/queue buffers on every call. Results are bitwise
/// identical to the allocating entry points.
#[derive(Clone, Debug, Default)]
pub struct BfsScratch {
    seen: Vec<bool>,
    pred: Vec<Option<Hop>>,
    queue: VecDeque<NodeId>,
}

impl BfsScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, n: usize) {
        self.seen.clear();
        self.seen.resize(n, false);
        self.queue.clear();
    }
}

/// [`bfs_route`] reusing the caller's scratch buffers. Bitwise
/// identical to `bfs_route` (same traversal, same tie-breaking).
pub fn bfs_route_with(
    topo: &Topology,
    from: NodeId,
    to: NodeId,
    scratch: &mut BfsScratch,
) -> Option<Route> {
    if from == to {
        return Some(Vec::new());
    }
    let n = topo.node_count();
    scratch.reset(n);
    scratch.pred.clear();
    scratch.pred.resize(n, None);
    scratch.seen[from.index()] = true;
    scratch.queue.push_back(from);
    while let Some(u) = scratch.queue.pop_front() {
        for &hop in topo.hops_from(u) {
            if !scratch.seen[hop.to.index()] {
                scratch.seen[hop.to.index()] = true;
                scratch.pred[hop.to.index()] = Some(hop);
                if hop.to == to {
                    return Some(reconstruct(&scratch.pred, from, to));
                }
                scratch.queue.push_back(hop.to);
            }
        }
    }
    None
}

/// [`reachable_nodes`] reusing the caller's scratch buffers; the
/// reachability flags are returned as a borrow of the scratch (valid
/// until the next call). Bitwise identical to `reachable_nodes`.
pub fn reachable_nodes_with<'a>(
    topo: &Topology,
    from: NodeId,
    scratch: &'a mut BfsScratch,
) -> &'a [bool] {
    scratch.reset(topo.node_count());
    scratch.seen[from.index()] = true;
    scratch.queue.push_back(from);
    while let Some(u) = scratch.queue.pop_front() {
        for &hop in topo.hops_from(u) {
            if !scratch.seen[hop.to.index()] {
                scratch.seen[hop.to.index()] = true;
                scratch.queue.push_back(hop.to);
            }
        }
    }
    &scratch.seen
}

/// Heap entry for [`dijkstra_route`]: min-ordered by key, then by
/// insertion sequence (determinism).
#[derive(Clone, Debug)]
struct HeapEntry {
    key: f64,
    seq: u64,
    node: NodeId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the min key out
        // first, and among equal keys the earliest-inserted entry.
        other
            .key
            .partial_cmp(&self.key)
            .expect("routing keys are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The paper's modified routing (§4.3), generalised.
///
/// `init` is the search state at the source vertex (e.g. "the message
/// is ready at time `t`"). For every candidate hop, `relax(state, hop)`
/// returns the state after traversing that hop — typically by probing
/// the hop's link schedule — and `key(state)` orders states (smaller is
/// better; OIHSA keys by the probed finish time of the communication on
/// the link). The hop metric must be non-decreasing
/// (`key(relax(s, h)) >= key(s)`), which link causality guarantees for
/// finish-time metrics (Lemma 1).
///
/// Returns the best route and the final state at `to`, or `None` when
/// unreachable.
pub fn dijkstra_route<S: Clone>(
    topo: &Topology,
    from: NodeId,
    to: NodeId,
    init: S,
    mut relax: impl FnMut(&S, &Hop) -> S,
    key: impl Fn(&S) -> f64,
) -> Option<(Route, S)> {
    let n = topo.node_count();
    let mut best: Vec<f64> = vec![f64::INFINITY; n];
    let mut state: Vec<Option<S>> = vec![None; n];
    let mut pred: Vec<Option<Hop>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    let mut seq = 0u64;

    best[from.index()] = key(&init);
    state[from.index()] = Some(init);
    heap.push(HeapEntry {
        key: best[from.index()],
        seq,
        node: from,
    });

    while let Some(HeapEntry {
        node: u, key: k, ..
    }) = heap.pop()
    {
        if settled[u.index()] || k > best[u.index()] + EPS {
            continue;
        }
        settled[u.index()] = true;
        if u == to {
            let route = reconstruct(&pred, from, to);
            let final_state = state[to.index()].clone().expect("settled node has state");
            return Some((route, final_state));
        }
        let u_state = state[u.index()].clone().expect("popped node has state");
        for &hop in topo.hops_from(u) {
            if settled[hop.to.index()] {
                continue;
            }
            let next = relax(&u_state, &hop);
            let nk = key(&next);
            debug_assert!(
                nk + EPS >= k,
                "routing metric decreased along a hop ({k} -> {nk}); Dijkstra invalid"
            );
            if nk < best[hop.to.index()] - EPS {
                best[hop.to.index()] = nk;
                state[hop.to.index()] = Some(next);
                pred[hop.to.index()] = Some(hop);
                seq += 1;
                heap.push(HeapEntry {
                    key: nk,
                    seq,
                    node: hop.to,
                });
            }
        }
    }
    None
}

/// Reusable buffers for [`dijkstra_route_with`], hoisting the per-call
/// allocations of [`dijkstra_route`] out of search-heavy loops (the
/// scheduler probe cycle issues hundreds of thousands of searches).
#[derive(Clone, Debug, Default)]
pub struct DijkstraScratch<S> {
    best: Vec<f64>,
    state: Vec<Option<S>>,
    pred: Vec<Option<Hop>>,
    settled: Vec<bool>,
    heap: BinaryHeap<HeapEntry>,
}

impl<S: Clone> DijkstraScratch<S> {
    /// Empty scratch; buffers grow to the topology size on first use.
    pub fn new() -> Self {
        Self {
            best: Vec::new(),
            state: Vec::new(),
            pred: Vec::new(),
            settled: Vec::new(),
            heap: BinaryHeap::new(),
        }
    }

    fn reset(&mut self, n: usize) {
        self.best.clear();
        self.best.resize(n, f64::INFINITY);
        self.state.clear();
        self.state.resize(n, None);
        self.pred.clear();
        self.pred.resize(n, None);
        self.settled.clear();
        self.settled.resize(n, false);
        self.heap.clear();
    }
}

/// [`dijkstra_route`] over caller-owned buffers — the loop body is the
/// same statement for statement, so the result is bitwise identical;
/// only the allocations differ.
pub fn dijkstra_route_with<S: Clone>(
    topo: &Topology,
    from: NodeId,
    to: NodeId,
    init: S,
    relax: impl FnMut(&S, &Hop) -> S,
    key: impl Fn(&S) -> f64,
    scratch: &mut DijkstraScratch<S>,
) -> Option<(Route, S)> {
    let mut route = Vec::new();
    dijkstra_route_into_with(topo, from, to, init, relax, key, scratch, &mut route)
        .map(|state| (route, state))
}

/// [`dijkstra_route_with`] writing the route into a caller-owned
/// buffer (cleared first; left cleared when unreachable) and returning
/// only the destination state. Same search, zero allocation per call.
#[allow(clippy::too_many_arguments)]
pub fn dijkstra_route_into_with<S: Clone>(
    topo: &Topology,
    from: NodeId,
    to: NodeId,
    init: S,
    mut relax: impl FnMut(&S, &Hop) -> S,
    key: impl Fn(&S) -> f64,
    scratch: &mut DijkstraScratch<S>,
    out: &mut Vec<Hop>,
) -> Option<S> {
    out.clear();
    scratch.reset(topo.node_count());
    let mut seq = 0u64;

    scratch.best[from.index()] = key(&init);
    scratch.state[from.index()] = Some(init);
    scratch.heap.push(HeapEntry {
        key: scratch.best[from.index()],
        seq,
        node: from,
    });

    while let Some(HeapEntry {
        node: u, key: k, ..
    }) = scratch.heap.pop()
    {
        if scratch.settled[u.index()] || k > scratch.best[u.index()] + EPS {
            continue;
        }
        scratch.settled[u.index()] = true;
        if u == to {
            reconstruct_into(&scratch.pred, from, to, out);
            let final_state = scratch.state[to.index()]
                .clone()
                .expect("settled node has state");
            return Some(final_state);
        }
        let u_state = scratch.state[u.index()]
            .clone()
            .expect("popped node has state");
        for &hop in topo.hops_from(u) {
            if scratch.settled[hop.to.index()] {
                continue;
            }
            let next = relax(&u_state, &hop);
            let nk = key(&next);
            debug_assert!(
                nk + EPS >= k,
                "routing metric decreased along a hop ({k} -> {nk}); Dijkstra invalid"
            );
            if nk < scratch.best[hop.to.index()] - EPS {
                scratch.best[hop.to.index()] = nk;
                scratch.state[hop.to.index()] = Some(next);
                scratch.pred[hop.to.index()] = Some(hop);
                seq += 1;
                scratch.heap.push(HeapEntry {
                    key: nk,
                    seq,
                    node: hop.to,
                });
            }
        }
    }
    None
}

/// A resumable [`dijkstra_route`]: one search frontier answering
/// queries for *many* destinations from the same source and metric.
///
/// The trajectory of a Dijkstra search — which vertices settle, in
/// which order, with which predecessor — does not depend on the
/// destination; the destination only decides where a targeted search
/// *stops*. This type runs that destination-independent search lazily:
/// [`IncrementalDijkstra::route_to`] pops the frontier until the asked
/// destination settles, then reconstructs its route. A later call for
/// another destination resumes from where the previous one stopped
/// instead of re-running the whole search.
///
/// As long as the link schedules probed by `relax` do not change
/// between calls (callers key caches on a state epoch to guarantee
/// this), every `route_to` answer is **bitwise identical** to a fresh
/// `dijkstra_route` with the same arguments: same route, same state,
/// same tie-breaking — the fresh search settles the same vertices with
/// the same predecessors before reaching the destination.
#[derive(Clone, Debug)]
pub struct IncrementalDijkstra<S> {
    from: NodeId,
    best: Vec<f64>,
    state: Vec<Option<S>>,
    pred: Vec<Option<Hop>>,
    settled: Vec<bool>,
    heap: BinaryHeap<HeapEntry>,
    seq: u64,
}

impl<S: Clone> IncrementalDijkstra<S> {
    /// Open a search from `from` over a graph of `node_count` vertices.
    /// `init` is the state at the source and `init_key` its key (the
    /// caller evaluates `key(&init)` once; passing anything else breaks
    /// the equivalence with [`dijkstra_route`]).
    pub fn new(node_count: usize, from: NodeId, init: S, init_key: f64) -> Self {
        let mut s = Self {
            from,
            best: vec![f64::INFINITY; node_count],
            state: vec![None; node_count],
            pred: vec![None; node_count],
            settled: vec![false; node_count],
            heap: BinaryHeap::new(),
            seq: 0,
        };
        s.best[from.index()] = init_key;
        s.state[from.index()] = Some(init);
        s.heap.push(HeapEntry {
            key: init_key,
            seq: s.seq,
            node: from,
        });
        s
    }

    /// Advance the frontier until `to` settles; `false` when the heap
    /// exhausts first (`to` is unreachable). The shared engine under
    /// every query flavour below.
    fn advance_until(
        &mut self,
        topo: &Topology,
        to: NodeId,
        relax: &mut impl FnMut(&S, &Hop) -> S,
        key: &impl Fn(&S) -> f64,
    ) -> bool {
        while !self.settled[to.index()] {
            let Some(HeapEntry {
                node: u, key: k, ..
            }) = self.heap.pop()
            else {
                return false;
            };
            if self.settled[u.index()] || k > self.best[u.index()] + EPS {
                continue;
            }
            self.settled[u.index()] = true;
            let u_state = self.state[u.index()]
                .clone()
                .expect("popped node has state");
            // Unlike the targeted search we relax even the queried
            // destination's out-hops: a fresh search for any *other*
            // destination would have done so when this vertex popped,
            // and relaxing never changes an already-settled vertex.
            for &hop in topo.hops_from(u) {
                if self.settled[hop.to.index()] {
                    continue;
                }
                let next = relax(&u_state, &hop);
                let nk = key(&next);
                debug_assert!(
                    nk + EPS >= k,
                    "routing metric decreased along a hop ({k} -> {nk}); Dijkstra invalid"
                );
                if nk < self.best[hop.to.index()] - EPS {
                    self.best[hop.to.index()] = nk;
                    self.state[hop.to.index()] = Some(next);
                    self.pred[hop.to.index()] = Some(hop);
                    self.seq += 1;
                    self.heap.push(HeapEntry {
                        key: nk,
                        seq: self.seq,
                        node: hop.to,
                    });
                }
            }
        }
        true
    }

    /// Advance the search until `to` settles and return its route and
    /// state; `None` when unreachable. `relax`/`key` must compute the
    /// same metric on every call for this search (same closures probing
    /// the same unchanged link schedules).
    pub fn route_to(
        &mut self,
        topo: &Topology,
        to: NodeId,
        relax: impl FnMut(&S, &Hop) -> S,
        key: impl Fn(&S) -> f64,
    ) -> Option<(Route, S)> {
        let mut route = Vec::new();
        self.route_to_into(topo, to, relax, key, &mut route)
            .map(|state| (route, state))
    }

    /// [`IncrementalDijkstra::route_to`] into a caller-owned route
    /// buffer (cleared first; left cleared when unreachable), returning
    /// only the destination state. Same advance, zero allocation.
    pub fn route_to_into(
        &mut self,
        topo: &Topology,
        to: NodeId,
        mut relax: impl FnMut(&S, &Hop) -> S,
        key: impl Fn(&S) -> f64,
        out: &mut Vec<Hop>,
    ) -> Option<S> {
        out.clear();
        if !self.advance_until(topo, to, &mut relax, &key) {
            return None;
        }
        reconstruct_into(&self.pred, self.from, to, out);
        let state = self.state[to.index()]
            .clone()
            .expect("settled node has state");
        Some(state)
    }

    /// Batch pre-advance: settle *every* listed destination in one
    /// wavefront pass (stopping early once the heap exhausts — any
    /// destination still unsettled then is unreachable). Subsequent
    /// [`IncrementalDijkstra::route_to`] calls for these destinations
    /// are pure reconstructions with no further frontier work.
    ///
    /// Because the settle trajectory is destination-independent,
    /// pre-advancing changes no answer: a later query reads exactly the
    /// state a fresh targeted search would have computed. This is the
    /// multi-destination completion of the search: the probe loop calls
    /// it once per ready task with all candidate destinations.
    pub fn settle_many(
        &mut self,
        topo: &Topology,
        dsts: &[NodeId],
        mut relax: impl FnMut(&S, &Hop) -> S,
        key: impl Fn(&S) -> f64,
    ) {
        for &to in dsts {
            if !self.advance_until(topo, to, &mut relax, &key) {
                return;
            }
        }
    }
}

/// Hop-count Dijkstra — exists so tests can cross-check BFS and the
/// generic search against each other.
pub fn dijkstra_min_hops(topo: &Topology, from: NodeId, to: NodeId) -> Option<Route> {
    dijkstra_route(topo, from, to, 0.0_f64, |d, _| d + 1.0, |d| *d).map(|(r, _)| r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use es_linksched::slot::SlotQueue;
    use es_net::gen::{self, SpeedDist};
    use es_net::{LinkId, Topology};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two processors joined by two parallel switch paths:
    /// p0 - swA - p1 (short) and p0 - swB - swC - p1 (long).
    fn parallel_paths() -> (Topology, NodeId, NodeId, Vec<LinkId>) {
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        let sa = b.add_switch();
        let sb = b.add_switch();
        let sc = b.add_switch();
        // Short path links.
        let (l0, _) = b.add_duplex_cable(p0, sa, 1.0);
        let (l1, _) = b.add_duplex_cable(sa, p1, 1.0);
        // Long path links.
        let (l2, _) = b.add_duplex_cable(p0, sb, 1.0);
        let (l3, _) = b.add_duplex_cable(sb, sc, 1.0);
        let (l4, _) = b.add_duplex_cable(sc, p1, 1.0);
        let t = b.build().unwrap();
        (t, p0, p1, vec![l0, l1, l2, l3, l4])
    }

    #[test]
    fn bfs_trivial_same_node() {
        let (t, p0, _, _) = parallel_paths();
        assert_eq!(bfs_route(&t, p0, p0), Some(vec![]));
    }

    #[test]
    fn bfs_picks_fewest_hops() {
        let (t, p0, p1, _) = parallel_paths();
        let r = bfs_route(&t, p0, p1).unwrap();
        assert_eq!(r.len(), 2, "short path has 2 hops");
        assert_eq!(r[0].from, p0);
        assert_eq!(r[1].to, p1);
        // Hops chain.
        assert_eq!(r[0].to, r[1].from);
    }

    #[test]
    fn bfs_unreachable_is_none() {
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        let t = b.build().unwrap();
        assert_eq!(bfs_route(&t, p0, p1), None);
    }

    #[test]
    fn bfs_respects_link_direction() {
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        b.add_directed_link(p0, p1, 1.0);
        let t = b.build().unwrap();
        assert!(bfs_route(&t, p0, p1).is_some());
        assert_eq!(bfs_route(&t, p1, p0), None);
    }

    #[test]
    fn reachability_agrees_with_bfs_and_respects_masks() {
        let (t, p0, p1, _) = parallel_paths();
        let all = reachable_nodes(&t, p0);
        for n in t.node_ids() {
            assert_eq!(all[n.index()], bfs_route(&t, p0, n).is_some());
        }
        // Sever every link incident to p0 (both directions of its two
        // duplex cables): the node is fully isolated.
        let mut dead: Vec<LinkId> = t.hops_from(p0).iter().map(|h| h.link).collect();
        for n in t.node_ids() {
            for h in t.hops_from(n) {
                if h.to == p0 {
                    dead.push(h.link);
                }
            }
        }
        let cut = t.masked(|l| dead.contains(&l));
        let isolated = reachable_nodes(&cut, p0);
        assert!(isolated[p0.index()]);
        assert_eq!(isolated.iter().filter(|&&r| r).count(), 1);
        // The rest of the network neither sees nor reaches it.
        let from_p1 = reachable_nodes(&cut, p1);
        assert!(from_p1[p1.index()]);
        assert!(!from_p1[p0.index()], "p0 unreachable after the cut");
    }

    #[test]
    fn dijkstra_matches_bfs_on_hop_metric() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = gen::random_switched_wan(&gen::WanConfig::homogeneous(24), &mut rng);
        for a in t.proc_ids() {
            for bp in t.proc_ids() {
                let na = t.node_of_proc(a);
                let nb = t.node_of_proc(bp);
                let r1 = bfs_route(&t, na, nb).unwrap();
                let r2 = dijkstra_min_hops(&t, na, nb).unwrap();
                assert_eq!(r1.len(), r2.len(), "{a} -> {bp}");
            }
        }
    }

    #[test]
    fn dijkstra_avoids_congested_short_path() {
        let (t, p0, p1, links) = parallel_paths();
        // Congest the short path: its first link is busy until t=100.
        let mut queues: Vec<SlotQueue> = (0..t.link_count()).map(|_| SlotQueue::new()).collect();
        queues[links[0].index()].commit(es_linksched::CommId(1), 0, 0.0, 100.0);

        // Metric: basic-insertion finish time of a 5-unit transfer.
        let duration = 5.0;
        let result = dijkstra_route(
            &t,
            p0,
            p1,
            (0.0_f64, 0.0_f64), // (start, finish) at source
            |&(s, f), hop| {
                let bound = s.max(f - duration);
                let start = queues[hop.link.index()].probe(bound, duration);
                (start, (start + duration).max(f))
            },
            |&(_, f)| f,
        );
        let (route, (_, finish)) = result.unwrap();
        assert_eq!(route.len(), 3, "takes the long free path");
        assert!(finish < 100.0, "finishes before the congested link frees");
    }

    #[test]
    fn dijkstra_takes_short_path_when_uncongested() {
        let (t, p0, p1, _) = parallel_paths();
        let queues: Vec<SlotQueue> = (0..t.link_count()).map(|_| SlotQueue::new()).collect();
        let duration = 5.0;
        let (route, (_, finish)) = dijkstra_route(
            &t,
            p0,
            p1,
            (0.0_f64, 0.0_f64),
            |&(s, f), hop| {
                let bound = s.max(f - duration);
                let start = queues[hop.link.index()].probe(bound, duration);
                (start, (start + duration).max(f))
            },
            |&(_, f)| f,
        )
        .unwrap();
        assert_eq!(route.len(), 2);
        // Cut-through with zero hop delay: both links carry the message
        // over [0, 5) simultaneously, so the route finishes at 5.
        assert_eq!(finish, 5.0);
    }

    #[test]
    fn dijkstra_unreachable_is_none() {
        let mut b = Topology::builder();
        let (p0, _) = b.add_processor(1.0);
        let (p1, _) = b.add_processor(1.0);
        let t = b.build().unwrap();
        let r = dijkstra_route(&t, p0, p1, 0.0_f64, |d, _| d + 1.0, |d| *d);
        assert!(r.is_none());
    }

    #[test]
    fn routes_are_simple_paths() {
        let mut rng = StdRng::seed_from_u64(10);
        let t = gen::random_switched_wan(&gen::WanConfig::heterogeneous(40), &mut rng);
        for a in t.proc_ids().take(6) {
            for bp in t.proc_ids().take(6) {
                if a == bp {
                    continue;
                }
                let r = bfs_route(&t, t.node_of_proc(a), t.node_of_proc(bp)).unwrap();
                let mut seen = std::collections::BTreeSet::new();
                seen.insert(r[0].from);
                for hop in &r {
                    assert!(seen.insert(hop.to), "revisited vertex on route");
                }
            }
        }
    }

    #[test]
    fn scratch_variants_match_allocating_ones() {
        let mut rng = StdRng::seed_from_u64(21);
        let t = gen::random_switched_wan(&gen::WanConfig::heterogeneous(16), &mut rng);
        let mut scratch = BfsScratch::new();
        for a in t.node_ids() {
            let flags = reachable_nodes(&t, a);
            assert_eq!(reachable_nodes_with(&t, a, &mut scratch), &flags[..]);
            for b in t.node_ids() {
                assert_eq!(
                    bfs_route_with(&t, a, b, &mut scratch),
                    bfs_route(&t, a, b),
                    "{a} -> {b}"
                );
            }
        }
    }

    /// One resumable search must answer every destination exactly as a
    /// fresh targeted search would — including tie-breaking and the
    /// probed state, checked bitwise against congested link schedules.
    #[test]
    fn incremental_dijkstra_is_bitwise_identical_to_fresh_searches() {
        let mut rng = StdRng::seed_from_u64(33);
        let t = gen::random_switched_wan(&gen::WanConfig::heterogeneous(12), &mut rng);
        // Congest a few links so the metric is nontrivial.
        let mut queues: Vec<SlotQueue> = (0..t.link_count()).map(|_| SlotQueue::new()).collect();
        for (i, q) in queues.iter_mut().enumerate() {
            if i % 3 == 0 {
                q.commit(es_linksched::CommId(i as u64), 0, 1.5, 40.0 + i as f64);
            }
        }
        let duration = 7.0;
        let relax = |&(s, f): &(f64, f64), hop: &es_net::Hop| {
            let bound = s.max(f - duration);
            let start = queues[hop.link.index()].probe(bound, duration);
            (start, (start + duration).max(f))
        };
        let key = |&(_, f): &(f64, f64)| f;

        let src = t.node_of_proc(es_net::ProcId(0));
        let mut inc = IncrementalDijkstra::new(t.node_count(), src, (3.0, 3.0), 3.0);
        for p in t.proc_ids() {
            let dst = t.node_of_proc(p);
            let fresh = dijkstra_route(&t, src, dst, (3.0, 3.0), relax, key);
            let resumed = inc.route_to(&t, dst, relax, key);
            match (fresh, resumed) {
                (None, None) => {}
                (Some((r1, s1)), Some((r2, s2))) => {
                    assert_eq!(r1, r2, "route to {p}");
                    assert_eq!(s1.0.to_bits(), s2.0.to_bits(), "start to {p}");
                    assert_eq!(s1.1.to_bits(), s2.1.to_bits(), "finish to {p}");
                }
                (a, b) => panic!("reachability disagrees for {p}: {a:?} vs {b:?}"),
            }
        }
        // Asking again is a pure cache hit and still identical.
        let dst = t.node_of_proc(es_net::ProcId(1));
        let again = inc.route_to(&t, dst, relax, key).unwrap();
        let fresh = dijkstra_route(&t, src, dst, (3.0, 3.0), relax, key).unwrap();
        assert_eq!(again.0, fresh.0);
        assert_eq!(again.1 .1.to_bits(), fresh.1 .1.to_bits());
    }

    #[test]
    fn settle_many_preadvance_changes_no_answer() {
        // Pre-advancing the frontier over every destination at once
        // (the batch in-edge probe's warm pass) must leave each
        // subsequent route_to bitwise identical to a fresh targeted
        // search — including unreachable destinations.
        let mut rng = StdRng::seed_from_u64(77);
        let t = gen::random_switched_wan(&gen::WanConfig::heterogeneous(10), &mut rng);
        let mut queues: Vec<SlotQueue> = (0..t.link_count()).map(|_| SlotQueue::new()).collect();
        for (i, q) in queues.iter_mut().enumerate() {
            if i % 2 == 0 {
                q.commit(es_linksched::CommId(i as u64), 0, 0.5, 25.0 + i as f64);
            }
        }
        let duration = 4.0;
        let relax = |&(s, f): &(f64, f64), hop: &es_net::Hop| {
            let bound = s.max(f - duration);
            let start = queues[hop.link.index()].probe(bound, duration);
            (start, (start + duration).max(f))
        };
        let key = |&(_, f): &(f64, f64)| f;

        let src = t.node_of_proc(es_net::ProcId(0));
        let dsts: Vec<es_net::NodeId> = t.proc_ids().map(|p| t.node_of_proc(p)).collect();
        let mut warmed = IncrementalDijkstra::new(t.node_count(), src, (1.0, 1.0), 1.0);
        warmed.settle_many(&t, &dsts, relax, key);
        let mut route = Vec::new();
        for &dst in &dsts {
            let fresh = dijkstra_route(&t, src, dst, (1.0, 1.0), relax, key);
            let state = warmed.route_to_into(&t, dst, relax, key, &mut route);
            match (fresh, state) {
                (None, None) => assert!(route.is_empty()),
                (Some((r1, s1)), Some(s2)) => {
                    assert_eq!(r1, route, "route to {dst:?}");
                    assert_eq!(s1.0.to_bits(), s2.0.to_bits());
                    assert_eq!(s1.1.to_bits(), s2.1.to_bits());
                }
                (a, b) => panic!("reachability disagrees: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn bus_routes_work() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = gen::shared_bus(4, SpeedDist::Fixed(1.0), 1.0, &mut rng);
        let r = bfs_route(
            &t,
            t.node_of_proc(es_net::ProcId(0)),
            t.node_of_proc(es_net::ProcId(3)),
        )
        .unwrap();
        assert_eq!(r.len(), 1, "bus is a single hop");
    }
}
