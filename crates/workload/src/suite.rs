//! Named workload suites.
//!
//! Curated (kernel × platform × CCR) collections used by the examples,
//! the extra benches, and anyone who wants reproducible scenarios
//! beyond the paper's random sweep. Every suite instance is
//! deterministic in the seed.

use es_dag::gen::structured;
use es_dag::TaskGraph;
use es_net::gen::{self, SpeedDist, WanConfig};
use es_net::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::scale_to_ccr;

/// The structured kernels, sized for a given task budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Gaussian elimination (serial spine, shrinking fans).
    GaussElim,
    /// FFT butterflies (uniform ranks, global exchange).
    Fft,
    /// 1-D stencil wavefront (nearest-neighbour halo exchange).
    Stencil,
    /// Fork–join (embarrassing parallelism with a barrier).
    ForkJoin,
    /// Binary out-tree then in-tree (divide and conquer).
    DivideConquer,
    /// Diamond mesh (2-D wavefront).
    Diamond,
}

impl Kernel {
    /// All kernels, in a stable order.
    pub fn all() -> [Kernel; 6] {
        [
            Kernel::GaussElim,
            Kernel::Fft,
            Kernel::Stencil,
            Kernel::ForkJoin,
            Kernel::DivideConquer,
            Kernel::Diamond,
        ]
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::GaussElim => "gauss-elim",
            Kernel::Fft => "fft",
            Kernel::Stencil => "stencil",
            Kernel::ForkJoin => "fork-join",
            Kernel::DivideConquer => "divide-conquer",
            Kernel::Diamond => "diamond",
        }
    }

    /// Instantiate with roughly `tasks` tasks (kernels are quantised,
    /// so the actual count is the nearest achievable) and unit costs
    /// (callers rescale for CCR).
    pub fn instantiate(self, tasks: usize) -> TaskGraph {
        let t = tasks.max(4);
        match self {
            Kernel::GaussElim => {
                // (n-1) + (n-1)n/2 tasks ≈ n²/2.
                let n = (((2 * t) as f64).sqrt().round() as usize).max(3);
                structured::gauss_elim(n, 100.0, 100.0)
            }
            Kernel::Fft => {
                // (log2 p + 1) * p tasks; pick p a power of two.
                let mut p = 2usize;
                while (p.trailing_zeros() as usize + 1) * p < t && p < 1 << 12 {
                    p <<= 1;
                }
                structured::fft_graph(p, 100.0, 100.0)
            }
            Kernel::Stencil => {
                let side = ((t as f64).sqrt().round() as usize).max(2);
                structured::stencil_1d(side, side, 100.0, 100.0)
            }
            Kernel::ForkJoin => structured::fork_join(t.saturating_sub(2).max(1), 100.0, 100.0),
            Kernel::DivideConquer => {
                // out_tree + in_tree of equal depth: 2*(2^d - 1) tasks.
                let mut d = 1usize;
                while 2 * ((1usize << (d + 1)) - 1) <= t && d < 12 {
                    d += 1;
                }
                let divide = structured::out_tree(2, d, 100.0, 100.0);
                let conquer = structured::in_tree(2, d, 100.0, 100.0);
                es_dag::transform::series(&divide, &conquer, 100.0)
            }
            Kernel::Diamond => {
                let side = ((t as f64).sqrt().round() as usize).max(2);
                structured::diamond_mesh(side, 100.0, 100.0)
            }
        }
    }
}

/// The platform families a suite runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Platform {
    /// The paper's random switched WAN (homogeneous speeds).
    WanHomogeneous,
    /// The paper's random switched WAN (heterogeneous speeds).
    WanHeterogeneous,
    /// Single switch (star) — zero path diversity.
    Star,
    /// Two-level fat tree with 3 spines — high path diversity.
    FatTree,
    /// One shared bus — maximum contention.
    Bus,
}

impl Platform {
    /// All platforms, in a stable order.
    pub fn all() -> [Platform; 5] {
        [
            Platform::WanHomogeneous,
            Platform::WanHeterogeneous,
            Platform::Star,
            Platform::FatTree,
            Platform::Bus,
        ]
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Platform::WanHomogeneous => "wan-hom",
            Platform::WanHeterogeneous => "wan-het",
            Platform::Star => "star",
            Platform::FatTree => "fat-tree",
            Platform::Bus => "bus",
        }
    }

    /// Instantiate with `processors` processors.
    pub fn instantiate(self, processors: usize, seed: u64) -> Topology {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            Platform::WanHomogeneous => {
                gen::random_switched_wan(&WanConfig::homogeneous(processors), &mut rng)
            }
            Platform::WanHeterogeneous => {
                gen::random_switched_wan(&WanConfig::heterogeneous(processors), &mut rng)
            }
            Platform::Star => gen::star(
                processors,
                SpeedDist::Fixed(1.0),
                SpeedDist::Fixed(1.0),
                &mut rng,
            ),
            Platform::FatTree => {
                let pods = processors.div_ceil(4).max(2);
                gen::fat_tree(
                    pods,
                    processors.div_ceil(pods),
                    3,
                    SpeedDist::Fixed(1.0),
                    SpeedDist::Fixed(1.0),
                    &mut rng,
                )
            }
            Platform::Bus => {
                gen::shared_bus(processors.max(2), SpeedDist::Fixed(1.0), 1.0, &mut rng)
            }
        }
    }
}

/// One suite scenario: kernel, platform, CCR-adjusted instance.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Which kernel.
    pub kernel: Kernel,
    /// Which platform.
    pub platform: Platform,
    /// Target CCR.
    pub ccr: f64,
    /// The instantiated task graph (costs rescaled for `ccr`).
    pub dag: TaskGraph,
    /// The instantiated topology.
    pub topo: Topology,
}

/// Build the full kernel × platform grid at one size and CCR.
pub fn grid(tasks: usize, processors: usize, ccr: f64, seed: u64) -> Vec<Scenario> {
    let mut out = Vec::new();
    for kernel in Kernel::all() {
        for platform in Platform::all() {
            let topo = platform.instantiate(processors, seed);
            let raw = kernel.instantiate(tasks);
            let dag = scale_to_ccr(&raw, ccr, topo.mean_proc_speed(), topo.mean_link_speed());
            out.push(Scenario {
                kernel,
                platform,
                ccr,
                dag,
                topo,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use es_dag::analysis;

    #[test]
    fn kernels_hit_requested_size_roughly() {
        for k in Kernel::all() {
            let g = k.instantiate(60);
            let n = g.task_count();
            assert!(
                (15..=200).contains(&n),
                "{} produced {n} tasks for a budget of 60",
                k.name()
            );
        }
    }

    #[test]
    fn platforms_hit_processor_count() {
        for p in Platform::all() {
            let t = p.instantiate(8, 5);
            assert!(
                t.proc_count() >= 8,
                "{} produced {} processors",
                p.name(),
                t.proc_count()
            );
            assert!(t.is_connected(), "{}", p.name());
        }
    }

    #[test]
    fn grid_covers_every_combination() {
        let g = grid(40, 6, 2.0, 9);
        assert_eq!(g.len(), 30);
        for s in &g {
            let measured =
                analysis::measured_ccr(&s.dag, s.topo.mean_proc_speed(), s.topo.mean_link_speed());
            assert!(
                (measured - 2.0).abs() < 1e-9,
                "{}/{} CCR {measured}",
                s.kernel.name(),
                s.platform.name()
            );
        }
    }

    #[test]
    fn scenarios_are_deterministic() {
        let a = grid(40, 6, 1.0, 11);
        let b = grid(40, 6, 1.0, 11);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.dag.task_count(), y.dag.task_count());
            assert_eq!(x.topo.link_count(), y.topo.link_count());
        }
    }
}
