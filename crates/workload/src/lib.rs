//! # es-workload — the paper's experimental workloads (§6)
//!
//! Reproduces the experimental setup of Han & Wang §6:
//!
//! * task count `U(40, 1000)`;
//! * computation and communication costs `U(1, 1000)`, with the
//!   communication costs rescaled so the instance hits its target CCR
//!   exactly (`CCR = mean comm time / mean comp time` under the
//!   topology's mean speeds);
//! * CCR swept over `{0.1 … 1.0 step 0.1} ∪ {2 … 10 step 1}` (19
//!   values — the x-axis of Figures 1 and 3);
//! * processor counts `{2, 4, 8, 16, 32, 64, 128}` (Figures 2 and 4);
//! * topology: random switched WAN, `U(4,16)` processors per switch;
//! * homogeneous (§6.1): all speeds 1 — heterogeneous (§6.2): speeds
//!   `U(1, 10)`.
//!
//! Instances are generated from explicit seeds: the same
//! [`InstanceConfig`] always produces the same `(dag, topology)` pair,
//! and paired comparisons (every algorithm on the identical instance)
//! fall out naturally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod suite;

use es_dag::gen::layered::{random_layered, LayeredDagConfig};
use es_dag::{analysis, TaskGraph, TaskGraphBuilder};
use es_net::gen::{random_switched_wan, WanConfig};
use es_net::Topology;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Homogeneous (§6.1) or heterogeneous (§6.2) system speeds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Setting {
    /// All processor and link speeds are 1.
    Homogeneous,
    /// Processor and link speeds are `U(1, 10)`.
    Heterogeneous,
}

/// The paper's CCR sweep: 0.1–1.0 in steps of 0.1, then 2–10 in steps
/// of 1 (x-axis of Figures 1 and 3).
pub fn ccr_values() -> Vec<f64> {
    let mut v: Vec<f64> = (1..=10).map(|i| f64::from(i) / 10.0).collect();
    v.extend((2..=10).map(f64::from));
    v
}

/// The paper's processor-count sweep (x-axis of Figures 2 and 4).
pub fn proc_counts() -> Vec<usize> {
    vec![2, 4, 8, 16, 32, 64, 128]
}

/// Everything needed to regenerate one experimental instance.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct InstanceConfig {
    /// Speed regime.
    pub setting: Setting,
    /// Number of processors.
    pub processors: usize,
    /// Target communication-to-computation ratio.
    pub ccr: f64,
    /// Task count; `None` draws `U(40, 1000)` as the paper does.
    pub tasks: Option<usize>,
    /// RNG seed — same seed, same instance.
    pub seed: u64,
}

impl InstanceConfig {
    /// Paper-default configuration (task count drawn from `U(40,1000)`).
    pub fn paper(setting: Setting, processors: usize, ccr: f64, seed: u64) -> Self {
        Self {
            setting,
            processors,
            ccr,
            tasks: None,
            seed,
        }
    }

    /// Same configuration but with a fixed task count — used by tests
    /// and benches that need bounded runtime.
    #[must_use]
    pub fn with_tasks(mut self, tasks: usize) -> Self {
        self.tasks = Some(tasks);
        self
    }
}

/// One generated experimental instance.
#[derive(Clone, Debug)]
pub struct Instance {
    /// The configuration that produced it.
    pub config: InstanceConfig,
    /// The task graph, CCR-rescaled.
    pub dag: TaskGraph,
    /// The network.
    pub topo: Topology,
}

/// Generate the instance for `config` (deterministic).
pub fn generate(config: &InstanceConfig) -> Instance {
    let mut rng = StdRng::seed_from_u64(config.seed);

    let wan = match config.setting {
        Setting::Homogeneous => WanConfig::homogeneous(config.processors),
        Setting::Heterogeneous => WanConfig::heterogeneous(config.processors),
    };
    let topo = random_switched_wan(&wan, &mut rng);

    let tasks = config.tasks.unwrap_or_else(|| rng.random_range(40..=1000));
    // Graph shape following the layered construction of Bajaj &
    // Agrawal: width grows with the square root of the task count so
    // depth and parallelism both scale.
    let dag_cfg = LayeredDagConfig {
        tasks,
        mean_width: ((tasks as f64).sqrt().ceil() as usize).max(2),
        edge_density: 0.2,
        max_jump: 2,
        weight_range: (1, 1000),
        cost_range: (1, 1000),
    };
    let raw = random_layered(&dag_cfg, &mut rng);
    let dag = scale_to_ccr(
        &raw,
        config.ccr,
        topo.mean_proc_speed(),
        topo.mean_link_speed(),
    );

    Instance {
        config: *config,
        dag,
        topo,
    }
}

/// Rebuild `dag` with every communication cost multiplied so that the
/// measured CCR equals `target` under the given mean speeds. Graphs
/// without edges (or without work) are returned unchanged.
pub fn scale_to_ccr(dag: &TaskGraph, target: f64, mps: f64, mls: f64) -> TaskGraph {
    let Some(factor) = analysis::ccr_scale_factor(dag, target, mps, mls) else {
        return dag.clone();
    };
    let mut b = TaskGraphBuilder::with_capacity(dag.task_count(), dag.edge_count());
    for t in dag.task_ids() {
        let node = dag.task(t);
        match &node.label {
            Some(l) => b.add_labeled_task(node.weight, l.clone()),
            None => b.add_task(node.weight),
        };
    }
    for e in dag.edge_ids() {
        let edge = dag.edge(e);
        b.add_edge(edge.src, edge.dst, edge.cost * factor)
            .expect("copying a valid graph");
    }
    b.build().expect("copying a valid graph")
}

/// Deterministic per-cell seed: combine a base seed with the sweep
/// coordinates so every (setting, procs, ccr, repetition) cell has an
/// independent but reproducible stream.
pub fn cell_seed(base: u64, setting: Setting, procs: usize, ccr: f64, rep: usize) -> u64 {
    // SplitMix64-style mixing, good enough for seeding StdRng.
    let mut x = base
        ^ (procs as u64).wrapping_mul(0x9E3779B97F4A7C15)
        ^ ((ccr * 1000.0) as u64).wrapping_mul(0xBF58476D1CE4E5B9)
        ^ (rep as u64).wrapping_mul(0x94D049BB133111EB)
        ^ match setting {
            Setting::Homogeneous => 0x1234_5678,
            Setting::Heterogeneous => 0x8765_4321,
        };
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D049BB133111EB);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ccr_sweep_matches_paper() {
        let v = ccr_values();
        assert_eq!(v.len(), 19);
        assert_eq!(v[0], 0.1);
        assert_eq!(v[9], 1.0);
        assert_eq!(v[10], 2.0);
        assert_eq!(v[18], 10.0);
    }

    #[test]
    fn proc_sweep_matches_paper() {
        assert_eq!(proc_counts(), vec![2, 4, 8, 16, 32, 64, 128]);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = InstanceConfig::paper(Setting::Heterogeneous, 8, 2.0, 42).with_tasks(60);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.dag.task_count(), b.dag.task_count());
        assert_eq!(a.dag.edge_count(), b.dag.edge_count());
        assert_eq!(a.topo.link_count(), b.topo.link_count());
        for e in a.dag.edge_ids() {
            assert_eq!(a.dag.cost(e), b.dag.cost(e));
        }
    }

    #[test]
    fn instance_hits_target_ccr() {
        for &ccr in &[0.1, 1.0, 5.0, 10.0] {
            let cfg = InstanceConfig::paper(Setting::Homogeneous, 8, ccr, 7).with_tasks(80);
            let inst = generate(&cfg);
            let measured = analysis::measured_ccr(
                &inst.dag,
                inst.topo.mean_proc_speed(),
                inst.topo.mean_link_speed(),
            );
            assert!(
                (measured - ccr).abs() < 1e-9,
                "target {ccr}, measured {measured}"
            );
        }
    }

    #[test]
    fn homogeneous_topology_is_homogeneous() {
        let cfg = InstanceConfig::paper(Setting::Homogeneous, 16, 1.0, 3).with_tasks(50);
        assert!(generate(&cfg).topo.is_homogeneous());
    }

    #[test]
    fn heterogeneous_speeds_in_paper_range() {
        let cfg = InstanceConfig::paper(Setting::Heterogeneous, 32, 1.0, 3).with_tasks(50);
        let inst = generate(&cfg);
        for p in inst.topo.proc_ids() {
            assert!((1.0..=10.0).contains(&inst.topo.proc_speed(p)));
        }
    }

    #[test]
    fn paper_task_count_in_range() {
        let cfg = InstanceConfig::paper(Setting::Homogeneous, 4, 1.0, 11);
        let inst = generate(&cfg);
        assert!((40..=1000).contains(&inst.dag.task_count()));
    }

    #[test]
    fn requested_processor_count_is_exact() {
        for procs in [2, 4, 8, 128] {
            let cfg = InstanceConfig::paper(Setting::Homogeneous, procs, 1.0, 5).with_tasks(40);
            assert_eq!(generate(&cfg).topo.proc_count(), procs);
        }
    }

    #[test]
    fn cell_seeds_differ_across_cells_and_repeat() {
        let a = cell_seed(1, Setting::Homogeneous, 8, 0.5, 0);
        let b = cell_seed(1, Setting::Homogeneous, 8, 0.5, 1);
        let c = cell_seed(1, Setting::Homogeneous, 16, 0.5, 0);
        let d = cell_seed(1, Setting::Heterogeneous, 8, 0.5, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a, cell_seed(1, Setting::Homogeneous, 8, 0.5, 0));
    }

    #[test]
    fn scale_preserves_structure() {
        let cfg = InstanceConfig::paper(Setting::Homogeneous, 4, 1.0, 9).with_tasks(50);
        let inst = generate(&cfg);
        let scaled = scale_to_ccr(&inst.dag, 3.0, 1.0, 1.0);
        assert_eq!(scaled.task_count(), inst.dag.task_count());
        assert_eq!(scaled.edge_count(), inst.dag.edge_count());
        for t in inst.dag.task_ids() {
            assert_eq!(scaled.weight(t), inst.dag.weight(t));
        }
    }
}
