//! End-to-end test of `es-experiments verify`: export a run, audit it
//! (clean), corrupt one CSV, and check that the verifier reports a
//! documented `ES-E00x` diagnostic as JSON and exits nonzero.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_es-experiments"))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("es-verify-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn export_into(dir: &Path) {
    let out = bin()
        .args([
            "export",
            "--out",
            dir.to_str().unwrap(),
            "--setting",
            "het",
            "--procs",
            "6",
            "--ccr",
            "2",
            "--seed",
            "7",
            "--tasks",
            "30",
        ])
        .output()
        .expect("run export");
    assert!(out.status.success(), "export failed: {out:?}");
    assert!(dir.join("manifest.txt").is_file());
    assert!(dir.join("ba_tasks.csv").is_file());
}

#[test]
fn verify_passes_on_untouched_export() {
    let dir = scratch("clean");
    export_into(&dir);
    let out = bin()
        .args(["verify", "--in", dir.to_str().unwrap()])
        .output()
        .expect("run verify");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "verify failed on clean export:\n{stdout}"
    );
    assert!(stdout.contains("PASS"), "{stdout}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn verify_flags_corrupted_export_with_stable_code() {
    let dir = scratch("corrupt");
    export_into(&dir);

    // Drop the last data row of one schedule's task CSV: the task count
    // no longer matches the regenerated DAG, a structural ES-E000.
    let tasks = dir.join("ba_tasks.csv");
    let body = fs::read_to_string(&tasks).unwrap();
    let mut lines: Vec<&str> = body.lines().collect();
    assert!(lines.len() > 2, "expected header + rows, got: {body}");
    lines.pop();
    fs::write(&tasks, lines.join("\n") + "\n").unwrap();

    let out = bin()
        .args(["verify", "--in", dir.to_str().unwrap(), "--json"])
        .output()
        .expect("run verify");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "verify must fail, got:\n{stdout}");
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout.contains("\"code\":\"ES-E000\""), "{stdout}");
    assert!(stdout.contains("\"severity\":\"error\""), "{stdout}");

    // The JSON is the es-diag-v1 document diag::Report understands.
    let report_line = stdout
        .lines()
        .find(|l| l.contains("ES-E000"))
        .expect("a JSON report line mentioning ES-E000");
    let parsed = es_core::Report::from_json(report_line).expect("parse verify output");
    assert!(parsed.error_count() >= 1);
    let _ = fs::remove_dir_all(&dir);
}
