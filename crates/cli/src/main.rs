//! `es-experiments` — command-line reproduction of the paper's figures.
//!
//! ```text
//! es-experiments <fig1|fig2|fig3|fig4|all> [options]
//! es-experiments cell --setting hetero --procs 32 --ccr 5 [options]
//! es-experiments demo
//!
//! Options:
//!   --reps N            repetitions per cell            (default 5)
//!   --tasks N           fixed task count                (default: paper's U(40,1000))
//!   --seed N            base seed                       (default 20060810)
//!   --threads N         worker threads                  (default: CPUs)
//!   --procs A,B,C       processor counts                (default 2,4,8,16,32,64,128)
//!   --ccrs A,B,C        CCR values                      (default: the paper's 19)
//!   --validate          re-validate every schedule
//!   --strong-baseline   also run the probing BA family
//!   --csv PATH          write the per-cell results as CSV
//! ```

use es_sim::{fig1, fig2, fig3, fig4, fig_pair, run_cell, CellSpec, FigureParams, FigureResult};
use es_workload::Setting;
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{}", USAGE);
        std::process::exit(2);
    }
    let cmd = args[0].as_str();
    let opts = match Options::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    match cmd {
        "fig1" => emit(&[fig1(&opts.params)], &opts),
        "fig2" => emit(&[fig2(&opts.params)], &opts),
        "fig3" => emit(&[fig3(&opts.params)], &opts),
        "fig4" => emit(&[fig4(&opts.params)], &opts),
        "all" => {
            // Figures 1+2 share their homogeneous grid, 3+4 the
            // heterogeneous one — compute each grid once.
            let (f1, f2) = fig_pair(&opts.params, Setting::Homogeneous);
            let (f3, f4) = fig_pair(&opts.params, Setting::Heterogeneous);
            emit(&[f1, f2, f3, f4], &opts);
        }
        "cell" => run_single_cell(&opts),
        "suite" => run_suite(&opts),
        "export" => export_instance(&opts),
        "demo" => demo(),
        "help" | "--help" | "-h" => println!("{USAGE}"),
        other => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}

const USAGE: &str = "\
es-experiments — reproduce Han & Wang (ICPP 2006), Figures 1-4

USAGE:
  es-experiments <fig1|fig2|fig3|fig4|all|cell|suite|export|demo> [options]

OPTIONS:
  --reps N            repetitions per cell            (default 5)
  --tasks N           fixed task count                (default: paper's U(40,1000))
  --seed N            base seed                       (default 20060810)
  --threads N         worker threads                  (default: CPUs)
  --procs A,B,C       processor counts                (default 2,4,8,16,32,64,128)
  --ccrs A,B,C        CCR values                      (default: the paper's 19 values)
  --setting h|het     (cell only) homogeneous or heterogeneous
  --ccr X             (cell only) single CCR
  --validate          re-validate every schedule against the model
  --strong-baseline   also run the probing-BA family for comparison
  --progress          print a line to stderr per completed cell
  --csv PATH          write per-cell results as CSV
  --out DIR           (export only) output directory   (default: export/)

The `export` command generates one instance (--setting/--procs/--ccr/
--seed/--tasks), schedules it with BA-static, BA, OIHSA and BBSA, and
writes DOT renderings of the DAG and topology plus per-schedule CSVs
and text Gantt charts into DIR.";

struct Options {
    params: FigureParams,
    csv: Option<String>,
    setting: Setting,
    single_ccr: f64,
    out_dir: String,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut params = FigureParams {
            reps: 5,
            ..FigureParams::default()
        };
        let mut csv = None;
        let mut setting = Setting::Homogeneous;
        let mut single_ccr = 1.0;
        let mut out_dir = String::from("export");
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut take = || {
                it.next()
                    .map(|s| s.to_string())
                    .ok_or_else(|| format!("{a} needs a value"))
            };
            match a.as_str() {
                "--reps" => params.reps = take()?.parse().map_err(|e| format!("--reps: {e}"))?,
                "--tasks" => {
                    params.tasks =
                        Some(take()?.parse().map_err(|e| format!("--tasks: {e}"))?)
                }
                "--seed" => {
                    params.base_seed = take()?.parse().map_err(|e| format!("--seed: {e}"))?
                }
                "--threads" => {
                    params.threads = take()?.parse().map_err(|e| format!("--threads: {e}"))?
                }
                "--procs" => {
                    params.procs = take()?
                        .split(',')
                        .map(|s| s.trim().parse().map_err(|e| format!("--procs: {e}")))
                        .collect::<Result<_, _>>()?
                }
                "--ccrs" => {
                    params.ccrs = take()?
                        .split(',')
                        .map(|s| s.trim().parse().map_err(|e| format!("--ccrs: {e}")))
                        .collect::<Result<_, _>>()?
                }
                "--ccr" => single_ccr = take()?.parse().map_err(|e| format!("--ccr: {e}"))?,
                "--setting" => {
                    let v = take()?;
                    setting = match v.as_str() {
                        "h" | "hom" | "homogeneous" => Setting::Homogeneous,
                        "het" | "hetero" | "heterogeneous" => Setting::Heterogeneous,
                        _ => return Err(format!("--setting: unknown value {v}")),
                    };
                }
                "--validate" => params.validate = true,
                "--progress" => params.progress = true,
                "--strong-baseline" => params.strong_baseline = true,
                "--csv" => csv = Some(take()?),
                "--out" => out_dir = take()?,
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        Ok(Self {
            params,
            csv,
            setting,
            single_ccr,
            out_dir,
        })
    }
}

fn emit(figs: &[FigureResult], opts: &Options) {
    for f in figs {
        println!("{}", f.to_table());
    }
    if let Some(path) = &opts.csv {
        let out = es_sim::report::figures_to_csv(figs);
        std::fs::write(path, out).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote per-cell CSV to {path}");
    }
}

fn run_single_cell(opts: &Options) {
    let spec = CellSpec {
        setting: opts.setting,
        processors: *opts.params.procs.first().unwrap_or(&8),
        ccr: opts.single_ccr,
        reps: opts.params.reps,
        base_seed: opts.params.base_seed,
        tasks: opts.params.tasks,
        validate: opts.params.validate,
        strong_baseline: opts.params.strong_baseline,
    };
    let r = run_cell(&spec);
    println!(
        "cell {:?} procs={} ccr={} reps={}",
        spec.setting, spec.processors, spec.ccr, spec.reps
    );
    println!("  BA-static makespan : {:>12.1}", r.ba_makespan);
    println!(
        "  OIHSA     makespan : {:>12.1}  ({:+.2}% vs BA, σ {:.2})",
        r.oihsa_makespan, r.oihsa_improvement, r.oihsa_stddev
    );
    println!(
        "  BBSA      makespan : {:>12.1}  ({:+.2}% vs BA, σ {:.2})",
        r.bbsa_makespan, r.bbsa_improvement, r.bbsa_stddev
    );
    if let (Some(bp), Some(oi), Some(bb)) = (
        r.ba_probe_makespan,
        r.oihsa_probe_improvement,
        r.bbsa_probe_improvement,
    ) {
        println!("  BA-probe  makespan : {bp:>12.1}");
        println!("  OIHSA-probe vs BA-probe : {oi:+.2}%");
        println!("  BBSA-probe  vs BA-probe : {bb:+.2}%");
    }
}

/// The kernel × platform suite: every structured kernel on every
/// platform family, BA-static vs OIHSA vs BBSA improvements.
fn run_suite(opts: &Options) {
    use es_core::{validate::validate, BbsaScheduler, ListScheduler, Scheduler};

    let tasks = opts.params.tasks.unwrap_or(60);
    let procs = *opts.params.procs.first().unwrap_or(&8);
    let scenarios = es_workload::suite::grid(tasks, procs, opts.single_ccr, opts.params.base_seed);
    println!(
        "kernel x platform suite: ~{tasks} tasks, {procs} processors, CCR {}\n",
        opts.single_ccr
    );
    println!(
        "{:<16} {:<10} {:>12} {:>9} {:>9}",
        "kernel", "platform", "BA makespan", "OIHSA%", "BBSA%"
    );
    for sc in &scenarios {
        let run = |s: &dyn Scheduler| -> f64 {
            let sched = s.schedule(&sc.dag, &sc.topo).expect("connected");
            if opts.params.validate {
                validate(&sc.dag, &sc.topo, &sched).expect("valid");
            }
            sched.makespan
        };
        let ba = run(&ListScheduler::ba_static());
        let oi = run(&ListScheduler::oihsa());
        let bb = run(&BbsaScheduler::new());
        println!(
            "{:<16} {:<10} {:>12.1} {:>8.1}% {:>8.1}%",
            sc.kernel.name(),
            sc.platform.name(),
            ba,
            100.0 * (ba - oi) / ba,
            100.0 * (ba - bb) / ba
        );
    }
}

/// Generate one instance and dump everything a human could want to look
/// at: DOT graphs, schedule CSVs, text Gantt charts, metrics.
fn export_instance(opts: &Options) {
    use es_core::{gantt, metrics, validate::validate, BbsaScheduler, ListScheduler, Scheduler};
    use es_workload::{generate, InstanceConfig};

    let mut cfg = InstanceConfig::paper(
        opts.setting,
        *opts.params.procs.first().unwrap_or(&8),
        opts.single_ccr,
        opts.params.base_seed,
    );
    cfg.tasks = opts.params.tasks;
    let inst = generate(&cfg);
    let dir = std::path::Path::new(&opts.out_dir);
    std::fs::create_dir_all(dir).unwrap_or_else(|e| {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(1);
    });
    let write = |name: &str, contents: String| {
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
        println!("wrote {}", path.display());
    };

    write("dag.dot", es_dag::dot::to_dot(&inst.dag, "instance"));
    write("topology.dot", es_net::dot::to_dot(&inst.topo, "network"));

    let mut summary = String::from("algorithm,makespan,speedup,slr,procs_used,links_used
");
    for sched in [
        Box::new(ListScheduler::ba_static()) as Box<dyn Scheduler>,
        Box::new(ListScheduler::ba()),
        Box::new(ListScheduler::oihsa()),
        Box::new(BbsaScheduler::new()),
    ] {
        let s = sched.schedule(&inst.dag, &inst.topo).expect("connected WAN");
        validate(&inst.dag, &inst.topo, &s).expect("valid schedule");
        let tag = s.algorithm.to_lowercase().replace('-', "_");
        write(
            &format!("{tag}_tasks.csv"),
            es_core::export::tasks_to_csv(&inst.dag, &s),
        );
        write(
            &format!("{tag}_comms.csv"),
            es_core::export::comms_to_csv(&inst.dag, &s),
        );
        write(
            &format!("{tag}_gantt.txt"),
            gantt::render(&inst.dag, &inst.topo, &s, &gantt::GanttOptions::default()),
        );
        let m = metrics(&inst.dag, &inst.topo, &s);
        summary.push_str(&format!(
            "{},{:.3},{:.3},{:.3},{},{}
",
            s.algorithm, s.makespan, m.speedup, m.slr, m.processors_used, m.links_used
        ));
    }
    write("summary.csv", summary);
}

/// A tiny end-to-end walkthrough on a fixed instance — smoke test and
/// first-contact demo.
fn demo() {
    use es_core::{validate::validate, BbsaScheduler, ListScheduler, Scheduler};
    use es_workload::{generate, InstanceConfig};

    let cfg = InstanceConfig::paper(Setting::Heterogeneous, 8, 2.0, 42).with_tasks(60);
    let inst = generate(&cfg);
    println!(
        "instance: {} tasks, {} edges, {} processors, {} links",
        inst.dag.task_count(),
        inst.dag.edge_count(),
        inst.topo.proc_count(),
        inst.topo.link_count()
    );
    for sched in [
        Box::new(ListScheduler::ba_static()) as Box<dyn Scheduler>,
        Box::new(ListScheduler::ba()),
        Box::new(ListScheduler::oihsa()),
        Box::new(BbsaScheduler::new()),
    ] {
        let s = sched.schedule(&inst.dag, &inst.topo).expect("schedulable");
        validate(&inst.dag, &inst.topo, &s).expect("valid");
        println!("  {:<10} makespan {:>10.1}  (validated)", s.algorithm, s.makespan);
    }
    let _ = std::io::stdout().flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Options::parse(&owned)
    }

    #[test]
    fn defaults_match_paper_grids() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.params.reps, 5);
        assert_eq!(o.params.procs, vec![2, 4, 8, 16, 32, 64, 128]);
        assert_eq!(o.params.ccrs.len(), 19);
        assert!(o.params.tasks.is_none());
        assert!(!o.params.validate);
        assert!(!o.params.strong_baseline);
        assert!(o.csv.is_none());
    }

    #[test]
    fn parses_numeric_options() {
        let o = parse(&["--reps", "7", "--tasks", "120", "--seed", "99", "--threads", "3"]).unwrap();
        assert_eq!(o.params.reps, 7);
        assert_eq!(o.params.tasks, Some(120));
        assert_eq!(o.params.base_seed, 99);
        assert_eq!(o.params.threads, 3);
    }

    #[test]
    fn parses_lists() {
        let o = parse(&["--procs", "2,8, 32", "--ccrs", "0.5,2,10"]).unwrap();
        assert_eq!(o.params.procs, vec![2, 8, 32]);
        assert_eq!(o.params.ccrs, vec![0.5, 2.0, 10.0]);
    }

    #[test]
    fn parses_flags_and_setting() {
        let o = parse(&["--validate", "--strong-baseline", "--setting", "het", "--ccr", "4.5"]).unwrap();
        assert!(o.params.validate);
        assert!(o.params.strong_baseline);
        assert_eq!(o.setting, Setting::Heterogeneous);
        assert_eq!(o.single_ccr, 4.5);
    }

    #[test]
    fn rejects_unknown_option_and_missing_value() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--reps"]).is_err());
        assert!(parse(&["--reps", "abc"]).is_err());
        assert!(parse(&["--setting", "martian"]).is_err());
    }

    #[test]
    fn csv_path_recorded() {
        let o = parse(&["--csv", "/tmp/out.csv"]).unwrap();
        assert_eq!(o.csv.as_deref(), Some("/tmp/out.csv"));
    }
}
